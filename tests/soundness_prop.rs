//! Property-based soundness: on randomly generated sequential designs with
//! randomly generated positive examples, whatever H-Houdini learns must be
//! (a) genuinely inductive — confirmed by an independent monolithic SMT
//! query — and (b) admit every positive example (premise P-S). This is the
//! correct-by-construction claim of §3.1, checked adversarially.

use hh_suite::hhoudini::mine::CoiMiner;
use hh_suite::hhoudini::{EngineConfig, SerialEngine};
use hh_suite::netlist::eval::{InputValues, StateValues};
use hh_suite::netlist::miter::Miter;
use hh_suite::netlist::{Bv, Netlist, NodeId};
use hh_suite::sim::product_states;
use hh_suite::smt::Predicate;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static LEARNED: AtomicUsize = AtomicUsize::new(0);
static REFUTED: AtomicUsize = AtomicUsize::new(0);
static SKIPPED: AtomicUsize = AtomicUsize::new(0);

const W: u32 = 4;
const NREGS: usize = 5;

/// Recipe for one register's next-state function.
#[derive(Debug, Clone)]
struct RegRecipe {
    op: u8,
    a: u8,
    b: u8,
    use_input: bool,
}

fn arb_design() -> impl Strategy<Value = Vec<RegRecipe>> {
    proptest::collection::vec(
        (0u8..6, any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(op, a, b, use_input)| {
            RegRecipe {
                op,
                a,
                b,
                use_input,
            }
        }),
        NREGS,
    )
}

/// Builds a random design: NREGS registers, each updated from two other
/// registers (and possibly the shared input) through a random operator.
fn build(recipes: &[RegRecipe]) -> Netlist {
    let mut n = Netlist::new("rand");
    let regs: Vec<_> = (0..NREGS)
        .map(|i| n.state(format!("r{i}"), W, Bv::zero(W)))
        .collect();
    let input = n.input("in", W);
    for (i, rec) in recipes.iter().enumerate() {
        let a = n.state_node(regs[rec.a as usize % NREGS]);
        let b = if rec.use_input {
            input
        } else {
            n.state_node(regs[rec.b as usize % NREGS])
        };
        let next: NodeId = match rec.op {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.add(a, b),
            4 => {
                let c = n.ult(a, b);
                n.uext(c, W)
            }
            _ => a, // hold
        };
        n.set_next(regs[i], next);
    }
    n
}

/// Simulates an equal-modulo-secret pair on shared inputs; returns the
/// product states if the observable (r0) stays equal, else None.
fn example_pair(
    base: &Netlist,
    miter: &Miter,
    secrets: &[(u64, u64)],
    inputs: &[u64],
) -> Option<Vec<StateValues>> {
    let r0 = base.find_state("r0").unwrap();
    let ivs: Vec<InputValues> = inputs
        .iter()
        .map(|&v| {
            let mut iv = InputValues::zeros(base);
            iv.set_by_name(base, "in", Bv::new(W, v));
            iv
        })
        .collect();
    let mut left = StateValues::initial(base);
    let mut right = StateValues::initial(base);
    for (i, &(l, r)) in secrets.iter().enumerate() {
        let sid = base.find_state(&format!("r{}", i + 1)).unwrap();
        left.set(sid, Bv::new(W, l));
        right.set(sid, Bv::new(W, r));
    }
    let lt = hh_suite::sim::simulate(base, left, &ivs);
    let rt = hh_suite::sim::simulate(base, right, &ivs);
    // The property must hold along the trace for it to be positive.
    for (ls, rs) in lt.states.iter().zip(&rt.states) {
        if ls.get(r0) != rs.get(r0) {
            return None;
        }
    }
    let mut ps = product_states(miter, &lt, &rt);
    ps.pop();
    Some(ps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn learned_invariants_are_always_sound(
        recipes in arb_design(),
        secrets in proptest::collection::vec((0u64..16, 0u64..16), NREGS - 1),
        inputs in proptest::collection::vec(0u64..16, 6),
    ) {
        let base = build(&recipes);
        let miter = Miter::build(&base);
        let Some(examples) = example_pair(&base, &miter, &secrets, &inputs) else {
            // The pair already violates the property: nothing to learn from.
            SKIPPED.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        prop_assume!(!examples.is_empty());

        let r0 = base.find_state("r0").unwrap();
        let prop = Predicate::eq(miter.left(r0), miter.right(r0));
        let miner = CoiMiner::new(&miter, &examples, None, vec![]);
        let mut engine = SerialEngine::new(miter.netlist(), miner, EngineConfig::default());
        match engine.learn(std::slice::from_ref(&prop)) {
            Some(inv) => {
                LEARNED.fetch_add(1, Ordering::Relaxed);
                // (a) Correct by construction: the composed invariant must
                // pass the monolithic inductivity check it never ran.
                prop_assert!(
                    inv.verify_monolithic(miter.netlist()),
                    "learned invariant is not inductive: {}",
                    inv.describe(miter.netlist())
                );
                // The property is part of the invariant (H ⟹ P trivially).
                prop_assert!(inv.contains(&prop));
                // (b) Premise P-S: every positive example is admitted.
                for e in &examples {
                    prop_assert!(inv.holds_on(e));
                }
            }
            None => {
                // Failure is always a legal answer (completeness is relative
                // to the predicate universe); nothing further to check.
                REFUTED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs after the proptest (alphabetical ordering is not guaranteed, so this
/// is only a smoke check that the generator produces a meaningful mix when
/// it has run).
#[test]
fn zz_generator_produces_nontrivial_mix() {
    // Force a couple of deterministic interesting cases through the same
    // pipeline to guarantee both outcomes are exercised at least once.
    // Case 1: r0 holds itself -> provable.
    let mut provable = vec![
        RegRecipe {
            op: 5,
            a: 0,
            b: 0,
            use_input: false
        };
        NREGS
    ];
    provable[0] = RegRecipe {
        op: 5,
        a: 0,
        b: 0,
        use_input: false,
    };
    let base = build(&provable);
    let miter = Miter::build(&base);
    let secrets: Vec<(u64, u64)> = vec![(1, 2); NREGS - 1];
    let examples = example_pair(&base, &miter, &secrets, &[0, 1, 2]).expect("holds");
    let r0 = base.find_state("r0").unwrap();
    let prop = Predicate::eq(miter.left(r0), miter.right(r0));
    let miner = CoiMiner::new(&miter, &examples, None, vec![]);
    let mut engine = SerialEngine::new(miter.netlist(), miner, EngineConfig::default());
    let inv = engine
        .learn(std::slice::from_ref(&prop))
        .expect("self-holding r0 is provable");
    assert!(inv.verify_monolithic(miter.netlist()));

    // Case 2: r0 <- r1 (a secret) with equal-on-trace but unprovable
    // in general: r0' = r1 and the example has r1 unequal -> property
    // violated at step 1, so the pair is rejected by the generator.
    let mut leaky = provable;
    leaky[0] = RegRecipe {
        op: 5,
        a: 1,
        b: 0,
        use_input: false,
    };
    let base = build(&leaky);
    let miter = Miter::build(&base);
    assert!(example_pair(&base, &miter, &secrets, &[0, 1, 2]).is_none());

    let (l, r, s) = (
        LEARNED.load(Ordering::Relaxed),
        REFUTED.load(Ordering::Relaxed),
        SKIPPED.load(Ordering::Relaxed),
    );
    eprintln!("soundness_prop mix: learned={l} refuted={r} skipped={s}");
}
