//! End-to-end reproduction checks: the safe sets of the paper's Table 2 and
//! the soundness guarantees of the learned invariants.

use hh_suite::isa::{InstrClass, Mnemonic, ALL_MNEMONICS};
use hh_suite::netlist::miter::Miter;
use hh_suite::uarch::boomlite::{boom_lite, BoomVariant};
use hh_suite::uarch::decode::matches_pattern;
use hh_suite::uarch::rocketlite::rocket_lite;
use hh_suite::veloct::{default_candidates, instruction_patterns, Veloct, VeloctConfig};

fn fast_config() -> VeloctConfig {
    VeloctConfig {
        threads: 2,
        pairs_per_instr: 1,
        ..VeloctConfig::default()
    }
}

fn alu_set() -> Vec<Mnemonic> {
    ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| m.class() == InstrClass::Alu)
        .collect()
}

/// Table 2, RocketLite row: all ALU instructions (incl. lui/auipc) are safe;
/// mul-family, loads/stores are not.
#[test]
fn rocketlite_safe_set_matches_table2() {
    let design = rocket_lite(16);
    let report = Veloct::with_config(&design, fast_config()).classify(&default_candidates());
    let safe = &report.safe;
    for m in alu_set() {
        assert!(safe.contains(&m), "{m} should be safe on RocketLite");
    }
    for m in [
        Mnemonic::Mul,
        Mnemonic::Mulh,
        Mnemonic::Mulhu,
        Mnemonic::Mulhsu,
    ] {
        assert!(
            !safe.contains(&m),
            "{m} must be unsafe on RocketLite (zero-skip)"
        );
    }
    assert!(!safe.contains(&Mnemonic::Lw));
    assert!(!safe.contains(&Mnemonic::Sw));
    assert!(report.invariant.is_some());
}

/// Table 2, BOOM row: mul-family becomes safe (pipelined multiplier), auipc
/// becomes unverifiable (jump-unit probe).
#[test]
fn boomlite_safe_set_matches_table2() {
    let design = boom_lite(BoomVariant::Small, 16);
    let report = Veloct::with_config(&design, fast_config()).classify(&default_candidates());
    let safe = &report.safe;
    for m in [
        Mnemonic::Mul,
        Mnemonic::Mulh,
        Mnemonic::Mulhu,
        Mnemonic::Mulhsu,
    ] {
        assert!(safe.contains(&m), "{m} should be safe on BoomLite");
    }
    assert!(
        !safe.contains(&Mnemonic::Auipc),
        "auipc must be rejected on BoomLite"
    );
    assert!(!safe.contains(&Mnemonic::Lw));
    assert!(!safe.contains(&Mnemonic::Sw));
    for m in alu_set() {
        if m != Mnemonic::Auipc {
            assert!(safe.contains(&m), "{m} should be safe on BoomLite");
        }
    }
    let inv = report.invariant.expect("invariant for the BOOM safe set");
    assert!(inv.len() > 20, "BOOM invariant should be substantial");
}

/// The learned invariant is genuinely inductive: re-verified with one
/// monolithic SMT query over the full product design (the check the paper
/// performs for Rocketchip in §6.4).
#[test]
fn learned_invariants_verify_monolithically() {
    // RocketLite, ALU set.
    let design = rocket_lite(16);
    let v = Veloct::with_config(&design, fast_config());
    let report = v.learn(&alu_set());
    let inv = report.invariant.expect("invariant");
    let mut miter = Miter::build(&design.netlist);
    let patterns = instruction_patterns(&alu_set());
    let instr = miter.netlist().find_input("instr").unwrap();
    let terms: Vec<_> = patterns
        .iter()
        .map(|p| {
            let mm = hh_suite::isa::MaskMatch {
                mask: p.mask as u32,
                matches: p.value as u32,
            };
            matches_pattern(miter.netlist_mut(), instr, mm)
        })
        .collect();
    let c = miter.netlist_mut().or_all(&terms);
    miter.netlist_mut().add_constraint(c);
    assert!(inv.verify_monolithic(miter.netlist()));
}

/// Precision sanity (Def. 4.7 / Appendix B): the invariant never constrains
/// the secret-bearing architectural registers — operand values stay free.
#[test]
fn invariant_does_not_constrain_secrets() {
    let design = rocket_lite(16);
    let v = Veloct::with_config(&design, fast_config());
    let report = v.learn(&alu_set());
    let inv = report.invariant.expect("invariant");
    let miter = Miter::build(&design.netlist);
    for &reg in &design.secret_regs {
        let (l, r) = miter.pair(reg);
        for p in inv.preds() {
            let (pl, pr) = p.states();
            assert!(
                !(pl == l && pr == r),
                "invariant constrains secret register {}",
                design.netlist.state_name(reg)
            );
        }
    }
}

/// Invariant sizes and task counts grow with design size (Table 1 / Fig. 5
/// shape), and the safe sets agree across BOOM variants.
#[test]
fn boom_variants_scale_consistently() {
    let mut prev_inv = 0usize;
    let mut prev_tasks = 0usize;
    for &variant in &[BoomVariant::Small, BoomVariant::Medium] {
        let design = boom_lite(variant, 16);
        let report = Veloct::with_config(&design, fast_config()).classify(&default_candidates());
        let inv = report.invariant.expect("invariant").len();
        let tasks = report.stats.num_tasks();
        assert!(inv > prev_inv, "invariant must grow: {prev_inv} -> {inv}");
        assert!(
            tasks > prev_tasks,
            "tasks must grow: {prev_tasks} -> {tasks}"
        );
        assert!(report.safe.contains(&Mnemonic::Mul));
        assert!(!report.safe.contains(&Mnemonic::Auipc));
        prev_inv = inv;
        prev_tasks = tasks;
    }
}

/// Positive examples satisfy the learned invariant (premise P-S of §3.1:
/// every H_i admits every example, hence so does the conjunction).
#[test]
fn invariant_admits_positive_examples() {
    use hh_suite::veloct::examples::generate_examples;
    let design = rocket_lite(16);
    let v = Veloct::with_config(&design, fast_config());
    let safe = alu_set();
    let report = v.learn(&safe);
    let inv = report.invariant.expect("invariant");
    // Regenerate the same examples (same seed as the default config).
    let mut miter = Miter::build(&design.netlist);
    let patterns = instruction_patterns(&safe);
    let instr = miter.netlist().find_input("instr").unwrap();
    let terms: Vec<_> = patterns
        .iter()
        .map(|p| {
            let mm = hh_suite::isa::MaskMatch {
                mask: p.mask as u32,
                matches: p.value as u32,
            };
            matches_pattern(miter.netlist_mut(), instr, mm)
        })
        .collect();
    let c = miter.netlist_mut().or_all(&terms);
    miter.netlist_mut().add_constraint(c);
    let examples = generate_examples(&design, &miter, &safe, 1, fast_config().seed).unwrap();
    assert!(!examples.is_empty());
    for (i, e) in examples.iter().enumerate() {
        assert!(inv.holds_on(e), "example {i} violates the invariant");
    }
}

/// A deliberately unsafe proposal (mul on RocketLite with nonzero-only
/// examples) must fail in the *learning* phase, exercising backtracking.
#[test]
fn unsafe_proposal_fails_via_learning() {
    let design = rocket_lite(16);
    let v = Veloct::with_config(&design, fast_config());
    let mut set = alu_set();
    set.push(Mnemonic::Mul);
    let report = v.learn(&set);
    assert!(report.invariant.is_none());
    assert!(
        report.divergence.is_none(),
        "nonzero operands hide the fast path"
    );
    assert!(
        report.stats.backtracks > 0,
        "failure must involve backtracking"
    );
}
