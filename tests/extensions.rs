//! Tests for the implemented future-work extensions:
//!
//! * **Impl-type predicates** (§5.2.1): conditional `valid → InSafeSet(uop)`
//!   predicates make example masking unnecessary on out-of-order cores.
//! * **EqConstSet auto-mining** (§6.2 footnote: the paper adds these only as
//!   expert annotations): observed value sets become predicates
//!   automatically, removing the need for manual pattern annotations on the
//!   Appendix-C execute stage.

use hh_suite::hhoudini::mine::CoiMiner;
use hh_suite::hhoudini::{EngineConfig, SerialEngine};
use hh_suite::isa::{InstrClass, Mnemonic, ALL_MNEMONICS};
use hh_suite::netlist::eval::{InputValues, StateValues};
use hh_suite::netlist::miter::Miter;
use hh_suite::netlist::Bv;
use hh_suite::sim::{product_states, simulate};
use hh_suite::smt::Predicate;
use hh_suite::uarch::boomlite::{boom_lite, BoomVariant};
use hh_suite::uarch::execstage::{cmd, exec_stage, Opcode, CMD_INPUT};
use hh_suite::veloct::{Veloct, VeloctConfig};

fn boom_safe_set() -> Vec<Mnemonic> {
    ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| {
            (m.class() == InstrClass::Alu && *m != Mnemonic::Auipc) || m.class() == InstrClass::Mul
        })
        .collect()
}

/// The headline extension result: without masking, plain learning fails
/// (ablation 4), but with Impl predicates enabled it succeeds and the
/// invariant contains a conditional predicate.
#[test]
fn impl_predicates_replace_masking() {
    let design = boom_lite(BoomVariant::Small, 16);
    let safe = boom_safe_set();

    // Plain pipeline without masking: must fail.
    let plain = Veloct::with_config(
        &design,
        VeloctConfig {
            threads: 1,
            pairs_per_instr: 1,
            ..VeloctConfig::default()
        },
    );
    // (learn() applies masking by default; the unmasked failure case is
    // covered by the ablation binary. Here we check the extension.)
    let with_impl = Veloct::with_config(
        &design,
        VeloctConfig {
            threads: 1,
            pairs_per_instr: 1,
            impl_predicates: true,
            ..VeloctConfig::default()
        },
    );
    let masked = plain.learn(&safe);
    let unmasked_impl = with_impl.learn(&safe);

    let inv_masked = masked.invariant.expect("masked learning works");
    let inv_impl = unmasked_impl
        .invariant
        .expect("Impl predicates must recover unmasked learnability");
    let n_impl = inv_impl
        .preds()
        .iter()
        .filter(|p| matches!(p, Predicate::Impl { .. }))
        .count();
    assert!(n_impl >= 1, "expected at least one conditional predicate");
    // Same order of invariant size as the masked run.
    assert!(inv_impl.len() <= 2 * inv_masked.len());
}

/// EqConstSet auto-mining on the Appendix-C stage: learn the ADD-only
/// invariant with *no* safe-set patterns and *no* annotations at all —
/// the opcode restriction is discovered from the observed value set.
#[test]
fn value_set_mining_replaces_pattern_annotations() {
    let stage = exec_stage(16);
    let mut miter = Miter::build(&stage.netlist);
    // Σ: NOP and ADD only.
    let cmd_in = miter.netlist().find_input(CMD_INPUT).unwrap();
    let opc = miter.netlist_mut().slice(cmd_in, 1, 0);
    let t0 = miter.netlist_mut().eq_const(opc, Opcode::Nop as u64);
    let t1 = miter.netlist_mut().eq_const(opc, Opcode::Add as u64);
    let constraint = miter.netlist_mut().or(t0, t1);
    miter.netlist_mut().add_constraint(constraint);

    // Examples: a couple of ADD/NOP programs with differing secrets.
    let n = &stage.netlist;
    let mut examples = Vec::new();
    for (l1, r1) in [(3u64, 9u64), (0x55, 0xaa)] {
        let program = [
            cmd(Opcode::Add, 0, 1),
            cmd(Opcode::Nop, 0, 0),
            cmd(Opcode::Add, 2, 3),
        ];
        let inputs: Vec<InputValues> = program
            .iter()
            .chain(std::iter::repeat_n(&cmd(Opcode::Nop, 0, 0), 20))
            .map(|&w| {
                let mut iv = InputValues::zeros(n);
                iv.set_by_name(n, CMD_INPUT, Bv::new(6, w));
                iv
            })
            .collect();
        let mut left = StateValues::initial(n);
        let mut right = StateValues::initial(n);
        for (i, &reg) in stage.regs.iter().enumerate() {
            left.set(reg, Bv::new(16, l1 + i as u64));
            right.set(reg, Bv::new(16, r1 + 2 * i as u64));
        }
        let lt = simulate(n, left, &inputs);
        let rt = simulate(n, right, &inputs);
        let mut ps = product_states(&miter, &lt, &rt);
        ps.pop();
        examples.extend(ps);
    }

    // NO safe patterns, NO expert annotations — only auto-mined value sets.
    let mut miner = CoiMiner::new(&miter, &examples, None, vec![]);
    miner.mine_value_sets = true;
    let mut engine = SerialEngine::new(miter.netlist(), miner, EngineConfig::default());
    let prop = Predicate::eq(miter.left(stage.valid), miter.right(stage.valid));
    let inv = engine
        .learn(&[prop])
        .expect("value-set mining must discover the opcode restriction");
    assert!(inv.verify_monolithic(miter.netlist()));
    // The invariant must contain an auto-mined EqConstSet over the opcode.
    let has_set = inv.preds().iter().any(|p| {
        matches!(
            p,
            Predicate::InSet {
                label: hh_suite::smt::SetLabel::EqConstSet,
                ..
            }
        )
    });
    assert!(
        has_set,
        "expected an auto-mined EqConstSet:\n{}",
        inv.describe(miter.netlist())
    );

    // Control: without value-set mining (and without patterns) learning
    // must fail — nothing can restrict the opcode.
    let miner2 = CoiMiner::new(&miter, &examples, None, vec![]);
    let mut engine2 = SerialEngine::new(miter.netlist(), miner2, EngineConfig::default());
    let prop2 = Predicate::eq(miter.left(stage.valid), miter.right(stage.valid));
    assert!(engine2.learn(&[prop2]).is_none());
}
