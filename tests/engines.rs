//! Engine-level integration: serial vs parallel agreement, memoisation and
//! scheduling telemetry, baseline cross-checks — all on real processor
//! designs rather than toy circuits.

use hh_suite::hhoudini::baselines::BaselineBudget;
use hh_suite::hhoudini::mine::CoiMiner;
use hh_suite::hhoudini::{EngineConfig, ParallelEngine, SerialEngine};
use hh_suite::isa::{InstrClass, Mnemonic, ALL_MNEMONICS};
use hh_suite::netlist::miter::Miter;
use hh_suite::smt::{EncodeScope, Predicate};
use hh_suite::uarch::boomlite::{boom_lite, BoomVariant};
use hh_suite::uarch::decode::matches_pattern;
use hh_suite::uarch::rocketlite::rocket_lite;
use hh_suite::uarch::Design;
use hh_suite::veloct::examples::generate_examples;
use hh_suite::veloct::{instruction_patterns, BaselineKind, Veloct, VeloctConfig};

fn alu_set() -> Vec<Mnemonic> {
    ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| m.class() == InstrClass::Alu)
        .collect()
}

/// Builds the constrained miter + examples + miner for a design/safe set.
fn setup(
    design: &Design,
    safe: &[Mnemonic],
) -> (
    Miter,
    Vec<hh_suite::netlist::eval::StateValues>,
    Vec<Predicate>,
) {
    let mut miter = Miter::build(&design.netlist);
    let patterns = instruction_patterns(safe);
    let instr = miter.netlist().find_input(&design.instr_input).unwrap();
    let terms: Vec<_> = patterns
        .iter()
        .map(|p| {
            let mm = hh_suite::isa::MaskMatch {
                mask: p.mask as u32,
                matches: p.value as u32,
            };
            matches_pattern(miter.netlist_mut(), instr, mm)
        })
        .collect();
    let c = miter.netlist_mut().or_all(&terms);
    miter.netlist_mut().add_constraint(c);
    let examples = generate_examples(design, &miter, safe, 1, 42).expect("safe set");
    let props: Vec<Predicate> = design
        .observable
        .iter()
        .map(|&o| Predicate::eq(miter.left(o), miter.right(o)))
        .collect();
    (miter, examples, props)
}

#[test]
fn serial_and_parallel_agree_on_rocketlite() {
    let design = rocket_lite(16);
    let safe = alu_set();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);

    let miner_s = CoiMiner::new(&miter, &examples, Some(patterns.clone()), vec![]);
    let mut serial = SerialEngine::new(miter.netlist(), miner_s, EngineConfig::default());
    let inv_s = serial.learn(&props).expect("serial invariant");

    let miner_p = CoiMiner::new(&miter, &examples, Some(patterns), vec![]);
    let mut par = ParallelEngine::new(miter.netlist(), miner_p, EngineConfig::default(), 3);
    let inv_p = par.learn(&props).expect("parallel invariant");

    assert!(inv_s.verify_monolithic(miter.netlist()));
    assert!(inv_p.verify_monolithic(miter.netlist()));
    assert_eq!(
        inv_s.preds(),
        inv_p.preds(),
        "engines must find the same invariant"
    );
}

#[test]
fn serial_and_parallel_agree_on_boomlite() {
    let design = boom_lite(BoomVariant::Small, 16);
    let safe: Vec<Mnemonic> = ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| {
            (m.class() == InstrClass::Alu && *m != Mnemonic::Auipc) || m.class() == InstrClass::Mul
        })
        .collect();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);

    let miner_s = CoiMiner::new(&miter, &examples, Some(patterns.clone()), vec![]);
    let mut serial = SerialEngine::new(miter.netlist(), miner_s, EngineConfig::default());
    let inv_s = serial.learn(&props).expect("serial invariant");

    let miner_p = CoiMiner::new(&miter, &examples, Some(patterns), vec![]);
    let mut par = ParallelEngine::new(miter.netlist(), miner_p, EngineConfig::default(), 4);
    let inv_p = par.learn(&props).expect("parallel invariant");

    assert!(inv_s.verify_monolithic(miter.netlist()));
    assert!(inv_p.verify_monolithic(miter.netlist()));
    // Both inductive and both prove the property; exact predicate sets may
    // differ by solver nondeterminism across wave orderings, but sizes
    // should be close.
    let (a, b) = (inv_s.len(), inv_p.len());
    assert!(
        a.abs_diff(b) <= a.max(b) / 2,
        "sizes too different: {a} vs {b}"
    );
}

#[test]
fn streaming_engine_is_deterministic_across_thread_counts() {
    // The streaming scheduler commits results in issue order, so the learned
    // invariant — and the task DAG itself — must be identical for any worker
    // count, and identical to the serial engine's.
    let design = rocket_lite(16);
    let safe = alu_set();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);

    let miner_s = CoiMiner::new(&miter, &examples, Some(patterns.clone()), vec![]);
    let mut serial = SerialEngine::new(miter.netlist(), miner_s, EngineConfig::default());
    let inv_s = serial.learn(&props).expect("serial invariant");
    assert!(inv_s.verify_monolithic(miter.netlist()));

    let mut task_preds: Option<Vec<_>> = None;
    for threads in [1, 2, 4] {
        let miner = CoiMiner::new(&miter, &examples, Some(patterns.clone()), vec![]);
        let mut par = ParallelEngine::new(miter.netlist(), miner, EngineConfig::default(), threads);
        let inv_p = par.learn(&props).expect("parallel invariant");
        assert_eq!(
            inv_s.preds(),
            inv_p.preds(),
            "{threads}-thread streaming engine must match serial"
        );
        // The committed task order (discovery order) must also be stable.
        let preds: Vec<_> = par.stats().tasks.iter().map(|t| t.pred).collect();
        match &task_preds {
            None => task_preds = Some(preds),
            Some(expect) => assert_eq!(
                expect, &preds,
                "task commit order must not depend on thread count"
            ),
        }
    }
}

#[test]
fn session_cache_ablation_preserves_results_and_saves_encoding() {
    // With sessions off every query re-blasts its cone; with sessions on,
    // retries after backtracking reuse the live encoding. The invariant must
    // be identical either way, and the cached run must report reuse whenever
    // any retry happened.
    let design = rocket_lite(16);
    let safe = alu_set();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);

    let run = |sessions: bool| {
        let miner = CoiMiner::new(&miter, &examples, Some(patterns.clone()), vec![]);
        let cfg = EngineConfig {
            sessions,
            ..EngineConfig::default()
        };
        let mut eng = SerialEngine::new(miter.netlist(), miner, cfg);
        let inv = eng.learn(&props).expect("invariant");
        let stats = eng.stats();
        (
            inv,
            stats.session_hits,
            stats.vars_saved + stats.clauses_saved,
            stats.backtracks,
        )
    };
    let (inv_on, hits_on, saved_on, backtracks) = run(true);
    let (inv_off, hits_off, saved_off, _) = run(false);
    assert_eq!(
        inv_on.preds(),
        inv_off.preds(),
        "sessions must not change the result"
    );
    assert_eq!(hits_off, 0, "disabled cache must never report hits");
    assert_eq!(saved_off, 0);
    if backtracks > 0 {
        assert!(hits_on > 0, "retries must hit the session cache");
        assert!(saved_on > 0, "session hits must avoid re-encoding work");
    }
}

#[test]
fn task_dag_exhibits_parallelism() {
    let design = boom_lite(BoomVariant::Small, 16);
    let safe: Vec<Mnemonic> = alu_set()
        .into_iter()
        .filter(|&m| m != Mnemonic::Auipc)
        .collect();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);
    let miner = CoiMiner::new(&miter, &examples, Some(patterns), vec![]);
    let mut par = ParallelEngine::new(miter.netlist(), miner, EngineConfig::default(), 2);
    par.learn(&props).expect("invariant");
    let stats = par.stats();
    // Figure 2's premise: simulated time falls as cores increase, down to
    // the span, and the span is far below the serial sum.
    let t1 = stats.simulated_time(1);
    let t4 = stats.simulated_time(4);
    let span = stats.span();
    assert!(t4 <= t1);
    assert!(span <= t4);
    assert!(
        span < t1 / 2,
        "task DAG should be at least 2x parallelisable (span {span:?} vs serial {t1:?})"
    );
}

#[test]
fn monolithic_scope_ablation_is_more_expensive() {
    // The cone-scoped encoding is the incremental-check advantage; forcing
    // whole-design encodings per query must blow up query sizes.
    let design = rocket_lite(16);
    let safe = alu_set();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);

    let run = |scope: EncodeScope| {
        let miner = CoiMiner::new(&miter, &examples, Some(patterns.clone()), vec![]);
        let mut cfg = EngineConfig::default();
        cfg.abduction.scope = scope;
        let mut eng = SerialEngine::new(miter.netlist(), miner, cfg);
        let inv = eng.learn(&props).expect("invariant");
        (inv.len(), eng.stats().smt_time)
    };
    let (len_cone, time_cone) = run(EncodeScope::Cone);
    let (len_mono, time_mono) = run(EncodeScope::Monolithic);
    assert_eq!(len_cone, len_mono, "scope must not change the result");
    assert!(
        time_mono > time_cone,
        "monolithic encodings must cost more ({time_mono:?} vs {time_cone:?})"
    );
}

#[test]
fn baselines_agree_with_hhoudini_on_provability() {
    let design = rocket_lite(16);
    let v = Veloct::with_config(
        &design,
        VeloctConfig {
            threads: 1,
            pairs_per_instr: 1,
            ..VeloctConfig::default()
        },
    );
    let safe = alu_set();
    let budget = BaselineBudget::default();
    let h = v.learn(&safe);
    assert!(h.invariant.is_some());
    for kind in [BaselineKind::Houdini, BaselineKind::Sorcar] {
        let b = v.learn_baseline(&safe, kind, &budget);
        let inv = b
            .invariant
            .unwrap_or_else(|| panic!("{kind:?} must also prove the set"));
        // The baselines learn a (possibly larger) invariant over the same
        // pool; H-Houdini's property-directed one should be no larger.
        assert!(h.invariant.as_ref().unwrap().len() <= inv.len());
    }
}
