//! Trace-layer integration: a real learning run with `HH_TRACE`-style
//! tracing enabled must produce a structurally sound trace — valid Chrome
//! JSON, per-thread monotone timestamps, balanced (laminar) span nesting —
//! at every worker count, and spans from all four instrumented layers.

use std::collections::BTreeMap;
use std::sync::Mutex;

use hh_suite::hhoudini::mine::CoiMiner;
use hh_suite::hhoudini::{EngineConfig, ParallelEngine};
use hh_suite::isa::{InstrClass, Mnemonic, ALL_MNEMONICS};
use hh_suite::netlist::miter::Miter;
use hh_suite::smt::Predicate;
use hh_suite::trace::{self, Event, EventKind, Trace, TraceConfig};
use hh_suite::uarch::decode::matches_pattern;
use hh_suite::uarch::rocketlite::rocket_lite;
use hh_suite::uarch::Design;
use hh_suite::veloct::examples::generate_examples;
use hh_suite::veloct::{default_candidates, instruction_patterns, Veloct, VeloctConfig};

/// Tracing is process-global state, so tests that toggle it must not
/// interleave.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn alu_set() -> Vec<Mnemonic> {
    ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| m.class() == InstrClass::Alu)
        .collect()
}

fn setup(
    design: &Design,
    safe: &[Mnemonic],
) -> (
    Miter,
    Vec<hh_suite::netlist::eval::StateValues>,
    Vec<Predicate>,
) {
    let mut miter = Miter::build(&design.netlist);
    let patterns = instruction_patterns(safe);
    let instr = miter.netlist().find_input(&design.instr_input).unwrap();
    let terms: Vec<_> = patterns
        .iter()
        .map(|p| {
            let mm = hh_suite::isa::MaskMatch {
                mask: p.mask as u32,
                matches: p.value as u32,
            };
            matches_pattern(miter.netlist_mut(), instr, mm)
        })
        .collect();
    let c = miter.netlist_mut().or_all(&terms);
    miter.netlist_mut().add_constraint(c);
    let examples = generate_examples(design, &miter, safe, 1, 42).expect("safe set");
    let props: Vec<Predicate> = design
        .observable
        .iter()
        .map(|&o| Predicate::eq(miter.left(o), miter.right(o)))
        .collect();
    (miter, examples, props)
}

/// Groups events by thread, preserving per-thread push order (rings keep
/// push order and [`trace::drain`] concatenates whole rings).
fn per_thread(trace: &Trace) -> BTreeMap<u64, Vec<Event>> {
    let mut by_tid: BTreeMap<u64, Vec<Event>> = BTreeMap::new();
    for e in &trace.events {
        by_tid.entry(e.tid).or_default().push(*e);
    }
    by_tid
}

/// Spans are pushed when they *end*, so within one thread the push-order
/// sequence of `end_us()` values must be nondecreasing.
fn assert_monotone_per_thread(trace: &Trace) {
    for (tid, events) in per_thread(trace) {
        let mut last = 0u64;
        for e in &events {
            assert!(
                e.end_us() >= last,
                "thread {tid}: event {} at end {} precedes previous end {last}",
                e.name,
                e.end_us()
            );
            last = e.end_us();
        }
    }
}

/// Span intervals on one thread must form a laminar family: any two either
/// nest or are disjoint. Guard-based spans guarantee this by construction;
/// this catches any future drift to hand-paired begin/end records.
fn assert_nesting_balances(trace: &Trace) {
    for (tid, events) in per_thread(trace) {
        let mut spans: Vec<(u64, u64, &'static str)> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Span { dur_us } => Some((e.ts_us, e.ts_us + dur_us, e.name)),
                _ => None,
            })
            .collect();
        // Sort by start ascending, longest first: parents come before their
        // children, so a stack sweep detects any partial overlap.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, &'static str)> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if top.1 <= s.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                assert!(
                    s.1 <= top.1,
                    "thread {tid}: span {} [{}, {}] straddles {} [{}, {}]",
                    s.2,
                    s.0,
                    s.1,
                    top.2,
                    top.0,
                    top.1
                );
            }
            stack.push(s);
        }
    }
}

fn traced_parallel_run(threads: usize) -> (Trace, hh_suite::hhoudini::Stats) {
    let design = rocket_lite(16);
    let safe = alu_set();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);
    let miner = CoiMiner::new(&miter, &examples, Some(patterns), vec![]);
    trace::init(TraceConfig::on());
    let mut engine = ParallelEngine::new(miter.netlist(), miner, EngineConfig::default(), threads);
    let inv = engine.learn(&props).expect("invariant");
    let trace = trace::drain();
    trace::init(TraceConfig::Off);
    assert!(inv.verify_monolithic(miter.netlist()));
    (trace, engine.stats().clone())
}

#[test]
fn parallel_trace_is_sound_at_every_thread_count() {
    let _g = lock();
    for threads in [1usize, 2, 4] {
        let (trace, stats) = traced_parallel_run(threads);
        assert_eq!(
            trace.dropped, 0,
            "{threads} threads: default ring capacity must hold a rocketlite run"
        );
        assert!(
            trace.thread_ids().len() >= threads,
            "{threads} threads: expected worker rings to be harvested"
        );
        assert_monotone_per_thread(&trace);
        assert_nesting_balances(&trace);

        let spans = trace.span_totals();
        for name in [
            "engine.learn",
            "sched.job",
            "smt.session.solve",
            "sat.solve",
        ] {
            assert!(
                spans.contains_key(name),
                "{threads} threads: missing {name}"
            );
        }

        // Chrome JSON must parse and carry the scheduler's commit markers.
        let json = trace.chrome_json();
        trace::validate_json(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"ph\":\"X\"") && json.contains("sched.commit"));

        // Issue and commit counters cancel: the reorder buffer commits every
        // task exactly once.
        let counters = trace.counter_totals();
        assert_eq!(counters.get("sched.inflight"), Some(&0));

        // Stats is a projection of the trace: shared counter names agree.
        let projected: BTreeMap<&str, u64> = stats.counters().into_iter().collect();
        for name in ["engine.query", "smt.cache.hit", "smt.cache.miss"] {
            assert_eq!(
                counters.get(name).copied().unwrap_or(0),
                projected.get(name).copied().unwrap_or(0) as i64,
                "{threads} threads: trace/stats disagree on {name}"
            );
        }

        // Occupancy accounting: busy time is the sum of committed task
        // durations — folded exactly once each. If the reorder buffer also
        // folded at receive time, buffered completions would be counted
        // twice and busy time would exceed this sum.
        let task_sum: std::time::Duration = stats.tasks.iter().map(|t| t.duration).sum();
        assert_eq!(
            stats.worker_busy_time, task_sum,
            "{threads} threads: busy time must equal the task-duration sum"
        );
        let occ = stats.occupancy();
        assert!(
            occ > 0.0 && occ <= 1.0,
            "{threads} threads: occupancy {occ} out of range"
        );
    }
}

#[test]
fn veloct_run_covers_all_four_layers() {
    let _g = lock();
    let design = rocket_lite(16);
    let veloct = Veloct::with_config(
        &design,
        VeloctConfig {
            pairs_per_instr: 1,
            ..VeloctConfig::default()
        },
    );
    trace::init(TraceConfig::on());
    let report = veloct.classify(&default_candidates());
    let trace = trace::drain();
    trace::init(TraceConfig::Off);
    assert!(report.invariant.is_some());

    let spans = trace.span_totals();
    for name in [
        "veloct.classify",
        "veloct.learn",
        "engine.learn",
        "smt.session.solve",
        "sat.solve",
    ] {
        assert!(spans.contains_key(name), "missing span {name}");
    }
    trace::validate_json(&trace.chrome_json()).expect("valid JSON");

    // The text report is deterministic: rendering the same trace twice gives
    // byte-identical output.
    assert_eq!(trace.text_report(), trace.text_report());
}

#[test]
fn tracing_off_records_nothing_during_a_real_run() {
    let _g = lock();
    trace::init(TraceConfig::Off);
    let design = rocket_lite(16);
    let safe = alu_set();
    let (miter, examples, props) = setup(&design, &safe);
    let patterns = instruction_patterns(&safe);
    let miner = CoiMiner::new(&miter, &examples, Some(patterns), vec![]);
    let mut engine = ParallelEngine::new(miter.netlist(), miner, EngineConfig::default(), 2);
    engine.learn(&props).expect("invariant");
    let trace = trace::drain();
    assert!(trace.events.is_empty(), "Off must record zero events");
    assert_eq!(trace.dropped, 0);
}
