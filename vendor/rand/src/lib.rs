//! Minimal, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors the small surface it needs: a seedable RNG
//! (`rngs::StdRng`), the [`SeedableRng`] constructor and the [`Rng::gen`]
//! sampling method for primitive types.
//!
//! The generator is xoshiro256** seeded through splitmix64 — high quality,
//! deterministic across platforms, and *not* the same stream as upstream
//! `StdRng` (callers in this workspace only rely on determinism per seed,
//! never on a specific stream).

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a uniform value in `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping is fine for test workloads.
        range.start + self.next_u64() % span
    }

    /// Samples a uniform bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructors for seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; same API, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn covers_primitive_types() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u8 = r.gen();
        let _: bool = r.gen();
        let _: usize = r.gen();
        assert!(r.gen_range(3..10) >= 3);
    }
}
