//! Minimal, dependency-free stand-in for the subset of `criterion` used by
//! this workspace's benches. The build environment has no crates.io access,
//! so the workspace vendors the surface it needs: [`Criterion`] with
//! `sample_size` and `bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — each benchmark runs `sample_size`
//! timed samples (after one warm-up call) and reports min / median / max
//! wall-clock time per iteration to stdout. There is no outlier analysis,
//! HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (best-effort without
/// nightly intrinsics).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes lazy statics / caches).
        black_box(routine());
        let n = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / n as u32);
    }
}

/// Benchmark driver. One instance is shared by all benchmarks in a group.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        if b.samples.is_empty() {
            println!("{id:<48} (no samples recorded)");
            return self;
        }
        b.samples.sort();
        let min = b.samples[0];
        let med = b.samples[b.samples.len() / 2];
        let max = b.samples[b.samples.len() - 1];
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max)
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target_a, target_b)` or the struct-like form with
/// an explicit `config = ...;` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("stub/spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn formats_are_humane() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
    }
}
