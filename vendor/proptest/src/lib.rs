//! Minimal, dependency-free stand-in for the subset of `proptest` used by
//! this workspace's property tests. The build environment has no crates.io
//! access, so the workspace vendors the surface it needs:
//!
//! * the [`proptest!`] macro (multiple `#[test]` fns, `name in strategy` and
//!   `name: Type` parameters, optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`],
//! * the [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//!   tuple and integer-range strategies, `any::<T>()` and
//!   [`collection::vec`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the case index and the generated inputs' debug output is left to the
//! assertion message. Generation is fully deterministic (fixed seed derived
//! from the case index), so failures reproduce exactly across runs.

pub mod test_runner {
    /// Error produced by a single test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property does not hold.
        Fail(String),
        /// Input rejected by `prop_assume!` — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Test-runner configuration (only the `cases` knob is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256** generator seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator for case number `case` (deterministic across runs).
        pub fn for_case(case: u64) -> TestRng {
            let mut x = 0x9E3779B97F4A7C15u64 ^ case.wrapping_mul(0xA24BAED4963EE407);
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    #[derive(Debug)]
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo + 1;
                    (lo + if span == 0 { rng.next_u64() } else { rng.below(span) }) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8 u16 u32 usize);

    impl Strategy for core::ops::Range<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            let (lo, hi) = (*self.start(), *self.end());
            if lo == 0 && hi == u64::MAX {
                return rng.next_u64();
            }
            lo + rng.below(hi - lo + 1)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty)*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy of an [`Arbitrary`] type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over the value space).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors with element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*),
            __l,
            __r
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right` (both: `{:?}`)",
            __l
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Supports `name in strategy` and `name: Type`
/// parameters (the latter uses `any::<Type>()`), an optional leading
/// `#![proptest_config(expr)]`, and multiple test functions per invocation.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($cfg) ($body) () () $($params)*);
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Terminal: all parameters munched — emit the case loop.
    (($cfg:expr) ($body:block) ($($pat:ident)*) ($($strat:expr;)*)) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        for __case in 0..(__config.cases as u64) {
            let mut __rng = $crate::test_runner::TestRng::for_case(__case);
            $(
                let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
            )*
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::std::result::Result::Ok(()) })();
            match __outcome {
                ::std::result::Result::Ok(()) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    panic!("property failed at case {}: {}", __case, __msg)
                }
            }
        }
    }};
    // `name in strategy` (more parameters follow).
    (($cfg:expr) ($body:block) ($($pat:ident)*) ($($strat:expr;)*) $name:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg) ($body) ($($pat)* $name) ($($strat;)* $s;) $($rest)*)
    };
    // `name in strategy` (final parameter).
    (($cfg:expr) ($body:block) ($($pat:ident)*) ($($strat:expr;)*) $name:ident in $s:expr) => {
        $crate::__proptest_case!(($cfg) ($body) ($($pat)* $name) ($($strat;)* $s;))
    };
    // `name: Type` (more parameters follow).
    (($cfg:expr) ($body:block) ($($pat:ident)*) ($($strat:expr;)*) $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg) ($body) ($($pat)* $name) ($($strat;)* $crate::arbitrary::any::<$ty>();) $($rest)*)
    };
    // `name: Type` (final parameter).
    (($cfg:expr) ($body:block) ($($pat:ident)*) ($($strat:expr;)*) $name:ident : $ty:ty) => {
        $crate::__proptest_case!(($cfg) ($body) ($($pat)* $name) ($($strat;)* $crate::arbitrary::any::<$ty>();))
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mixed `in` and typed parameters, trailing comma.
        #[test]
        fn mixed_parameters(
            v in crate::collection::vec(0u8..10, 1..5),
            x: u8,
            flag: bool,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
            let _ = (x, flag);
        }

        #[test]
        fn oneof_and_map(choice in prop_oneof![
            (0u8..3).prop_map(|x| x as u32),
            Just(99u32),
            (10u32..20).prop_map(|x| x + 1),
        ]) {
            prop_assert!(choice < 3 || choice == 99 || (11..21).contains(&choice));
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "even after assume; n = {}", n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..10);
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
