//! End-to-end certification tests: certification mode must not change what
//! is learned, and the emitted bundle must satisfy — and only satisfy — the
//! independent `hh-proof` checker.

use hh_isa::{InstrClass, Mnemonic, ALL_MNEMONICS};
use hh_uarch::rocketlite::rocket_lite;
use veloct::{Veloct, VeloctConfig};

fn alu_safe_set() -> Vec<Mnemonic> {
    ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| m.class() == InstrClass::Alu)
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hh-certify-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The certified quadrant (clause transfer off, solutions recorded) learns
/// the exact same invariant as the default configuration, at every thread
/// count.
#[test]
fn certification_mode_is_bit_identical() {
    let design = rocket_lite(16);
    let safe = alu_safe_set();
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        for certify in [false, true] {
            let v = Veloct::with_config(
                &design,
                VeloctConfig {
                    threads,
                    pairs_per_instr: 1,
                    certify,
                    ..VeloctConfig::default()
                },
            );
            let report = v.learn(&safe);
            let inv = report
                .invariant
                .unwrap_or_else(|| panic!("learning failed (threads={threads} certify={certify})"));
            let preds = inv.preds().to_vec();
            match &reference {
                None => reference = Some(preds),
                Some(r) => assert_eq!(
                    r, &preds,
                    "invariant differs at threads={threads} certify={certify}"
                ),
            }
            if certify {
                assert!(
                    !report.solutions.is_empty(),
                    "certified runs must record the solution table"
                );
            }
        }
    }
}

/// A certified RocketLite run emits a bundle the independent checker
/// accepts; corrupting the proof blob or tampering with the predicate list
/// makes it reject.
#[test]
fn emitted_bundle_checks_and_tampering_is_rejected() {
    let design = rocket_lite(16);
    let safe = alu_safe_set();
    let v = Veloct::with_config(
        &design,
        VeloctConfig {
            threads: 2,
            pairs_per_instr: 1,
            certify: true,
            ..VeloctConfig::default()
        },
    );
    let report = v.learn(&safe);
    let inv = report.invariant.expect("ALU set is provable on RocketLite");

    let dir = temp_dir("bundle");
    let summary = v
        .emit_certificate(&safe, &inv, &report.solutions, &dir)
        .expect("certificate emission succeeds");
    assert_eq!(summary.obligations, inv.len());
    assert!(summary.proof_bytes > 0);

    let report = hh_proof::cert::check_bundle(&dir).expect("genuine bundle must check");
    assert_eq!(report.obligations, inv.len());
    assert_eq!(report.predicates, inv.len());

    // Corrupt one byte of a proof blob: rejected.
    let blob = dir.join("obligation-000.drat");
    let mut bytes = std::fs::read(&blob).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&blob, &bytes).unwrap();
    assert!(
        hh_proof::cert::check_bundle(&dir).is_err(),
        "corrupted proof blob must be rejected"
    );
    bytes[mid] ^= 0x55;
    std::fs::write(&blob, &bytes).unwrap();
    hh_proof::cert::check_bundle(&dir).expect("restored bundle checks again");

    // Tamper with the predicate list: drop one predicate line and patch the
    // count. The coverage / property checks must catch it.
    let manifest = dir.join("MANIFEST");
    let text = std::fs::read_to_string(&manifest).unwrap();
    let n = inv.len();
    let tampered: Vec<&str> = text
        .lines()
        .filter(|l| !l.starts_with("pred eq "))
        .collect();
    let tampered = tampered
        .join("\n")
        .replace(&format!("predicates {n}"), "predicates 1");
    std::fs::write(&manifest, tampered + "\n").unwrap();
    assert!(
        hh_proof::cert::check_bundle(&dir).is_err(),
        "tampered predicate list must be rejected"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
