//! Positive-example generation (paper §5.2) and differential timing tests.
//!
//! For each proposed-safe instruction we simulate a *pair* of executions
//! that run the same NOP-padded program but start from equal-modulo-secret
//! states (the architectural registers differ). Each cycle of the paired
//! trace yields a product state; if the observable waveforms ever diverge,
//! the pair is direct evidence the instruction is unsafe (Def. 4.2/4.8 —
//! a positive example must satisfy the property). Otherwise the product
//! states are *cleaned* by example masking (§5.2.1) and become the positive
//! example set `E`.

use hh_isa::{asm, Instruction, Mnemonic};
use hh_netlist::eval::{InputValues, StateValues};
use hh_netlist::miter::Miter;
use hh_netlist::Bv;
use hh_sim::{product_states, simulate, state_waveform};
use hh_uarch::Design;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A left/right assignment of the architectural registers: the paired
/// executions differ exactly here (equal-modulo-secret initial states).
#[derive(Debug, Clone)]
pub struct SecretConfig {
    /// Left-side values for registers x1..x(n-1).
    pub left: Vec<u64>,
    /// Right-side values.
    pub right: Vec<u64>,
}

impl SecretConfig {
    fn uniform(design: &Design, left: &[(usize, u64)], right: &[(usize, u64)]) -> SecretConfig {
        let n = design.secret_regs.len();
        let mut l = vec![0u64; n];
        let mut r = vec![0u64; n];
        for &(reg, v) in left {
            l[reg - 1] = v;
        }
        for &(reg, v) in right {
            r[reg - 1] = v;
        }
        SecretConfig { left: l, right: r }
    }
}

/// The register that example programs use as a *public* (side-equal) memory
/// base address.
pub const PUBLIC_BASE_REG: usize = 4;
/// The public base address value.
pub const PUBLIC_BASE_ADDR: u64 = 0x40;

/// The null instruction ε: an undecodable word that the cores drop at the
/// front end (a fetch bubble). Programs pad with ε so the machine *drains*
/// between instructions — a stream of real NOPs would keep deep reorder
/// buffers saturated and architecturally hide downstream latency variation.
pub const BUBBLE: u32 = 0;

/// Curated secret configurations for *differential testing*: chosen to
/// trigger the operand-dependent fast/slow paths real microarchitectures
/// have (zero operands for zero-skip multipliers and probed registers,
/// equal/unequal operands for branches, cache hit-vs-miss address pairs).
pub fn adversarial_configs(design: &Design) -> Vec<SecretConfig> {
    let base = PUBLIC_BASE_ADDR;
    vec![
        // r1 differs, both nonzero.
        SecretConfig::uniform(
            design,
            &[(1, 3), (2, 7), (PUBLIC_BASE_REG, base)],
            &[(1, 9), (2, 7), (PUBLIC_BASE_REG, base)],
        ),
        // r2 differs with a zero (zero-skip / probe fast paths).
        SecretConfig::uniform(
            design,
            &[(1, 4), (2, 0), (PUBLIC_BASE_REG, base)],
            &[(1, 4), (2, 6), (PUBLIC_BASE_REG, base)],
        ),
        // r1 differs with a zero.
        SecretConfig::uniform(
            design,
            &[(1, 0), (2, 5), (PUBLIC_BASE_REG, base)],
            &[(1, 8), (2, 5), (PUBLIC_BASE_REG, base)],
        ),
        // Equal vs unequal operand pair (branch direction).
        SecretConfig::uniform(
            design,
            &[(1, 5), (2, 5), (PUBLIC_BASE_REG, base)],
            &[(1, 5), (2, 6), (PUBLIC_BASE_REG, base)],
        ),
        // Cache collision: left address equals the warmed public line,
        // right maps to the same set with a different tag.
        SecretConfig::uniform(
            design,
            &[(1, base), (2, base), (PUBLIC_BASE_REG, base)],
            &[(1, base + 0x40), (2, base + 0x40), (PUBLIC_BASE_REG, base)],
        ),
    ]
}

/// Random nonzero secret configurations for example generation. Zero is
/// excluded deliberately: the paper's generator only needs the values to
/// *differ*, and genuinely safe instructions are timing-equal for any
/// values; unsafe ones are weeded out by the adversarial configs first.
pub fn random_configs(design: &Design, count: usize, seed: u64) -> Vec<SecretConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if design.xlen >= 64 {
        u64::MAX
    } else {
        (1u64 << design.xlen) - 1
    };
    (0..count)
        .map(|_| {
            let mut draw = |exclude: u64| loop {
                let v = rng.gen::<u64>() & mask;
                if v != 0 && v != exclude {
                    return v;
                }
            };
            let l1 = draw(0);
            let r1 = draw(l1);
            let l2 = draw(0);
            let r2 = draw(l2);
            SecretConfig::uniform(
                design,
                &[(1, l1), (2, l2), (PUBLIC_BASE_REG, PUBLIC_BASE_ADDR)],
                &[(1, r1), (2, r2), (PUBLIC_BASE_REG, PUBLIC_BASE_ADDR)],
            )
        })
        .collect()
}

/// The canonical operand binding of example programs: `rd = x3, rs1 = x1,
/// rs2 = x2`.
pub fn exemplar(m: Mnemonic) -> Instruction {
    asm::exemplar(m, 3, 1, 2)
}

/// Destination registers rotated across the copies of the instruction under
/// analysis. Coverage matters (paper §3.2.1: backtracking is caused by
/// deficiencies in positive examples): every architectural register must be
/// written by some example, otherwise spurious `EqConst(busy_r, 0)`-style
/// predicates survive mining, get picked into abducts, fail, and force
/// backtracks. The public base register (x4) is written last, after the
/// memory system no longer needs it.
const EXAMPLE_RDS: [u8; 7] = [3, 5, 6, 7, 1, 2, 4];

/// Builds the adversarial *probe* program for differential testing: a
/// cache-warming public access, NOP padding, the instruction under test,
/// drain padding. The warm access gives cache-timing channels something to
/// hit or miss against.
pub fn probe_program(design: &Design, m: Mnemonic) -> Vec<u32> {
    let pad = design.max_latency + 2;
    let mut prog = Vec::new();
    // Warm the cache at the public base so cache state is probe-visible.
    prog.push(asm::lw(6, PUBLIC_BASE_REG as u8, 0).encode());
    prog.extend(std::iter::repeat_n(BUBBLE, pad));
    prog.push(exemplar(m).encode());
    prog.extend(std::iter::repeat_n(BUBBLE, 2 * pad));
    prog
}

/// Builds the example program for positive-example generation and returns
/// `(program, window_start)`.
///
/// As in the paper (§5.2), the infrastructure's start-up code contains an
/// *unsafe* instruction — a store that initialises the memory system at the
/// public base address. Example extraction therefore starts at
/// `window_start` (the cycle the instruction under analysis is fed), so no
/// extracted state has the unsafe instruction concurrently in flight; what
/// remains of it is *residue* in the out-of-order structures, which example
/// masking (§5.2.1) scrubs.
pub fn example_program(design: &Design, m: Mnemonic) -> (Vec<u32>, usize) {
    example_program_with_rds(design, m, &EXAMPLE_RDS)
}

/// [`example_program`] with an explicit destination-register rotation —
/// passing fewer registers yields deliberately *less* exhaustive examples
/// (more spurious predicates survive mining, more backtracking), which is
/// how the benchmarks reproduce the paper's Figure 5 regime.
pub fn example_program_with_rds(design: &Design, m: Mnemonic, rds: &[u8]) -> (Vec<u32>, usize) {
    let pad = design.max_latency + 2;
    let mut prog = Vec::new();
    // Unsafe start-up: a store to the public base (identical on both sides).
    prog.push(asm::sw(PUBLIC_BASE_REG as u8, PUBLIC_BASE_REG as u8, 0).encode());
    prog.extend(std::iter::repeat_n(BUBBLE, pad));
    // A real NOP so examples cover NOP execution states.
    prog.push(asm::nop().encode());
    prog.extend(std::iter::repeat_n(BUBBLE, pad));
    let window_start = prog.len();
    // Several copies of the instruction under analysis with rotating
    // destination registers and alternating source bindings: this exercises
    // every scoreboard bit, wraps the reorder buffer and reuses issue-queue
    // slots, so that values which are *not* architectural constants vary in
    // the example set. The rotation repeats until the deepest structure of
    // the design has wrapped at least once.
    let copies = rds.len().max(design.example_depth);
    for i in 0..copies {
        let rd = rds[i % rds.len()];
        let (rs1, rs2) = if i % 2 == 0 { (1, 2) } else { (2, 1) };
        prog.push(asm::exemplar(m, rd, rs1, rs2).encode());
        prog.extend(std::iter::repeat_n(BUBBLE, pad));
    }
    prog.push(asm::nop().encode());
    prog.extend(std::iter::repeat_n(BUBBLE, pad));
    (prog, window_start)
}

fn initial_state(design: &Design, values: &[u64]) -> StateValues {
    let mut s = StateValues::initial(&design.netlist);
    for (i, &v) in values.iter().enumerate() {
        s.set(design.secret_regs[i], Bv::new(design.xlen, v));
    }
    s
}

fn drive(design: &Design, prog: &[u32], cycles: usize) -> Vec<InputValues> {
    (0..cycles)
        .map(|c| {
            let w = prog.get(c).copied().unwrap_or(BUBBLE);
            let mut iv = InputValues::zeros(&design.netlist);
            iv.set_by_name(&design.netlist, &design.instr_input, Bv::new(32, w as u64));
            iv
        })
        .collect()
}

/// Evidence that an instruction pair diverged: the observable waveforms
/// differ at `cycle`.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The instruction under test.
    pub mnemonic: Mnemonic,
    /// First differing cycle.
    pub cycle: usize,
}

/// Runs one paired execution of the given program under `config`; `m` is
/// carried for divergence reporting. Returns the masked product states or
/// the divergence evidence.
pub fn run_program_pair(
    design: &Design,
    miter: &Miter,
    m: Mnemonic,
    prog: &[u32],
    config: &SecretConfig,
) -> Result<Vec<StateValues>, Divergence> {
    run_program_pair_window(design, miter, m, prog, config, 0)
}

/// [`run_program_pair`] extracting examples only from `window_start`
/// onwards (the in-flight window of §5.2, excluding start-up cycles whose
/// states reflect unsafe-instruction execution). The divergence check still
/// covers the whole trace.
pub fn run_program_pair_window(
    design: &Design,
    miter: &Miter,
    m: Mnemonic,
    prog: &[u32],
    config: &SecretConfig,
    window_start: usize,
) -> Result<Vec<StateValues>, Divergence> {
    let cycles = prog.len() + design.max_latency;
    let inputs = drive(design, prog, cycles);
    let lt = simulate(
        &design.netlist,
        initial_state(design, &config.left),
        &inputs,
    );
    let rt = simulate(
        &design.netlist,
        initial_state(design, &config.right),
        &inputs,
    );

    // Trace indistinguishability on the observables (Def. 4.2).
    for &o in &design.observable {
        let lw = state_waveform(&lt, o);
        let rw = state_waveform(&rt, o);
        if let Some(cycle) = lw.iter().zip(&rw).position(|(a, b)| a != b) {
            return Err(Divergence { mnemonic: m, cycle });
        }
    }

    let mut states = product_states(miter, &lt, &rt);
    // Def. 4.8: each example must step to another positive example; drop the
    // final state, whose successor we did not observe.
    states.pop();
    states.drain(..window_start.min(states.len()));
    for s in &mut states {
        apply_masking(design, miter, s);
    }
    Ok(states)
}

/// [`run_program_pair_window`] without the masking pass (ablation support).
pub fn run_program_pair_unmasked(
    design: &Design,
    miter: &Miter,
    m: Mnemonic,
    prog: &[u32],
    config: &SecretConfig,
    window_start: usize,
) -> Result<Vec<StateValues>, Divergence> {
    // Re-run the paired simulation but skip `apply_masking`.
    let cycles = prog.len() + design.max_latency;
    let inputs = drive(design, prog, cycles);
    let lt = simulate(
        &design.netlist,
        initial_state(design, &config.left),
        &inputs,
    );
    let rt = simulate(
        &design.netlist,
        initial_state(design, &config.right),
        &inputs,
    );
    for &o in &design.observable {
        let lw = state_waveform(&lt, o);
        let rw = state_waveform(&rt, o);
        if let Some(cycle) = lw.iter().zip(&rw).position(|(a, b)| a != b) {
            return Err(Divergence { mnemonic: m, cycle });
        }
    }
    let mut states = product_states(miter, &lt, &rt);
    states.pop();
    states.drain(..window_start.min(states.len()));
    Ok(states)
}

/// Runs one paired execution of `m`'s adversarial probe program (used by
/// differential testing).
pub fn run_pair(
    design: &Design,
    miter: &Miter,
    m: Mnemonic,
    config: &SecretConfig,
) -> Result<Vec<StateValues>, Divergence> {
    let prog = probe_program(design, m);
    run_program_pair(design, miter, m, &prog, config)
}

/// Example masking (§5.2.1): entries whose valid bit is 0 are reset to their
/// initial values so stale uop/operand residue cannot block predicate
/// mining.
pub fn apply_masking(design: &Design, miter: &Miter, state: &mut StateValues) {
    for rule in &design.masking {
        for side in [miter.left(rule.valid), miter.right(rule.valid)] {
            let valid = state.get(side);
            if valid.is_nonzero() {
                continue;
            }
            // Reset the rule's fields on the same side only.
            let left_side = side == miter.left(rule.valid);
            for &f in &rule.fields {
                let target = if left_side {
                    miter.left(f)
                } else {
                    miter.right(f)
                };
                state.set(target, design.netlist.init_of(f));
            }
        }
    }
}

/// Differentially tests `m` with the adversarial configurations; returns
/// divergence evidence if any pair's observable timing differs.
pub fn differential_test(design: &Design, miter: &Miter, m: Mnemonic) -> Option<Divergence> {
    for config in adversarial_configs(design) {
        if let Err(d) = run_pair(design, miter, m, &config) {
            return Some(d);
        }
    }
    None
}

/// Generates the positive example set for a proposed safe set: paired traces
/// for every instruction (random nonzero secrets), cleaned and deduplicated.
///
/// # Errors
///
/// Returns the first [`Divergence`] encountered — generation-time proof that
/// some proposed instruction is unsafe.
pub fn generate_examples(
    design: &Design,
    miter: &Miter,
    safe: &[Mnemonic],
    pairs_per_instr: usize,
    seed: u64,
) -> Result<Vec<StateValues>, Divergence> {
    generate_examples_opts(design, miter, safe, pairs_per_instr, seed, true)
}

/// [`generate_examples`] with example masking optionally disabled — the
/// ablation of §5.2.1: without masking, stale-uop residue in out-of-order
/// structures blocks the `InSafeSet` predicates the invariant needs.
pub fn generate_examples_opts(
    design: &Design,
    miter: &Miter,
    safe: &[Mnemonic],
    pairs_per_instr: usize,
    seed: u64,
    mask: bool,
) -> Result<Vec<StateValues>, Divergence> {
    generate_examples_custom(
        design,
        miter,
        safe,
        pairs_per_instr,
        seed,
        mask,
        &EXAMPLE_RDS,
    )
}

/// [`generate_examples_opts`] with an explicit destination-register
/// rotation (example-richness knob).
#[allow(clippy::too_many_arguments)]
pub fn generate_examples_custom(
    design: &Design,
    miter: &Miter,
    safe: &[Mnemonic],
    pairs_per_instr: usize,
    seed: u64,
    mask: bool,
    rds: &[u8],
) -> Result<Vec<StateValues>, Divergence> {
    let mut out: Vec<StateValues> = Vec::new();
    for (k, &m) in safe.iter().enumerate() {
        let configs = random_configs(design, pairs_per_instr, seed ^ ((k as u64) << 8));
        let (prog, window) = example_program_with_rds(design, m, rds);
        for config in &configs {
            let states = if mask {
                run_program_pair_window(design, miter, m, &prog, config, window)?
            } else {
                run_program_pair_unmasked(design, miter, m, &prog, config, window)?
            };
            out.extend(states);
        }
    }
    out.sort_by(|a, b| a.iter().map(|(_, v)| v).cmp(b.iter().map(|(_, v)| v)));
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_uarch::boomlite::{boom_lite, BoomVariant};
    use hh_uarch::rocketlite::rocket_lite;

    #[test]
    fn safe_alu_instruction_generates_examples() {
        let d = rocket_lite(16);
        let m = Miter::build(&d.netlist);
        let cfgs = random_configs(&d, 2, 7);
        for c in cfgs {
            let states = run_pair(&d, &m, Mnemonic::Add, &c).expect("add is timing-safe");
            assert!(states.len() > 10);
            // Property holds on every example: observables equal.
            for s in &states {
                for &o in &d.observable {
                    assert_eq!(s.get(m.left(o)), s.get(m.right(o)));
                }
            }
        }
    }

    #[test]
    fn mul_diverges_on_rocketlite() {
        let d = rocket_lite(16);
        let m = Miter::build(&d.netlist);
        let div = differential_test(&d, &m, Mnemonic::Mul);
        assert!(div.is_some(), "zero-skip multiplier must be caught");
    }

    #[test]
    fn mul_is_clean_on_boomlite() {
        let d = boom_lite(BoomVariant::Small, 16);
        let m = Miter::build(&d.netlist);
        assert!(differential_test(&d, &m, Mnemonic::Mul).is_none());
        assert!(differential_test(&d, &m, Mnemonic::Mulhu).is_none());
    }

    #[test]
    fn auipc_diverges_on_boomlite_but_not_rocketlite() {
        let db = boom_lite(BoomVariant::Small, 16);
        let mb = Miter::build(&db.netlist);
        assert!(
            differential_test(&db, &mb, Mnemonic::Auipc).is_some(),
            "the jump-unit probe quirk must surface"
        );
        let dr = rocket_lite(16);
        let mr = Miter::build(&dr.netlist);
        assert!(differential_test(&dr, &mr, Mnemonic::Auipc).is_none());
    }

    #[test]
    fn memory_ops_diverge() {
        let d = rocket_lite(16);
        let m = Miter::build(&d.netlist);
        assert!(differential_test(&d, &m, Mnemonic::Lw).is_some());
        assert!(differential_test(&d, &m, Mnemonic::Sw).is_some());
        let db = boom_lite(BoomVariant::Small, 16);
        let mb = Miter::build(&db.netlist);
        assert!(differential_test(&db, &mb, Mnemonic::Lw).is_some());
    }

    #[test]
    fn branches_diverge() {
        let d = rocket_lite(16);
        let m = Miter::build(&d.netlist);
        assert!(differential_test(&d, &m, Mnemonic::Beq).is_some());
        assert!(differential_test(&d, &m, Mnemonic::Bne).is_some());
    }

    #[test]
    fn masking_scrubs_invalid_entries() {
        let d = boom_lite(BoomVariant::Small, 16);
        let m = Miter::build(&d.netlist);
        // Run a mul, then inspect post-issue states: the stale muliq uop
        // must be masked back to the NOP reset value.
        let cfg = &random_configs(&d, 1, 3)[0];
        let states = run_pair(&d, &m, Mnemonic::Mul, cfg).unwrap();
        let uop0 = d.netlist.find_state("muliq$uop0").unwrap();
        let v0 = d.netlist.find_state("muliq$v0").unwrap();
        let nopw = hh_isa::Instruction::nop().encode() as u64;
        for s in &states {
            if !s.get(m.left(v0)).is_nonzero() {
                assert_eq!(
                    s.get(m.left(uop0)).bits(),
                    nopw,
                    "invalid entry must be masked to reset"
                );
            }
        }
        // And at least one state *did* have the entry valid with a real mul.
        let mulw = exemplar(Mnemonic::Mul).encode() as u64;
        assert!(states
            .iter()
            .any(|s| s.get(m.left(v0)).is_nonzero() && s.get(m.left(uop0)).bits() == mulw));
    }

    #[test]
    fn generate_examples_for_small_safe_set() {
        let d = rocket_lite(16);
        let m = Miter::build(&d.netlist);
        let safe = [Mnemonic::Add, Mnemonic::Addi, Mnemonic::Xor];
        let ex = generate_examples(&d, &m, &safe, 1, 11).expect("all safe");
        // Idle (ε-padded) cycles dedup heavily; what matters is coverage:
        // at least one state per instruction with it in the decode register.
        assert!(ex.len() > 5, "got {}", ex.len());
        let dec = d.netlist.find_state("dec_instr").unwrap();
        for &mn in &safe {
            let w = exemplar(mn).encode() as u64;
            assert!(
                ex.iter().any(|s| s.get(m.left(dec)).bits() == w),
                "no example with {mn} in flight"
            );
        }
    }

    #[test]
    fn generate_examples_fails_fast_on_unsafe_member() {
        let d = rocket_lite(16);
        let m = Miter::build(&d.netlist);
        // With nonzero random secrets, mul does NOT diverge (both slow):
        // generation succeeds even though mul is unsafe — that is exactly
        // why learning must still be able to fail (and why the adversarial
        // prefilter exists).
        let safe = [Mnemonic::Mul];
        let r = generate_examples(&d, &m, &safe, 1, 5);
        assert!(r.is_ok(), "nonzero operands hide the zero-skip path");
        // But lw diverges even under random secrets (cold/warm cache).
        let safe2 = [Mnemonic::Lw];
        let _ = generate_examples(&d, &m, &safe2, 1, 5); // may or may not diverge
    }
}
