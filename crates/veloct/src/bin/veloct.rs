//! The `veloct` command-line tool: safe-instruction-set synthesis for a
//! hardware design given in btor2 (the input format of the paper's tool,
//! §6.1) plus command-line annotations.
//!
//! ```text
//! veloct --design <file.btor2> \
//!        --instr-input <input-name> \
//!        --observable <state-name> [--observable <state>...] \
//!        --secret-reg <state-name> [--secret-reg <state>...] \
//!        [--mask <valid-state>=<field-state>[,<field-state>...]]... \
//!        [--xlen 16] [--max-latency 24] [--threads N] [--impl-predicates] \
//!        [--builtin rocketlite|boom-small|boom-medium|boom-large|boom-mega]
//! ```
//!
//! With `--builtin`, the design and all annotations come from `hh-uarch` and
//! the remaining options are ignored; otherwise the btor2 file plus the
//! annotations define the verification target.

use hh_netlist::btor2::parse_btor2;
use hh_uarch::boomlite::{boom_lite, BoomVariant};
use hh_uarch::rocketlite::rocket_lite;
use hh_uarch::{Design, MaskRule};
use std::process::ExitCode;
use veloct::{default_candidates, Veloct, VeloctConfig};

#[derive(Debug, Default)]
struct Args {
    design_path: Option<String>,
    builtin: Option<String>,
    instr_input: Option<String>,
    observables: Vec<String>,
    secret_regs: Vec<String>,
    masks: Vec<(String, Vec<String>)>,
    xlen: u32,
    max_latency: usize,
    threads: usize,
    impl_predicates: bool,
    portfolio: bool,
    certify: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: veloct --builtin <rocketlite|boom-small|boom-medium|boom-large|boom-mega>\n\
         \x20      | veloct --design <file.btor2> --instr-input <name>\n\
         \x20               --observable <state>... --secret-reg <state>...\n\
         \x20               [--mask <valid>=<field>[,<field>...]]...\n\
         \x20               [--xlen N] [--max-latency N]\n\
         \x20      common: [--threads N] [--impl-predicates] [--portfolio] [--certify <dir>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        xlen: 16,
        max_latency: 24,
        threads: 1,
        ..Args::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--design" => args.design_path = Some(val(&mut it)),
            "--builtin" => args.builtin = Some(val(&mut it)),
            "--instr-input" => args.instr_input = Some(val(&mut it)),
            "--observable" => args.observables.push(val(&mut it)),
            "--secret-reg" => args.secret_regs.push(val(&mut it)),
            "--mask" => {
                let spec = val(&mut it);
                let (valid, fields) = spec.split_once('=').unwrap_or_else(|| usage());
                args.masks.push((
                    valid.to_string(),
                    fields.split(',').map(|s| s.to_string()).collect(),
                ));
            }
            "--xlen" => args.xlen = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--max-latency" => args.max_latency = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--impl-predicates" => args.impl_predicates = true,
            "--portfolio" => args.portfolio = true,
            "--certify" => args.certify = Some(val(&mut it)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn load_design(args: &Args) -> Result<Design, String> {
    if let Some(name) = &args.builtin {
        return Ok(match name.as_str() {
            "rocketlite" => rocket_lite(args.xlen),
            "boom-small" => boom_lite(BoomVariant::Small, args.xlen),
            "boom-medium" => boom_lite(BoomVariant::Medium, args.xlen),
            "boom-large" => boom_lite(BoomVariant::Large, args.xlen),
            "boom-mega" => boom_lite(BoomVariant::Mega, args.xlen),
            other => return Err(format!("unknown builtin design: {other}")),
        });
    }
    let path = args
        .design_path
        .as_ref()
        .ok_or("missing --design or --builtin")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let netlist = parse_btor2(&text).map_err(|e| e.to_string())?;

    let instr_input = args
        .instr_input
        .clone()
        .ok_or("missing --instr-input for a btor2 design")?;
    if netlist.find_input(&instr_input).is_none() {
        return Err(format!("design has no input named {instr_input}"));
    }
    let find = |name: &str| {
        netlist
            .find_state(name)
            .ok_or_else(|| format!("design has no state named {name}"))
    };
    let mut observable = Vec::new();
    for o in &args.observables {
        observable.push(find(o)?);
    }
    if observable.is_empty() {
        return Err("at least one --observable is required".into());
    }
    let mut secret_regs = Vec::new();
    for s in &args.secret_regs {
        secret_regs.push(find(s)?);
    }
    if secret_regs.is_empty() {
        return Err("at least one --secret-reg is required".into());
    }
    let mut masking = Vec::new();
    for (valid, fields) in &args.masks {
        let valid = find(valid)?;
        let mut fs = Vec::new();
        for f in fields {
            fs.push(find(f)?);
        }
        masking.push(MaskRule { valid, fields: fs });
    }
    let nregs = secret_regs.len() + 1;
    Ok(Design {
        netlist,
        instr_input,
        observable,
        secret_regs,
        masking,
        nregs,
        xlen: args.xlen,
        max_latency: args.max_latency,
        example_depth: args.max_latency.max(8),
    })
}

fn main() -> ExitCode {
    // HH_TRACE=<path.json> captures a Chrome trace of the run; see
    // docs/TRACE_SCHEMA.md for the span/counter vocabulary.
    let tracing = hh_trace::init_from_env();
    let args = parse_args();
    let design = match load_design(&args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "design: {} — {} state bits, {} state elements, {} inputs",
        design.netlist.name(),
        design.state_bits(),
        design.netlist.num_states(),
        design.netlist.num_inputs()
    );

    let mut config = VeloctConfig {
        threads: args.threads,
        pairs_per_instr: 1,
        impl_predicates: args.impl_predicates,
        certify: args.certify.is_some(),
        ..VeloctConfig::default()
    };
    config.engine.abduction.portfolio = args.portfolio;
    let veloct = Veloct::with_config(&design, config);
    let t0 = std::time::Instant::now();
    let report = veloct.classify(&default_candidates());
    let elapsed = t0.elapsed();

    println!(
        "\nverified safe instruction set ({} instructions):",
        report.safe.len()
    );
    let names: Vec<&str> = report.safe.iter().map(|m| m.name()).collect();
    println!("  {}", names.join(", "));
    if !report.rejected.is_empty() {
        println!("excluded:");
        for (m, why) in &report.rejected {
            println!("  {:8} {:?}", m.name(), why);
        }
    }
    let code = match &report.invariant {
        Some(inv) => {
            println!(
                "\ninvariant: {} predicates | {} tasks | {} backtracks | {} SMT queries | {elapsed:.2?}",
                inv.len(),
                report.stats.num_tasks(),
                report.stats.backtracks,
                report.stats.smt_queries
            );
            match &args.certify {
                None => ExitCode::SUCCESS,
                Some(dir) => {
                    let dir = std::path::Path::new(dir);
                    match veloct.emit_certificate(&report.safe, inv, &report.solutions, dir) {
                        Ok(summary) => {
                            println!(
                                "certificate: {} obligations, {} proof lines, {} bytes -> {}",
                                summary.obligations,
                                summary.proof_lines,
                                summary.proof_bytes,
                                dir.display()
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("certificate emission failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        None => {
            println!("\nno invariant learned for any candidate subset");
            ExitCode::FAILURE
        }
    };
    if tracing {
        match hh_trace::finish_to_env() {
            Ok(Some(path)) => println!("trace written to {path}"),
            Ok(None) => {}
            Err(e) => eprintln!("failed to write trace: {e}"),
        }
    }
    code
}
