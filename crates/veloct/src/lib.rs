//! # veloct — safe-instruction-set synthesis by relational invariant learning
//!
//! The paper's VeloCT framework (§4–5): given a processor design (RTL-style
//! transition system), an attacker-observable output annotation, and a
//! proposed set of safe instructions, VeloCT either learns an inductive
//! relational invariant proving that any program composed of those
//! instructions is timing-indistinguishable w.r.t. secrets, or reports that
//! no such invariant exists.
//!
//! The pipeline:
//!
//! 1. build the **miter** (product circuit) of the design,
//! 2. constrain the instruction input alphabet to the proposed safe set
//!    plus the null instruction (Σ of §4),
//! 3. **generate positive examples**: paired executions differing only in
//!    secret register values, NOP-padded, masked (§5.2),
//! 4. run **H-Houdini** with the Algorithm-2 miner (`Eq`/`EqConst`/
//!    `InSafeSet` + validated expert annotations) on the property
//!    `Eq(observable)` for every observable,
//! 5. for full synthesis, classify candidate instructions by adversarial
//!    differential testing first, then prove the surviving set.
//!
//! ```no_run
//! use hh_uarch::rocketlite::rocket_lite;
//! use veloct::{Veloct, default_candidates};
//!
//! let design = rocket_lite(16);
//! let veloct = Veloct::new(&design);
//! let report = veloct.classify(&default_candidates());
//! println!("safe set: {:?}", report.safe);
//! assert!(report.invariant.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod examples;

use examples::{differential_test, generate_examples, Divergence};
use hh_isa::{safe_set_patterns, InstrClass, Instruction, Mnemonic, ALL_MNEMONICS};
use hh_netlist::miter::Miter;
use hh_smt::EncodeCache;
use hh_smt::{Pattern, Predicate};
use hh_uarch::Design;
use hhoudini::baselines::{houdini, sorcar, BaselineBudget, BaselineOutcome, BaselineStats};
use hhoudini::mine::CoiMiner;
use hhoudini::{EngineConfig, Invariant, ParallelEngine, PredicateStore, Stats};
use std::sync::Arc;

/// Configuration of the VeloCT pipeline.
#[derive(Debug, Clone)]
pub struct VeloctConfig {
    /// Worker threads for the parallel engine.
    pub threads: usize,
    /// Engine configuration (abduction scope, memoisation).
    pub engine: EngineConfig,
    /// Paired executions per instruction during example generation.
    pub pairs_per_instr: usize,
    /// RNG seed for secret values.
    pub seed: u64,
    /// Maximum greedy drop attempts when learning fails for a set that
    /// passed differential testing.
    pub fallback_drops: usize,
    /// Enable Impl-type conditional predicates (the paper's §5.2.1
    /// future-work extension). When set, example masking is *disabled* and
    /// the miner instead emits `Impl(valid → InSafeSet(field))` predicates
    /// from the masking annotations, constraining table payloads only while
    /// their entries are valid.
    pub impl_predicates: bool,
    /// Run in certification mode: cross-cone learnt-clause transfer is
    /// disabled (imported clauses carry no derivation, so they would punch
    /// holes in DRAT proofs), and [`Veloct::emit_certificate`] can replay
    /// the memoised solutions into an `hh-proof` bundle. Learning results
    /// are bit-identical with the flag on or off — only solver-internal
    /// sharing changes.
    pub certify: bool,
}

impl Default for VeloctConfig {
    fn default() -> VeloctConfig {
        VeloctConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            engine: EngineConfig::default(),
            pairs_per_instr: 2,
            seed: 0xD1CE,
            fallback_drops: 4,
            impl_predicates: false,
            certify: false,
        }
    }
}

/// Why an instruction was excluded from the safe set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsafeReason {
    /// Adversarial differential testing produced observably different
    /// timing (with the first diverging cycle).
    TimingDivergence(usize),
    /// Example generation for the final set diverged.
    ExampleDivergence(usize),
    /// No inductive invariant exists with this instruction included (the
    /// paper's `auipc`-on-BOOM situation: possibly safe, but unverifiable).
    LearningFailed,
}

/// Result of proving one proposed safe set.
#[derive(Debug)]
pub struct LearnReport {
    /// The invariant, if one was learned.
    pub invariant: Option<Invariant>,
    /// Engine telemetry.
    pub stats: Stats,
    /// Number of positive examples used.
    pub num_examples: usize,
    /// Divergence evidence if generation already refuted the set.
    pub divergence: Option<Divergence>,
    /// Design size (state bits) for reporting.
    pub state_bits: u64,
    /// The engine's memoised solution table: per invariant predicate, the
    /// premise set that made it relatively inductive. This is the raw
    /// material for [`Veloct::emit_certificate`].
    pub solutions: Vec<(Predicate, Vec<Predicate>)>,
    /// Memo entries preloaded from a [`WarmContext`] before solving.
    pub memo_seeded: usize,
    /// Preloaded entries that survived into the final solution table (the
    /// rest were swept stale and re-learned).
    pub memo_reused: usize,
}

/// Warm state carried into [`Veloct::learn_warm`] by a resident service:
/// an engine-external [`EncodeCache`] that outlives the call, plus memoised
/// solutions from an earlier run to preload. Both are optional; the default
/// context reproduces the cold [`Veloct::learn`] behaviour exactly.
///
/// Soundness contract: the cache must have been built over a netlist whose
/// content is identical to the miter this run constructs, and every seeded
/// solution's target must have an unchanged cone signature (see
/// `hh_netlist::signature`) — `hh-serve` enforces both before calling.
#[derive(Debug, Default)]
pub struct WarmContext {
    /// Resident encode cache (replay streams + learnt-clause pools), or
    /// `None` to build a per-run cache as usual.
    pub encode_cache: Option<Arc<EncodeCache>>,
    /// `(target, premises)` solutions to preload into the engine memo.
    pub seeds: Vec<(Predicate, Vec<Predicate>)>,
}

/// Result of full safe-set synthesis (classification).
#[derive(Debug)]
pub struct SafeSetReport {
    /// The verified safe set.
    pub safe: Vec<Mnemonic>,
    /// Excluded instructions with reasons.
    pub rejected: Vec<(Mnemonic, UnsafeReason)>,
    /// The invariant proving the safe set.
    pub invariant: Option<Invariant>,
    /// Telemetry of the final (successful) learning run.
    pub stats: Stats,
    /// Positive examples used by the final run.
    pub num_examples: usize,
    /// Solution table of the final (successful) learning run — see
    /// [`LearnReport::solutions`].
    pub solutions: Vec<(Predicate, Vec<Predicate>)>,
}

/// Which monolithic baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Classic HOUDINI: start from the full pool, drop per counterexample.
    Houdini,
    /// SORCAR-style: property-directed growth from the property outward.
    Sorcar,
}

/// Result of a baseline run.
#[derive(Debug)]
pub struct BaselineReport {
    /// The invariant, if proved within budget.
    pub invariant: Option<Invariant>,
    /// Baseline telemetry (rounds, SMT time, wall time).
    pub stats: BaselineStats,
    /// Size of the global predicate pool.
    pub pool_size: usize,
    /// Whether the run hit its budget (the paper's "does not scale" case).
    pub budget_exceeded: bool,
}

/// The default candidate set: ALU, multiplier and memory instructions.
/// Control-flow instructions are excluded by policy, as in the paper
/// (§6.4 considers non-memory, non-control instructions; FP/CSR classes are
/// "categorized manually as unsafe").
pub fn default_candidates() -> Vec<Mnemonic> {
    ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| m.class() != InstrClass::Control)
        .collect()
}

/// The VeloCT analysis for one design.
#[derive(Debug)]
pub struct Veloct<'a> {
    design: &'a Design,
    config: VeloctConfig,
}

impl<'a> Veloct<'a> {
    /// Creates the analysis with default configuration.
    pub fn new(design: &'a Design) -> Veloct<'a> {
        Veloct::with_config(design, VeloctConfig::default())
    }

    /// Creates the analysis with explicit configuration.
    pub fn with_config(design: &'a Design, config: VeloctConfig) -> Veloct<'a> {
        Veloct { design, config }
    }

    /// The design under analysis.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// Builds the miter with the safe-set input constraint installed.
    ///
    /// Delegates to [`hh_uarch::decode::constrained_miter`] — the single
    /// construction shared with `hh-proof`'s certificate verifier and with
    /// `hh-serve`'s resident warm state, so that an emitted obligation CNF,
    /// its independent re-derivation, and a daemon's resident product
    /// netlist are all byte-identical. The build is deterministic: two
    /// calls with equal designs and safe sets produce netlists with
    /// identical state numbering, which is what lets warm-state predicates
    /// (resolved against a resident miter) be seeded into an engine that
    /// builds its own.
    pub fn build_miter(&self, safe: &[Mnemonic]) -> (Miter, Vec<Pattern>) {
        let patterns = instruction_patterns(safe);
        let miter =
            hh_uarch::decode::constrained_miter(self.design, &pattern_mask_matches(&patterns));
        (miter, patterns)
    }

    /// The property predicates: `Eq(o)` for each observable (§5).
    pub fn property(&self, miter: &Miter) -> Vec<Predicate> {
        self.design
            .observable
            .iter()
            .map(|&o| Predicate::eq(miter.left(o), miter.right(o)))
            .collect()
    }

    /// Attempts to learn an invariant proving the proposed safe set.
    pub fn learn(&self, safe: &[Mnemonic]) -> LearnReport {
        self.learn_warm(safe, WarmContext::default())
    }

    /// [`Veloct::learn`] over externally owned warm state: the resident
    /// encode cache and memo seeds of a long-running service. With the
    /// default context this *is* `learn`; with warm state the learned
    /// invariant is bit-identical to the cold run (replay and clause import
    /// cannot change outcomes, and seeds are solutions of the identical
    /// problem) — only the amount of fresh work differs, reported through
    /// [`LearnReport::memo_seeded`] / [`LearnReport::memo_reused`].
    pub fn learn_warm(&self, safe: &[Mnemonic], warm: WarmContext) -> LearnReport {
        let _span = hh_trace::span!("veloct", "veloct.learn");
        let (miter, patterns) = self.build_miter(safe);
        let state_bits = self.design.state_bits();
        // With Impl predicates on, masking is unnecessary (that is the
        // point of the extension) — generate raw examples instead.
        let mask = !self.config.impl_predicates;
        let example_span = hh_trace::span!("veloct", "veloct.examples");
        let examples = match examples::generate_examples_opts(
            self.design,
            &miter,
            safe,
            self.config.pairs_per_instr,
            self.config.seed,
            mask,
        ) {
            Ok(e) => e,
            Err(div) => {
                return LearnReport {
                    invariant: None,
                    stats: Stats::default(),
                    num_examples: 0,
                    divergence: Some(div),
                    state_bits,
                    solutions: Vec::new(),
                    memo_seeded: 0,
                    memo_reused: 0,
                }
            }
        };
        drop(example_span);
        let num_examples = examples.len();
        let miner = if self.config.impl_predicates {
            let guards: Vec<_> = self
                .design
                .masking
                .iter()
                .flat_map(|rule| rule.fields.iter().map(|&f| (rule.valid, f)))
                .collect();
            CoiMiner::new_with_guards(&miter, &examples, Some(patterns), vec![], &guards)
        } else {
            CoiMiner::new(&miter, &examples, Some(patterns), vec![])
        };
        let mut engine_config = self.config.engine.clone();
        if self.config.certify {
            // Imported learnt clauses carry no DRAT derivation; re-proving
            // them at import would cost more than the transfer saves, so
            // certification mode simply turns the sharing off.
            engine_config.clause_transfer = false;
        }
        let mut engine =
            ParallelEngine::new(miter.netlist(), miner, engine_config, self.config.threads);
        if let Some(cache) = warm.encode_cache {
            engine.set_encode_cache(cache);
        }
        let memo_seeded = engine.seed_solutions(&warm.seeds);
        let props = self.property(&miter);
        let invariant = engine.learn(&props);
        LearnReport {
            invariant,
            stats: engine.stats().clone(),
            num_examples,
            divergence: None,
            state_bits,
            solutions: engine.solutions(),
            memo_seeded,
            memo_reused: engine.seeds_reused(),
        }
    }

    /// Replays a learning run's memoised solutions into an `hh-proof`
    /// certificate bundle at `dir`: one DRAT-certified relative-induction
    /// obligation per invariant predicate, re-derivable and checkable by
    /// the standalone `certify` binary with no trust in this process.
    pub fn emit_certificate(
        &self,
        safe: &[Mnemonic],
        invariant: &Invariant,
        solutions: &[(Predicate, Vec<Predicate>)],
        dir: &std::path::Path,
    ) -> Result<hh_proof::cert::EmitSummary, hh_proof::cert::CertError> {
        let patterns = instruction_patterns(safe);
        let cert = hh_proof::cert::build_certificate(
            self.design,
            &pattern_mask_matches(&patterns),
            invariant.preds(),
            solutions,
        )?;
        hh_proof::cert::write_bundle(&cert, dir)
    }

    /// Runs a *monolithic* MLIS baseline (HOUDINI or SORCAR, §2.2) on the
    /// same problem: same miter, same examples, but the predicate pool is
    /// the global "kitchen sink" universe and every inductivity check spans
    /// the whole design. Used for the paper's speedup comparison.
    pub fn learn_baseline(
        &self,
        safe: &[Mnemonic],
        kind: BaselineKind,
        budget: &BaselineBudget,
    ) -> BaselineReport {
        let _span = hh_trace::span!("veloct", "veloct.baseline");
        let (miter, patterns) = self.build_miter(safe);
        let examples = match generate_examples(
            self.design,
            &miter,
            safe,
            self.config.pairs_per_instr,
            self.config.seed,
        ) {
            Ok(e) => e,
            Err(_) => {
                return BaselineReport {
                    invariant: None,
                    stats: BaselineStats::default(),
                    pool_size: 0,
                    budget_exceeded: false,
                }
            }
        };
        let miner = CoiMiner::new(&miter, &examples, Some(patterns), vec![]);
        let mut store = PredicateStore::new();
        let pool_ids = miner.mine_global(&mut store);
        let pool = store.resolve(&pool_ids);
        let props = self.property(&miter);
        let (outcome, stats) = match kind {
            BaselineKind::Houdini => houdini(miter.netlist(), &pool, &props, budget),
            BaselineKind::Sorcar => sorcar(miter.netlist(), &pool, &props, budget),
        };
        let budget_exceeded = matches!(outcome, BaselineOutcome::BudgetExceeded);
        BaselineReport {
            invariant: match outcome {
                BaselineOutcome::Proved(inv) => Some(inv),
                _ => None,
            },
            stats,
            pool_size: pool.len(),
            budget_exceeded,
        }
    }

    /// Full safe-instruction-set synthesis: adversarial differential
    /// prefilter, then invariant learning over the surviving set, with a
    /// bounded greedy-drop fallback if learning fails.
    pub fn classify(&self, candidates: &[Mnemonic]) -> SafeSetReport {
        let _span = hh_trace::span!("veloct", "veloct.classify");
        let (probe_miter, _) = self.build_miter(candidates);
        let mut rejected: Vec<(Mnemonic, UnsafeReason)> = Vec::new();
        let mut survivors: Vec<Mnemonic> = Vec::new();
        {
            let _difftest = hh_trace::span!("veloct", "veloct.difftest");
            for &m in candidates {
                match differential_test(self.design, &probe_miter, m) {
                    Some(div) => rejected.push((m, UnsafeReason::TimingDivergence(div.cycle))),
                    None => survivors.push(m),
                }
            }
        }

        let mut drops = 0;
        loop {
            if survivors.is_empty() {
                return SafeSetReport {
                    safe: vec![],
                    rejected,
                    invariant: None,
                    stats: Stats::default(),
                    num_examples: 0,
                    solutions: Vec::new(),
                };
            }
            let report = self.learn(&survivors);
            if let Some(div) = &report.divergence {
                let m = div.mnemonic;
                survivors.retain(|&x| x != m);
                rejected.push((m, UnsafeReason::ExampleDivergence(div.cycle)));
                continue;
            }
            match report.invariant {
                Some(inv) => {
                    return SafeSetReport {
                        safe: survivors,
                        rejected,
                        invariant: Some(inv),
                        stats: report.stats,
                        num_examples: report.num_examples,
                        solutions: report.solutions,
                    };
                }
                None => {
                    if drops >= self.config.fallback_drops {
                        return SafeSetReport {
                            safe: vec![],
                            rejected,
                            invariant: None,
                            stats: report.stats,
                            num_examples: report.num_examples,
                            solutions: Vec::new(),
                        };
                    }
                    drops += 1;
                    // Greedy fallback: drop the least-plausible survivor
                    // (multiplier class first, then from the back).
                    let victim = survivors
                        .iter()
                        .position(|m| m.class() == InstrClass::Mul)
                        .unwrap_or(survivors.len() - 1);
                    let m = survivors.remove(victim);
                    rejected.push((m, UnsafeReason::LearningFailed));
                }
            }
        }
    }
}

/// Converts ISA mask/match pairs into SMT patterns, always including the
/// canonical NOP and the all-zero *null instruction* ε (the cores treat
/// undecodable words as bubbles, following the paper's Σ = instructions ∪
/// {ε}).
pub fn instruction_patterns(safe: &[Mnemonic]) -> Vec<Pattern> {
    let mut patterns: Vec<Pattern> = safe_set_patterns(safe)
        .into_iter()
        .map(|mm| Pattern {
            mask: mm.mask as u64,
            value: mm.matches as u64,
        })
        .collect();
    let nop = Instruction::nop().encode() as u64;
    patterns.push(Pattern {
        mask: 0xffff_ffff,
        value: nop,
    });
    patterns.push(Pattern {
        mask: 0xffff_ffff,
        value: examples::BUBBLE as u64,
    });
    patterns.sort();
    patterns.dedup();
    patterns
}

/// Converts SMT patterns back into the ISA mask/match form consumed by
/// [`hh_uarch::decode::constrained_miter`] (and recorded verbatim in
/// certificate bundles).
fn pattern_mask_matches(patterns: &[Pattern]) -> Vec<hh_isa::MaskMatch> {
    patterns
        .iter()
        .map(|p| hh_isa::MaskMatch {
            mask: p.mask as u32,
            matches: p.value as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_uarch::rocketlite::rocket_lite;

    /// The Rocket-style ALU safe set used across tests.
    pub(crate) fn alu_safe_set() -> Vec<Mnemonic> {
        ALL_MNEMONICS
            .iter()
            .copied()
            .filter(|m| m.class() == InstrClass::Alu)
            .collect()
    }

    #[test]
    fn learns_invariant_for_rocketlite_alu_set() {
        let d = rocket_lite(16);
        let v = Veloct::with_config(
            &d,
            VeloctConfig {
                threads: 2,
                pairs_per_instr: 1,
                ..VeloctConfig::default()
            },
        );
        let report = v.learn(&alu_safe_set());
        let inv = report
            .invariant
            .expect("ALU-only safe set must be provable on RocketLite");
        assert!(inv.len() >= 3);
        assert!(report.stats.num_tasks() >= inv.len() / 2);
        // The paper's §6.4 cross-check: monolithically verify the learned
        // invariant.
        let (miter, _) = v.build_miter(&alu_safe_set());
        assert!(inv.verify_monolithic(miter.netlist()));
    }

    #[test]
    fn mul_inclusion_fails_learning_on_rocketlite() {
        let d = rocket_lite(16);
        let v = Veloct::with_config(
            &d,
            VeloctConfig {
                threads: 2,
                pairs_per_instr: 1,
                ..VeloctConfig::default()
            },
        );
        let mut set = alu_safe_set();
        set.push(Mnemonic::Mul);
        let report = v.learn(&set);
        // Either example generation caught it (if a random operand hit the
        // fast path) or learning must fail via backtracking.
        assert!(report.invariant.is_none(), "mul must not be provable");
    }

    #[test]
    fn patterns_include_nop() {
        let p = instruction_patterns(&[Mnemonic::Xor]);
        let nop = Instruction::nop().encode() as u64;
        assert!(p.iter().any(|pat| pat.matches(nop)));
        let xor = hh_isa::asm::exemplar(Mnemonic::Xor, 3, 1, 2).encode() as u64;
        assert!(p.iter().any(|pat| pat.matches(xor)));
        let mul = hh_isa::asm::mul(3, 1, 2).encode() as u64;
        assert!(!p.iter().any(|pat| pat.matches(mul)));
    }

    #[test]
    fn default_candidates_exclude_control() {
        let c = default_candidates();
        assert!(!c.contains(&Mnemonic::Beq));
        assert!(!c.contains(&Mnemonic::Jal));
        assert!(c.contains(&Mnemonic::Add));
        assert!(c.contains(&Mnemonic::Mul));
        assert!(c.contains(&Mnemonic::Lw));
    }
}
