//! Property tests for the netlist IR:
//!
//! * btor2 serialisation round-trips: a random design written to btor2 and
//!   re-parsed is cycle-equivalent to the original;
//! * miter soundness: with equal initial states and shared inputs, the two
//!   copies of a miter never diverge;
//! * COI completeness: every state whose value can influence a target's
//!   next value in one step is in the reported 1-step cone (Contract 1's
//!   `O_slice` requirement), validated by fault injection.

use hh_netlist::btor2::{parse_btor2, to_btor2};
use hh_netlist::coi::Coi;
use hh_netlist::eval::{step, InputValues, StateValues};
use hh_netlist::miter::Miter;
use hh_netlist::{Bv, Netlist};
use proptest::prelude::*;

const W: u32 = 6;
const NREGS: usize = 4;

#[derive(Debug, Clone)]
struct Recipe {
    op: u8,
    a: u8,
    b: u8,
    use_input: bool,
}

fn arb_recipes() -> impl Strategy<Value = Vec<Recipe>> {
    proptest::collection::vec(
        (0u8..9, any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(op, a, b, use_input)| {
            Recipe {
                op,
                a,
                b,
                use_input,
            }
        }),
        NREGS,
    )
}

fn build(recipes: &[Recipe]) -> Netlist {
    let mut n = Netlist::new("prop");
    let regs: Vec<_> = (0..NREGS)
        .map(|i| n.state(format!("r{i}"), W, Bv::new(W, i as u64 + 1)))
        .collect();
    let input = n.input("in", W);
    for (i, rec) in recipes.iter().enumerate() {
        let a = n.state_node(regs[rec.a as usize % NREGS]);
        let b = if rec.use_input {
            input
        } else {
            n.state_node(regs[rec.b as usize % NREGS])
        };
        let next = match rec.op {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.add(a, b),
            4 => n.sub(a, b),
            5 => n.mul(a, b),
            6 => {
                let c = n.ult(a, b);
                let t = n.not(a);
                n.ite(c, t, b)
            }
            7 => {
                let amt = n.c(W, (rec.b % 5) as u64);
                n.shl(a, amt)
            }
            _ => a,
        };
        n.set_next(regs[i], next);
    }
    n.add_output("o", n.state_node(regs[0]));
    n
}

fn drive(n: &Netlist, vals: &[u64]) -> Vec<InputValues> {
    vals.iter()
        .map(|&v| {
            let mut iv = InputValues::zeros(n);
            iv.set_by_name(n, "in", Bv::new(W, v));
            iv
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// btor2 round-trip preserves cycle behaviour.
    #[test]
    fn btor2_roundtrip_is_cycle_equivalent(
        recipes in arb_recipes(),
        inputs in proptest::collection::vec(0u64..64, 1..8),
    ) {
        let a = build(&recipes);
        let text = to_btor2(&a);
        let b = parse_btor2(&text).expect("own output parses");
        prop_assert_eq!(a.num_states(), b.num_states());

        let mut sa = StateValues::initial(&a);
        let mut sb = StateValues::initial(&b);
        let iva = drive(&a, &inputs);
        let ivb = drive(&b, &inputs);
        for (ia, ib) in iva.iter().zip(&ivb) {
            sa = step(&a, &sa, ia);
            sb = step(&b, &sb, ib);
        }
        for sid in a.state_ids() {
            let name = a.state_name(sid).to_string();
            let other = b.find_state(&name).expect("state preserved");
            prop_assert_eq!(sa.get(sid), sb.get(other), "state {} diverged", name);
        }
    }

    /// Miter copies with equal initial state and shared inputs stay equal.
    #[test]
    fn miter_copies_stay_equal_from_equal_states(
        recipes in arb_recipes(),
        inputs in proptest::collection::vec(0u64..64, 1..8),
    ) {
        let base = build(&recipes);
        let m = Miter::build(&base);
        let mut s = StateValues::initial(m.netlist());
        let ivs = drive(m.netlist(), &inputs);
        for iv in &ivs {
            s = step(m.netlist(), &s, iv);
            for b in m.base_state_ids() {
                prop_assert_eq!(s.get(m.left(b)), s.get(m.right(b)));
            }
        }
    }

    /// Fault-injection check of `O_slice` completeness: if flipping a source
    /// state's value changes some target state's next value (under any tried
    /// input), the source must be in the target's reported 1-step COI.
    #[test]
    fn coi_is_complete_under_fault_injection(
        recipes in arb_recipes(),
        base_vals in proptest::collection::vec(0u64..64, NREGS),
        input in 0u64..64,
        flip in 0usize..NREGS,
        flip_bit in 0u32..W,
    ) {
        let n = build(&recipes);
        let coi = Coi::new(&n);
        let mut s = StateValues::initial(&n);
        for (i, &v) in base_vals.iter().enumerate() {
            s.set(n.find_state(&format!("r{i}")).unwrap(), Bv::new(W, v));
        }
        let iv = drive(&n, &[input]).pop().unwrap();
        let next_a = step(&n, &s, &iv);

        // Flip one bit of one source register.
        let src = n.find_state(&format!("r{flip}")).unwrap();
        let mut s2 = s.clone();
        let flipped = Bv::new(W, s.get(src).bits() ^ (1 << flip_bit));
        s2.set(src, flipped);
        let next_b = step(&n, &s2, &iv);

        for t in n.state_ids() {
            if next_a.get(t) != next_b.get(t) {
                prop_assert!(
                    coi.states_of(t).contains(&src),
                    "state {} influenced {} but is not in its COI",
                    n.state_name(src),
                    n.state_name(t)
                );
            }
        }
    }
}
