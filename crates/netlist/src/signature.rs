//! Canonical cone signatures — structural hashing of sliced 1-step cones.
//!
//! Real designs are full of structurally identical cones: replicated
//! pipeline registers, per-entry queue slots, the left/right symmetry of a
//! miter. Each such cone bit-blasts to an *isomorphic* CNF, differing only
//! in variable numbering. A [`SigBuilder`] serialises a cone into a token
//! stream that is invariant under node renaming: it walks the cone exactly
//! the way the bit-blaster does (post-order over [`SimpMap`]
//! representatives), numbering internal nodes in emission order and
//! state/input leaves in first-use order.
//!
//! Two cones with equal token streams ([`ConeSignature::key`]) are
//! structurally isomorphic, and because the blaster's traversal is a pure
//! function of this same structure, they produce **identical** CNF — same
//! variable numbering, same clauses in the same order — when each is encoded
//! into a fresh solver. That is what lets `hh-smt`'s encoding cache replay a
//! cached clause trace for a signature-equal cone instead of re-running
//! Tseitin, and lets learned clauses transfer between the cones' solvers
//! under the *identity* variable renaming.
//!
//! The [`ConeWitness`] is the isomorphism map: position `k` of its vectors
//! records which concrete [`StateId`]/[`InputId`]/[`NodeId`] received
//! canonical index `k`, so corresponding leaves of two signature-equal cones
//! sit at the same canonical index.

use crate::netlist::{InputId, Netlist, NodeId, NodeOp, StateId};
use crate::simp::{Repr, SimpMap};
use std::collections::HashMap;

// Token tags. Every emitted item starts with one of these, followed by a
// fixed number of payload words (per tag), so the token stream is an
// unambiguous serialisation: equal streams ⇔ equal cone structure.
const T_OPER_CONST: u64 = 1;
const T_OPER_NODE: u64 = 2;
const T_GATE: u64 = 3;
const T_STATE_LEAF: u64 = 4;
const T_INPUT_LEAF: u64 = 5;
const T_ROOT: u64 = 6;

/// The isomorphism witness of a [`ConeSignature`]: for each canonical index,
/// the concrete id that received it. Two cones with equal keys correspond
/// leaf-by-leaf and node-by-node through these vectors.
#[derive(Debug, Clone, Default)]
pub struct ConeWitness {
    /// State elements in canonical (first-use) order.
    pub states: Vec<StateId>,
    /// Inputs in canonical (first-use) order.
    pub inputs: Vec<InputId>,
    /// Encoded leader nodes in canonical (emission) order.
    pub nodes: Vec<NodeId>,
}

/// A finished signature: the renaming-invariant key plus the witness map.
#[derive(Debug, Clone)]
pub struct ConeSignature {
    /// The token stream; usable directly as a hash-map key. Equal keys imply
    /// the cones are structurally isomorphic under the witness map.
    pub key: Vec<u64>,
    /// The canonical-index-to-concrete-id map.
    pub witness: ConeWitness,
}

/// Incremental builder of a [`ConeSignature`].
///
/// Callers drive it in the exact order the bit-blaster would encode: state
/// fetches via [`SigBuilder::state`], cone roots via [`SigBuilder::root`],
/// and any caller-level structure (predicate shape, assertion markers) via
/// [`SigBuilder::push`]. Determinism: the traversal below mirrors
/// `TransitionEncoding::node_lits_of` — iterative post-order with operands
/// resolved through the [`SimpMap`] — so the canonical numbering is a pure
/// function of the netlist, the simplification map and the call sequence.
#[derive(Debug)]
pub struct SigBuilder<'a> {
    netlist: &'a Netlist,
    simp: &'a SimpMap,
    tokens: Vec<u64>,
    node_slot: HashMap<NodeId, u64>,
    state_slot: HashMap<StateId, u64>,
    input_slot: HashMap<InputId, u64>,
    witness: ConeWitness,
}

impl<'a> SigBuilder<'a> {
    /// Creates an empty builder over a netlist and its simplification map.
    pub fn new(netlist: &'a Netlist, simp: &'a SimpMap) -> SigBuilder<'a> {
        SigBuilder {
            netlist,
            simp,
            tokens: Vec::new(),
            node_slot: HashMap::new(),
            state_slot: HashMap::new(),
            input_slot: HashMap::new(),
            witness: ConeWitness::default(),
        }
    }

    /// Appends a raw caller token (predicate shape, assertion marker, …).
    pub fn push(&mut self, token: u64) {
        self.tokens.push(token);
    }

    /// Canonical index of a state element, assigned on first use. The
    /// first-use order matches the blaster's `state_lits` variable
    /// allocation order when driven by the same call sequence.
    pub fn state(&mut self, s: StateId) -> u64 {
        if let Some(&k) = self.state_slot.get(&s) {
            return k;
        }
        let k = self.witness.states.len() as u64;
        self.state_slot.insert(s, k);
        self.witness.states.push(s);
        k
    }

    fn input(&mut self, i: InputId) -> u64 {
        if let Some(&k) = self.input_slot.get(&i) {
            return k;
        }
        let k = self.witness.inputs.len() as u64;
        self.input_slot.insert(i, k);
        self.witness.inputs.push(i);
        k
    }

    /// Serialises the cone under `root`, mirroring the blaster's traversal:
    /// resolve through the [`SimpMap`], skip already-emitted leaders,
    /// iterative post-order over representatives, then a root reference.
    pub fn root(&mut self, root: NodeId) {
        let leader = match self.simp.repr(root) {
            Repr::Const(c) => {
                self.tokens.push(T_ROOT);
                self.const_desc(c.width(), c.bits());
                return;
            }
            Repr::Node(r) => r,
        };
        if !self.node_slot.contains_key(&leader) {
            let mut stack: Vec<(NodeId, bool)> = vec![(leader, false)];
            while let Some((id, expanded)) = stack.pop() {
                if self.node_slot.contains_key(&id) {
                    continue;
                }
                if !expanded {
                    stack.push((id, true));
                    for op in self.netlist.operands(id) {
                        if let Repr::Node(r) = self.simp.repr(op) {
                            if !self.node_slot.contains_key(&r) {
                                stack.push((r, false));
                            }
                        }
                    }
                    continue;
                }
                self.emit_node(id);
            }
        }
        self.tokens.push(T_ROOT);
        self.tokens.push(T_OPER_NODE);
        self.tokens.push(self.node_slot[&leader]);
    }

    /// Finishes the signature.
    pub fn finish(self) -> ConeSignature {
        ConeSignature {
            key: self.tokens,
            witness: self.witness,
        }
    }

    fn const_desc(&mut self, width: u32, bits: u64) {
        self.tokens.push(T_OPER_CONST);
        self.tokens.push(u64::from(width));
        self.tokens.push(bits);
    }

    fn operand_desc(&mut self, op: NodeId) {
        match self.simp.repr(op) {
            Repr::Const(c) => self.const_desc(c.width(), c.bits()),
            Repr::Node(r) => {
                self.tokens.push(T_OPER_NODE);
                self.tokens
                    .push(*self.node_slot.get(&r).expect("operand emitted first"));
            }
        }
    }

    /// Emits one leader node (operands already emitted) and assigns its
    /// canonical index.
    fn emit_node(&mut self, id: NodeId) {
        let node = self.netlist.node(id);
        let w = u64::from(node.width);
        match node.op {
            NodeOp::Input(i) => {
                let slot = self.input(i);
                self.tokens.extend([T_INPUT_LEAF, slot, w]);
            }
            NodeOp::State(s) => {
                let slot = self.state(s);
                self.tokens.extend([T_STATE_LEAF, slot, w]);
            }
            // A constant node's repr is always `Repr::Const`, so it can
            // never be a leader; serialise by value anyway for safety.
            NodeOp::Const(c) => {
                self.tokens.push(T_GATE);
                self.tokens.push(0);
                self.const_desc(c.width(), c.bits());
            }
            op => {
                self.tokens.extend([T_GATE, op_tag(op), w]);
                if let NodeOp::Slice(_, hi, lo) = op {
                    self.tokens.push(u64::from(hi));
                    self.tokens.push(u64::from(lo));
                }
                for operand in self.netlist.operands(id) {
                    self.operand_desc(operand);
                }
            }
        }
        let k = self.witness.nodes.len() as u64;
        self.node_slot.insert(id, k);
        self.witness.nodes.push(id);
    }
}

/// Stable per-operator tag for the token stream.
fn op_tag(op: NodeOp) -> u64 {
    match op {
        NodeOp::Input(_) | NodeOp::State(_) | NodeOp::Const(_) => 0,
        NodeOp::Not(_) => 2,
        NodeOp::Neg(_) => 3,
        NodeOp::RedOr(_) => 4,
        NodeOp::RedAnd(_) => 5,
        NodeOp::RedXor(_) => 6,
        NodeOp::And(..) => 7,
        NodeOp::Or(..) => 8,
        NodeOp::Xor(..) => 9,
        NodeOp::Add(..) => 10,
        NodeOp::Sub(..) => 11,
        NodeOp::Mul(..) => 12,
        NodeOp::Eq(..) => 13,
        NodeOp::Ult(..) => 14,
        NodeOp::Slt(..) => 15,
        NodeOp::Shl(..) => 16,
        NodeOp::Lshr(..) => 17,
        NodeOp::Ashr(..) => 18,
        NodeOp::Ite(..) => 19,
        NodeOp::Concat(..) => 20,
        NodeOp::Slice(..) => 21,
        NodeOp::Uext(_) => 22,
        NodeOp::Sext(_) => 23,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;

    /// Two structurally identical register cones (`ri' = (ri + x) & k`) plus
    /// one that differs in a constant.
    fn replicated() -> (Netlist, [StateId; 3]) {
        let mut n = Netlist::new("rep");
        let x = n.input("x", 8);
        let mut regs = Vec::new();
        for (name, k) in [("a", 0x0f), ("b", 0x0f), ("c", 0x3f)] {
            let r = n.state(name, 8, Bv::zero(8));
            let rn = n.state_node(r);
            let sum = n.add(rn, x);
            let mask = n.c(8, k);
            let nxt = n.and(sum, mask);
            n.set_next(r, nxt);
            regs.push(r);
        }
        (n, [regs[0], regs[1], regs[2]])
    }

    fn sig_of(n: &Netlist, simp: &SimpMap, s: StateId) -> ConeSignature {
        let mut b = SigBuilder::new(n, simp);
        b.state(s);
        b.root(n.next_of(s));
        b.finish()
    }

    #[test]
    fn isomorphic_cones_share_a_key() {
        let (n, [a, b, c]) = replicated();
        let simp = SimpMap::build(&n);
        let sa = sig_of(&n, &simp, a);
        let sb = sig_of(&n, &simp, b);
        let sc = sig_of(&n, &simp, c);
        assert_eq!(sa.key, sb.key, "renamed twins must collide");
        assert_ne!(sa.key, sc.key, "different mask constant must split");
        // The witness maps canonical indices onto *different* concrete ids.
        assert_eq!(sa.witness.states, vec![a]);
        assert_eq!(sb.witness.states, vec![b]);
        assert_eq!(sa.witness.nodes.len(), sb.witness.nodes.len());
        assert_ne!(sa.witness.nodes, sb.witness.nodes);
    }

    #[test]
    fn leaf_numbering_is_first_use_order() {
        let mut n = Netlist::new("t");
        let p = n.state("p", 4, Bv::zero(4));
        let q = n.state("q", 4, Bv::zero(4));
        let pn = n.state_node(p);
        let qn = n.state_node(q);
        let sum = n.add(qn, pn);
        n.set_next(p, sum);
        n.keep_state(q);
        let simp = SimpMap::build(&n);
        let mut b = SigBuilder::new(&n, &simp);
        b.state(p); // caller fetches the target's current value first
        b.root(n.next_of(p));
        let sig = b.finish();
        assert_eq!(sig.witness.states[0], p, "explicit fetch numbers first");
        assert!(sig.witness.states.contains(&q));
    }

    #[test]
    fn caller_tokens_split_keys() {
        let (n, [a, b, _]) = replicated();
        let simp = SimpMap::build(&n);
        let mut b1 = SigBuilder::new(&n, &simp);
        b1.root(n.next_of(a));
        b1.push(7);
        let mut b2 = SigBuilder::new(&n, &simp);
        b2.root(n.next_of(b));
        b2.push(8);
        assert_ne!(b1.finish().key, b2.finish().key);
    }

    #[test]
    fn constant_roots_serialise_by_value() {
        let mut n = Netlist::new("t");
        let r = n.state("r", 4, Bv::zero(4));
        let k = n.c(4, 5);
        n.set_next(r, k);
        let s = n.state("s", 4, Bv::zero(4));
        let k2 = n.c(4, 9);
        n.set_next(s, k2);
        let simp = SimpMap::build(&n);
        let sr = sig_of(&n, &simp, r);
        let ss = sig_of(&n, &simp, s);
        assert_ne!(sr.key, ss.key);
        assert!(sr.witness.nodes.is_empty());
    }

    #[test]
    fn shared_subcones_emit_once() {
        // Two roots over the same multiplier: the second root call must not
        // re-emit the shared leader, mirroring the blaster's node cache.
        let mut n = Netlist::new("t");
        let a = n.state("a", 8, Bv::zero(8));
        let b = n.state("b", 8, Bv::zero(8));
        let an = n.state_node(a);
        let bn = n.state_node(b);
        let m = n.mul(an, bn);
        let one = n.c(8, 1);
        let m1 = n.add(m, one);
        n.set_next(a, m);
        n.set_next(b, m1);
        let simp = SimpMap::build(&n);
        let mut bld = SigBuilder::new(&n, &simp);
        bld.root(n.next_of(a));
        let after_first = bld.witness.nodes.len();
        bld.root(n.next_of(b));
        let sig = bld.finish();
        // Only the add gate is new; the multiplier and leaves are shared.
        assert_eq!(sig.witness.nodes.len(), after_first + 1);
    }
}
