//! Concrete evaluation of a netlist: combinational evaluation and the 1-cycle
//! transition function `T`.
//!
//! Nodes are created operands-first, so the node vector is a topological
//! order and a single forward pass evaluates the whole design — no recursion,
//! no allocation beyond the value vectors.

use crate::bv::Bv;
use crate::netlist::{Netlist, NodeId, NodeOp, StateId};

/// A total assignment of values to the state elements of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateValues(Vec<Bv>);

impl StateValues {
    /// The initial state `s0` of the netlist.
    pub fn initial(netlist: &Netlist) -> StateValues {
        StateValues(netlist.state_ids().map(|s| netlist.init_of(s)).collect())
    }

    /// Builds from a raw vector (one value per state, in state order).
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the state count (checked
    /// by the evaluator when used).
    pub fn from_vec(values: Vec<Bv>) -> StateValues {
        StateValues(values)
    }

    /// Value of a state element.
    pub fn get(&self, sid: StateId) -> Bv {
        self.0[sid.index()]
    }

    /// Overwrites the value of a state element.
    ///
    /// # Panics
    ///
    /// Panics if the width of `value` differs from the stored value's width.
    pub fn set(&mut self, sid: StateId, value: Bv) {
        assert_eq!(
            self.0[sid.index()].width(),
            value.width(),
            "state value width mismatch"
        );
        self.0[sid.index()] = value;
    }

    /// Number of state elements covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the assignment covers no states.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(StateId, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, Bv)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &v)| (StateId::from_index(i), v))
    }
}

/// A total assignment of values to the primary inputs for one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputValues(Vec<Bv>);

impl InputValues {
    /// All-zero inputs of the right widths.
    pub fn zeros(netlist: &Netlist) -> InputValues {
        InputValues(
            netlist
                .input_ids()
                .map(|i| Bv::zero(netlist.input_width(i)))
                .collect(),
        )
    }

    /// Sets an input by name.
    ///
    /// # Panics
    ///
    /// Panics if the input does not exist or widths mismatch.
    pub fn set_by_name(&mut self, netlist: &Netlist, name: &str, value: Bv) {
        let idx = netlist
            .input_ids()
            .position(|i| netlist.input_name(i) == name)
            .unwrap_or_else(|| panic!("no input named {name}"));
        assert_eq!(self.0[idx].width(), value.width(), "input width mismatch");
        self.0[idx] = value;
    }

    /// Value of input `i`.
    pub fn get(&self, i: usize) -> Bv {
        self.0[i]
    }
}

/// Evaluates every node of `netlist` under the given state and input values.
///
/// The result is indexed by [`NodeId::index`].
///
/// # Panics
///
/// Panics if the value vectors do not match the netlist's state/input counts.
pub fn eval_all(netlist: &Netlist, states: &StateValues, inputs: &InputValues) -> Vec<Bv> {
    assert_eq!(states.len(), netlist.num_states(), "state count mismatch");
    let mut values: Vec<Bv> = Vec::with_capacity(netlist.num_nodes());
    for idx in 0..netlist.num_nodes() {
        let node = netlist.node(crate::netlist::NodeId(idx as u32));
        let v = |id: NodeId| values[id.index()];
        let result = match node.op {
            NodeOp::Input(i) => inputs.get(i.index()),
            NodeOp::State(s) => states.get(s),
            NodeOp::Const(c) => c,
            NodeOp::Not(a) => v(a).not(),
            NodeOp::Neg(a) => v(a).wrapping_neg(),
            NodeOp::RedOr(a) => v(a).redor(),
            NodeOp::RedAnd(a) => v(a).redand(),
            NodeOp::RedXor(a) => v(a).redxor(),
            NodeOp::And(a, b) => v(a).and(v(b)),
            NodeOp::Or(a, b) => v(a).or(v(b)),
            NodeOp::Xor(a, b) => v(a).xor(v(b)),
            NodeOp::Add(a, b) => v(a).wrapping_add(v(b)),
            NodeOp::Sub(a, b) => v(a).wrapping_sub(v(b)),
            NodeOp::Mul(a, b) => v(a).wrapping_mul(v(b)),
            NodeOp::Eq(a, b) => v(a).eq_bit(v(b)),
            NodeOp::Ult(a, b) => v(a).ult(v(b)),
            NodeOp::Slt(a, b) => v(a).slt(v(b)),
            NodeOp::Shl(a, b) => v(a).shl(v(b)),
            NodeOp::Lshr(a, b) => v(a).lshr(v(b)),
            NodeOp::Ashr(a, b) => v(a).ashr(v(b)),
            NodeOp::Ite(c, t, e) => {
                if v(c).is_true() {
                    v(t)
                } else {
                    v(e)
                }
            }
            NodeOp::Concat(a, b) => v(a).concat(v(b)),
            NodeOp::Slice(a, hi, lo) => v(a).slice(hi, lo),
            NodeOp::Uext(a) => v(a).uext(node.width),
            NodeOp::Sext(a) => v(a).sext(node.width),
        };
        debug_assert_eq!(result.width(), node.width, "evaluator width bug");
        values.push(result);
    }
    values
}

/// Evaluates a single node (by evaluating the full design; use
/// [`eval_all`] when several nodes are needed).
pub fn eval_node(
    netlist: &Netlist,
    node: NodeId,
    states: &StateValues,
    inputs: &InputValues,
) -> Bv {
    eval_all(netlist, states, inputs)[node.index()]
}

/// Applies the transition relation once: computes the successor state of
/// `states` under `inputs`.
///
/// # Panics
///
/// Panics if any state lacks a next function.
pub fn step(netlist: &Netlist, states: &StateValues, inputs: &InputValues) -> StateValues {
    let values = eval_all(netlist, states, inputs);
    StateValues(
        netlist
            .state_ids()
            .map(|s| values[netlist.next_of(s).index()])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;

    fn counter() -> (Netlist, StateId) {
        let mut n = Netlist::new("counter");
        let cnt = n.state("cnt", 4, Bv::zero(4));
        let en = n.input("en", 1);
        let cur = n.state_node(cnt);
        let one = n.c(4, 1);
        let inc = n.add(cur, one);
        let next = n.ite(en, inc, cur);
        n.set_next(cnt, next);
        (n, cnt)
    }

    #[test]
    fn counter_steps() {
        let (n, cnt) = counter();
        let mut s = StateValues::initial(&n);
        let mut inputs = InputValues::zeros(&n);
        inputs.set_by_name(&n, "en", Bv::bit(true));
        for i in 1..=20u64 {
            s = step(&n, &s, &inputs);
            assert_eq!(s.get(cnt).bits(), i % 16);
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let (n, cnt) = counter();
        let mut s = StateValues::initial(&n);
        let inputs = InputValues::zeros(&n);
        s = step(&n, &s, &inputs);
        assert_eq!(s.get(cnt).bits(), 0);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let sum = n.add(a, b);
        let prod = n.mul(a, b);
        let lt = n.ult(a, b);
        let sel = n.ite(lt, sum, prod);
        let mut inputs = InputValues::zeros(&n);
        inputs.set_by_name(&n, "a", Bv::new(8, 3));
        inputs.set_by_name(&n, "b", Bv::new(8, 5));
        let s = StateValues::initial(&n);
        let vals = eval_all(&n, &s, &inputs);
        assert_eq!(vals[sum.index()], Bv::new(8, 8));
        assert_eq!(vals[prod.index()], Bv::new(8, 15));
        assert!(vals[lt.index()].is_true());
        assert_eq!(vals[sel.index()], Bv::new(8, 8));
    }

    #[test]
    fn state_values_set_get() {
        let (n, cnt) = counter();
        let mut s = StateValues::initial(&n);
        s.set(cnt, Bv::new(4, 9));
        assert_eq!(s.get(cnt), Bv::new(4, 9));
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    #[should_panic(expected = "no input named")]
    fn unknown_input_panics() {
        let (n, _) = counter();
        let mut inputs = InputValues::zeros(&n);
        inputs.set_by_name(&n, "nonexistent", Bv::bit(true));
    }
}
