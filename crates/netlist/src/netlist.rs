//! The word-level netlist IR and its builder API.
//!
//! A [`Netlist`] is a transition system in the sense of the paper (§2.1): a
//! set of state elements with initial values and next-state functions, a set
//! of free inputs, and a DAG of combinational operators connecting them. It
//! deliberately mirrors the btor2 format that the paper's tool consumes.
//!
//! Nodes are hash-consed: building the same expression twice yields the same
//! [`NodeId`], which keeps miter construction and big generated cores (the
//! `hh-uarch` processors) compact.

use crate::bv::Bv;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a combinational node in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a state element (register) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Dense index of the state element.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs from a dense index (for tables computed externally).
    pub fn from_index(i: usize) -> StateId {
        StateId(i as u32)
    }
}

/// Identifier of a primary input in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputId(pub(crate) u32);

impl InputId {
    /// Dense index of the input.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A combinational operator. Operand order is semantically significant
/// (`Sub(a, b)` = `a - b`, `Concat(hi, lo)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeOp {
    /// Primary input (free every cycle).
    Input(InputId),
    /// Current value of a state element.
    State(StateId),
    /// Constant.
    Const(Bv),
    /// Bitwise NOT.
    Not(NodeId),
    /// Two's-complement negation.
    Neg(NodeId),
    /// OR-reduce to 1 bit.
    RedOr(NodeId),
    /// AND-reduce to 1 bit.
    RedAnd(NodeId),
    /// XOR-reduce to 1 bit.
    RedXor(NodeId),
    /// Bitwise AND.
    And(NodeId, NodeId),
    /// Bitwise OR.
    Or(NodeId, NodeId),
    /// Bitwise XOR.
    Xor(NodeId, NodeId),
    /// Addition modulo 2^w.
    Add(NodeId, NodeId),
    /// Subtraction modulo 2^w.
    Sub(NodeId, NodeId),
    /// Multiplication modulo 2^w.
    Mul(NodeId, NodeId),
    /// Equality (1-bit result).
    Eq(NodeId, NodeId),
    /// Unsigned less-than (1-bit result).
    Ult(NodeId, NodeId),
    /// Signed less-than (1-bit result).
    Slt(NodeId, NodeId),
    /// Logical shift left (amount is second operand).
    Shl(NodeId, NodeId),
    /// Logical shift right.
    Lshr(NodeId, NodeId),
    /// Arithmetic shift right.
    Ashr(NodeId, NodeId),
    /// If-then-else; condition is 1 bit wide.
    Ite(NodeId, NodeId, NodeId),
    /// Concatenation, first operand high.
    Concat(NodeId, NodeId),
    /// Bit slice `[hi:lo]` inclusive.
    Slice(NodeId, u32, u32),
    /// Zero extension to the node's width.
    Uext(NodeId),
    /// Sign extension to the node's width.
    Sext(NodeId),
}

/// A node: operator plus result width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// The operator.
    pub op: NodeOp,
    /// Result width in bits.
    pub width: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct StateInfo {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) init: Bv,
    pub(crate) next: Option<NodeId>,
    pub(crate) node: NodeId,
}

#[derive(Debug, Clone)]
pub(crate) struct InputInfo {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) node: NodeId,
}

/// A word-level sequential circuit (transition system).
///
/// # Examples
///
/// Building the AND-gate example from the paper's introduction — output `A`
/// is the registered AND of registered inputs `B` and `C`:
///
/// ```
/// use hh_netlist::{Netlist, Bv};
///
/// let mut n = Netlist::new("and_gate");
/// let b = n.state("B", 1, Bv::bit(true));
/// let c = n.state("C", 1, Bv::bit(true));
/// let a = n.state("A", 1, Bv::bit(true));
/// let band = n.and(n.state_node(b), n.state_node(c));
/// n.set_next(a, band);
/// n.keep_state(b); // B and C hold their values
/// n.keep_state(c);
/// n.add_output("A", n.state_node(a));
/// assert_eq!(n.num_states(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    states: Vec<StateInfo>,
    inputs: Vec<InputInfo>,
    outputs: Vec<(String, NodeId)>,
    constraints: Vec<NodeId>,
    dedup: HashMap<Node, NodeId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            states: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            constraints: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of combinational nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of state elements.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Total state size in bits — the "design size" metric of the paper's
    /// Table 1.
    pub fn state_bits(&self) -> u64 {
        self.states.iter().map(|s| s.width as u64).sum()
    }

    /// The node for a [`NodeId`].
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// Result width of a node.
    pub fn width(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].width
    }

    // ------------------------------------------------------------------
    // State / input management
    // ------------------------------------------------------------------

    /// Declares a state element (register) with an initial value.
    ///
    /// # Panics
    ///
    /// Panics if `init.width() != width` or a state with the same name
    /// exists.
    pub fn state(&mut self, name: impl Into<String>, width: u32, init: Bv) -> StateId {
        let name = name.into();
        assert_eq!(init.width(), width, "init width mismatch for state {name}");
        assert!(
            self.find_state(&name).is_none(),
            "duplicate state name {name}"
        );
        let sid = StateId(self.states.len() as u32);
        let node = self.push_raw(Node {
            op: NodeOp::State(sid),
            width,
        });
        self.states.push(StateInfo {
            name,
            width,
            init,
            next: None,
            node,
        });
        sid
    }

    /// Declares a primary input.
    ///
    /// # Panics
    ///
    /// Panics if an input with the same name exists.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> NodeId {
        let name = name.into();
        assert!(
            self.find_input(&name).is_none(),
            "duplicate input name {name}"
        );
        let iid = InputId(self.inputs.len() as u32);
        let node = self.push_raw(Node {
            op: NodeOp::Input(iid),
            width,
        });
        self.inputs.push(InputInfo { name, width, node });
        node
    }

    /// The node reading the current value of a state element.
    pub fn state_node(&self, sid: StateId) -> NodeId {
        self.states[sid.index()].node
    }

    /// Sets the next-state function of a state element.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or if `next` was already set.
    pub fn set_next(&mut self, sid: StateId, next: NodeId) {
        let w = self.width(next);
        let info = &mut self.states[sid.index()];
        assert_eq!(info.width, w, "next width mismatch for state {}", info.name);
        assert!(
            info.next.is_none(),
            "next already set for state {}",
            info.name
        );
        info.next = Some(next);
    }

    /// Overrides the initial value of a state element (used by the btor2
    /// reader, where `init` lines arrive after state declarations).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_init(&mut self, sid: StateId, init: Bv) {
        let info = &mut self.states[sid.index()];
        assert_eq!(
            info.width,
            init.width(),
            "init width mismatch for {}",
            info.name
        );
        info.init = init;
    }

    /// Convenience: state holds its value forever (`next = current`).
    pub fn keep_state(&mut self, sid: StateId) {
        let node = self.state_node(sid);
        self.set_next(sid, node);
    }

    /// The next-state node of a state element.
    ///
    /// # Panics
    ///
    /// Panics if the next function has not been set.
    pub fn next_of(&self, sid: StateId) -> NodeId {
        self.states[sid.index()]
            .next
            .unwrap_or_else(|| panic!("state {} has no next", self.states[sid.index()].name))
    }

    /// Initial value of a state element.
    pub fn init_of(&self, sid: StateId) -> Bv {
        self.states[sid.index()].init
    }

    /// Name of a state element.
    pub fn state_name(&self, sid: StateId) -> &str {
        &self.states[sid.index()].name
    }

    /// Width of a state element.
    pub fn state_width(&self, sid: StateId) -> u32 {
        self.states[sid.index()].width
    }

    /// Looks up a state element by name.
    pub fn find_state(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId(i as u32))
    }

    /// Looks up an input by name, returning its node.
    pub fn find_input(&self, name: &str) -> Option<NodeId> {
        self.inputs.iter().find(|i| i.name == name).map(|i| i.node)
    }

    /// Name of an input.
    pub fn input_name(&self, iid: InputId) -> &str {
        &self.inputs[iid.index()].name
    }

    /// Width of an input.
    pub fn input_width(&self, iid: InputId) -> u32 {
        self.inputs[iid.index()].width
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Iterates over all input ids.
    pub fn input_ids(&self) -> impl Iterator<Item = InputId> {
        (0..self.inputs.len() as u32).map(InputId)
    }

    /// Registers a named output signal (observable).
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Named output signals.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Registers an environment assumption: a 1-bit node that verification
    /// queries may take as given every cycle. VeloCT uses this to restrict
    /// the instruction-input alphabet to the proposed safe set plus the null
    /// instruction (the paper's Σ of §4).
    ///
    /// # Panics
    ///
    /// Panics if the node is not 1 bit wide.
    pub fn add_constraint(&mut self, node: NodeId) {
        assert_eq!(self.width(node), 1, "constraints must be 1-bit");
        self.constraints.push(node);
    }

    /// The registered environment assumptions.
    pub fn constraints(&self) -> &[NodeId] {
        &self.constraints
    }

    /// Looks up an output by name.
    pub fn find_output(&self, name: &str) -> Option<NodeId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    // ------------------------------------------------------------------
    // Expression builders (hash-consed)
    // ------------------------------------------------------------------

    fn push_raw(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn intern(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = self.push_raw(node);
        self.dedup.insert(node, id);
        id
    }

    /// A constant node.
    pub fn constant(&mut self, value: Bv) -> NodeId {
        self.intern(Node {
            op: NodeOp::Const(value),
            width: value.width(),
        })
    }

    /// Shorthand for [`Netlist::constant`] from raw bits.
    pub fn c(&mut self, width: u32, bits: u64) -> NodeId {
        self.constant(Bv::new(width, bits))
    }

    /// 1-bit constant true.
    pub fn ctrue(&mut self) -> NodeId {
        self.c(1, 1)
    }

    /// 1-bit constant false.
    pub fn cfalse(&mut self) -> NodeId {
        self.c(1, 0)
    }

    fn unary(&mut self, op: fn(NodeId) -> NodeOp, a: NodeId, width: u32) -> NodeId {
        self.intern(Node { op: op(a), width })
    }

    fn same_width(&self, a: NodeId, b: NodeId) -> u32 {
        let (wa, wb) = (self.width(a), self.width(b));
        assert_eq!(wa, wb, "operand width mismatch {wa} vs {wb}");
        wa
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        let w = self.width(a);
        self.unary(NodeOp::Not, a, w)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let w = self.width(a);
        self.unary(NodeOp::Neg, a, w)
    }

    /// OR-reduction.
    pub fn redor(&mut self, a: NodeId) -> NodeId {
        self.unary(NodeOp::RedOr, a, 1)
    }

    /// AND-reduction.
    pub fn redand(&mut self, a: NodeId) -> NodeId {
        self.unary(NodeOp::RedAnd, a, 1)
    }

    /// XOR-reduction (parity).
    pub fn redxor(&mut self, a: NodeId) -> NodeId {
        self.unary(NodeOp::RedXor, a, 1)
    }

    fn binary(
        &mut self,
        op: fn(NodeId, NodeId) -> NodeOp,
        a: NodeId,
        b: NodeId,
        width: u32,
    ) -> NodeId {
        self.intern(Node {
            op: op(a, b),
            width,
        })
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let w = self.same_width(a, b);
        self.binary(NodeOp::And, a, b, w)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let w = self.same_width(a, b);
        self.binary(NodeOp::Or, a, b, w)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let w = self.same_width(a, b);
        self.binary(NodeOp::Xor, a, b, w)
    }

    /// Addition. Panics on width mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let w = self.same_width(a, b);
        self.binary(NodeOp::Add, a, b, w)
    }

    /// Subtraction. Panics on width mismatch.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let w = self.same_width(a, b);
        self.binary(NodeOp::Sub, a, b, w)
    }

    /// Multiplication. Panics on width mismatch.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let w = self.same_width(a, b);
        self.binary(NodeOp::Mul, a, b, w)
    }

    /// Equality comparison (1-bit). Panics on width mismatch.
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.same_width(a, b);
        self.binary(NodeOp::Eq, a, b, 1)
    }

    /// Inequality (1-bit). Panics on width mismatch.
    pub fn ne(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (1-bit). Panics on width mismatch.
    pub fn ult(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.same_width(a, b);
        self.binary(NodeOp::Ult, a, b, 1)
    }

    /// Signed less-than (1-bit). Panics on width mismatch.
    pub fn slt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.same_width(a, b);
        self.binary(NodeOp::Slt, a, b, 1)
    }

    /// Logical shift left; the shift amount operand may have any width.
    pub fn shl(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        let w = self.width(a);
        self.binary(NodeOp::Shl, a, amount, w)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        let w = self.width(a);
        self.binary(NodeOp::Lshr, a, amount, w)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        let w = self.width(a);
        self.binary(NodeOp::Ashr, a, amount, w)
    }

    /// If-then-else. `cond` must be 1 bit; branches must have equal width.
    ///
    /// # Panics
    ///
    /// Panics on width violations.
    pub fn ite(&mut self, cond: NodeId, then_v: NodeId, else_v: NodeId) -> NodeId {
        assert_eq!(self.width(cond), 1, "ite condition must be 1 bit");
        let w = self.same_width(then_v, else_v);
        self.intern(Node {
            op: NodeOp::Ite(cond, then_v, else_v),
            width: w,
        })
    }

    /// Concatenation (first operand high).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64.
    pub fn concat(&mut self, hi: NodeId, lo: NodeId) -> NodeId {
        let w = self.width(hi) + self.width(lo);
        assert!(w <= crate::bv::MAX_WIDTH, "concat width {w} > 64");
        self.intern(Node {
            op: NodeOp::Concat(hi, lo),
            width: w,
        })
    }

    /// Bit slice `[hi:lo]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid for the operand width.
    pub fn slice(&mut self, a: NodeId, hi: u32, lo: u32) -> NodeId {
        let w = self.width(a);
        assert!(hi >= lo && hi < w, "bad slice [{hi}:{lo}] of width {w}");
        self.intern(Node {
            op: NodeOp::Slice(a, hi, lo),
            width: hi - lo + 1,
        })
    }

    /// Extracts a single bit.
    pub fn bit(&mut self, a: NodeId, i: u32) -> NodeId {
        self.slice(a, i, i)
    }

    /// Zero-extends to `to` bits (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `to` is smaller than the operand width.
    pub fn uext(&mut self, a: NodeId, to: u32) -> NodeId {
        let w = self.width(a);
        assert!(to >= w, "uext shrinks width");
        if to == w {
            return a;
        }
        self.intern(Node {
            op: NodeOp::Uext(a),
            width: to,
        })
    }

    /// Sign-extends to `to` bits (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `to` is smaller than the operand width.
    pub fn sext(&mut self, a: NodeId, to: u32) -> NodeId {
        let w = self.width(a);
        assert!(to >= w, "sext shrinks width");
        if to == w {
            return a;
        }
        self.intern(Node {
            op: NodeOp::Sext(a),
            width: to,
        })
    }

    /// `a == constant` as a 1-bit node.
    pub fn eq_const(&mut self, a: NodeId, bits: u64) -> NodeId {
        let w = self.width(a);
        let c = self.c(w, bits);
        self.eq(a, c)
    }

    /// Boolean AND over a list of 1-bit nodes (true for the empty list).
    pub fn and_all(&mut self, nodes: &[NodeId]) -> NodeId {
        let mut acc = self.ctrue();
        for &n in nodes {
            acc = self.and(acc, n);
        }
        acc
    }

    /// Boolean OR over a list of 1-bit nodes (false for the empty list).
    pub fn or_all(&mut self, nodes: &[NodeId]) -> NodeId {
        let mut acc = self.cfalse();
        for &n in nodes {
            acc = self.or(acc, n);
        }
        acc
    }

    /// Multiplexer over a list of `(selector_matches, value)` pairs with a
    /// default value: a chain of [`Netlist::ite`]s, first match wins.
    pub fn select(&mut self, cases: &[(NodeId, NodeId)], default: NodeId) -> NodeId {
        let mut acc = default;
        for &(cond, val) in cases.iter().rev() {
            acc = self.ite(cond, val, acc);
        }
        acc
    }

    /// Checks structural sanity: every state has a next function.
    ///
    /// # Panics
    ///
    /// Panics with the offending state name if a next function is missing.
    pub fn assert_complete(&self) {
        for s in &self.states {
            assert!(s.next.is_some(), "state {} has no next function", s.name);
        }
    }

    /// The direct operands of a node.
    pub fn operands(&self, id: NodeId) -> Vec<NodeId> {
        match self.nodes[id.index()].op {
            NodeOp::Input(_) | NodeOp::State(_) | NodeOp::Const(_) => vec![],
            NodeOp::Not(a)
            | NodeOp::Neg(a)
            | NodeOp::RedOr(a)
            | NodeOp::RedAnd(a)
            | NodeOp::RedXor(a)
            | NodeOp::Slice(a, _, _)
            | NodeOp::Uext(a)
            | NodeOp::Sext(a) => vec![a],
            NodeOp::And(a, b)
            | NodeOp::Or(a, b)
            | NodeOp::Xor(a, b)
            | NodeOp::Add(a, b)
            | NodeOp::Sub(a, b)
            | NodeOp::Mul(a, b)
            | NodeOp::Eq(a, b)
            | NodeOp::Ult(a, b)
            | NodeOp::Slt(a, b)
            | NodeOp::Shl(a, b)
            | NodeOp::Lshr(a, b)
            | NodeOp::Ashr(a, b)
            | NodeOp::Concat(a, b) => vec![a, b],
            NodeOp::Ite(c, t, e) => vec![c, t, e],
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist {} ({} states / {} bits, {} inputs, {} nodes)",
            self.name,
            self.num_states(),
            self.state_bits(),
            self.num_inputs(),
            self.num_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counter() {
        let mut n = Netlist::new("counter");
        let cnt = n.state("cnt", 4, Bv::zero(4));
        let one = n.c(4, 1);
        let cur = n.state_node(cnt);
        let next = n.add(cur, one);
        n.set_next(cnt, next);
        n.assert_complete();
        assert_eq!(n.state_bits(), 4);
        assert_eq!(n.next_of(cnt), next);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let x = n.add(a, b);
        let y = n.add(a, b);
        assert_eq!(x, y);
        let z = n.add(b, a); // order matters: distinct node
        assert_ne!(x, z);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 8);
        let b = n.input("b", 4);
        n.add(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate state name")]
    fn duplicate_state_panics() {
        let mut n = Netlist::new("t");
        n.state("r", 1, Bv::bit(false));
        n.state("r", 2, Bv::zero(2));
    }

    #[test]
    #[should_panic(expected = "next already set")]
    fn double_next_panics() {
        let mut n = Netlist::new("t");
        let r = n.state("r", 1, Bv::bit(false));
        let node = n.state_node(r);
        n.set_next(r, node);
        n.set_next(r, node);
    }

    #[test]
    #[should_panic(expected = "has no next function")]
    fn incomplete_netlist_detected() {
        let mut n = Netlist::new("t");
        n.state("r", 1, Bv::bit(false));
        n.assert_complete();
    }

    #[test]
    fn lookups() {
        let mut n = Netlist::new("t");
        let r = n.state("reg", 8, Bv::zero(8));
        let i = n.input("in", 8);
        n.set_next(r, i);
        n.add_output("o", n.state_node(r));
        assert_eq!(n.find_state("reg"), Some(r));
        assert_eq!(n.find_state("nope"), None);
        assert_eq!(n.find_input("in"), Some(i));
        assert_eq!(n.find_output("o"), Some(n.state_node(r)));
        assert_eq!(n.state_name(r), "reg");
        assert_eq!(n.state_width(r), 8);
    }

    #[test]
    fn select_builds_priority_mux() {
        let mut n = Netlist::new("t");
        let s = n.input("s", 2);
        let c0 = n.eq_const(s, 0);
        let c1 = n.eq_const(s, 1);
        let v0 = n.c(8, 10);
        let v1 = n.c(8, 20);
        let dflt = n.c(8, 30);
        let out = n.select(&[(c0, v0), (c1, v1)], dflt);
        // Structure: ite(c0, v0, ite(c1, v1, dflt)).
        match n.node(out).op {
            NodeOp::Ite(c, t, e) => {
                assert_eq!(c, c0);
                assert_eq!(t, v0);
                match n.node(e).op {
                    NodeOp::Ite(c2, t2, e2) => {
                        assert_eq!(c2, c1);
                        assert_eq!(t2, v1);
                        assert_eq!(e2, dflt);
                    }
                    _ => panic!("expected nested ite"),
                }
            }
            _ => panic!("expected ite"),
        }
    }

    #[test]
    fn ext_same_width_is_identity() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 8);
        assert_eq!(n.uext(a, 8), a);
        assert_eq!(n.sext(a, 8), a);
        let widened = n.uext(a, 12);
        assert_eq!(n.width(widened), 12);
    }
}
