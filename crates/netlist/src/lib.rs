//! # hh-netlist — word-level sequential-circuit IR
//!
//! The transition-system substrate of the H-Houdini reproduction. A
//! [`Netlist`] is a btor2-like word-level circuit: registers ([`StateId`])
//! with initial values and next-state functions, free inputs, and a
//! hash-consed DAG of combinational operators.
//!
//! The crate provides everything the invariant learner needs from "the RTL":
//!
//! * a builder API used by `hh-uarch` to construct processor models,
//! * a concrete evaluator ([`eval`]) used for positive-example generation,
//! * cone-of-influence slicing ([`coi::Coi`]) — the paper's `O_slice` oracle,
//! * miter (product-circuit) construction ([`miter::Miter`]) for relational
//!   2-safety properties,
//! * a btor2 subset reader/writer ([`btor2`]) matching the paper's input
//!   format.
//!
//! ## Example
//!
//! ```
//! use hh_netlist::{Netlist, Bv, eval};
//!
//! // A 4-bit accumulator.
//! let mut n = Netlist::new("acc");
//! let acc = n.state("acc", 4, Bv::zero(4));
//! let inp = n.input("in", 4);
//! let cur = n.state_node(acc);
//! let sum = n.add(cur, inp);
//! n.set_next(acc, sum);
//!
//! let mut state = eval::StateValues::initial(&n);
//! let mut inputs = eval::InputValues::zeros(&n);
//! inputs.set_by_name(&n, "in", Bv::new(4, 3));
//! state = eval::step(&n, &state, &inputs);
//! assert_eq!(state.get(acc), Bv::new(4, 3));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bv;
mod netlist;

pub mod btor2;
pub mod coi;
pub mod eval;
pub mod miter;
pub mod signature;
pub mod simp;

pub use bv::{Bv, MAX_WIDTH};
pub use netlist::{InputId, Netlist, Node, NodeId, NodeOp, StateId};
