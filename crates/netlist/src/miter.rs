//! Miter (product-circuit) construction.
//!
//! VeloCT proves *relational* (2-safety) properties: two copies of the same
//! design run side by side on the same instruction stream, differing only in
//! secret data. Following the paper (§4 and §6.1, where yosys builds the
//! miter), [`Miter::build`] produces a single netlist containing a left and a
//! right copy of every state element and of all combinational logic, with
//! primary inputs *shared* between the copies — the attacker-controlled
//! instruction stream is identical on both sides.

use crate::bv::Bv;
use crate::netlist::{Netlist, NodeId, NodeOp, StateId};

/// Which copy of the design a product-state element belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left execution.
    Left,
    /// The right execution.
    Right,
}

impl Side {
    /// Name prefix used for states and outputs of this side.
    pub fn prefix(self) -> &'static str {
        match self {
            Side::Left => "l$",
            Side::Right => "r$",
        }
    }
}

/// A product circuit over a base design, with the bookkeeping needed to move
/// between base-design state ids and product state ids.
#[derive(Debug, Clone)]
pub struct Miter {
    netlist: Netlist,
    left: Vec<StateId>,
    right: Vec<StateId>,
    /// Inverse map: product state -> (base state index, side).
    origin: Vec<(StateId, Side)>,
}

impl Miter {
    /// Builds the product circuit of `base`.
    ///
    /// Each base state `x` yields product states `l$x` and `r$x` (same
    /// initial value); each base output `o` yields `l$o` and `r$o`. Inputs
    /// are shared verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `base` is incomplete (a state without a next function).
    pub fn build(base: &Netlist) -> Miter {
        base.assert_complete();
        let mut product = Netlist::new(format!("{}_miter", base.name()));

        // Shared inputs, in base order so indices line up.
        let input_map: Vec<NodeId> = base
            .input_ids()
            .map(|i| product.input(base.input_name(i).to_string(), base.input_width(i)))
            .collect();

        // Product states for both sides.
        let mut sides: [Vec<StateId>; 2] = [Vec::new(), Vec::new()];
        let mut origin = Vec::new();
        for (k, side) in [Side::Left, Side::Right].into_iter().enumerate() {
            for s in base.state_ids() {
                let name = format!("{}{}", side.prefix(), base.state_name(s));
                let sid = product.state(name, base.state_width(s), base.init_of(s));
                sides[k].push(sid);
            }
        }
        for side in [Side::Left, Side::Right] {
            for s in base.state_ids() {
                origin.push((s, side));
            }
        }
        // `origin` must be indexed by product StateId: left states were
        // created first, then right — the loop above matches that order.

        // Copy the combinational DAG once per side.
        for (k, side) in [Side::Left, Side::Right].into_iter().enumerate() {
            let node_map = copy_nodes(base, &mut product, &input_map, &sides[k]);
            for s in base.state_ids() {
                let next = node_map[base.next_of(s).index()];
                product.set_next(sides[k][s.index()], next);
            }
            for (name, node) in base.outputs() {
                product.add_output(format!("{}{}", side.prefix(), name), node_map[node.index()]);
            }
            // Constraints over shared inputs hash-cons to the same node on
            // both sides; duplicates are harmless either way.
            for &c in base.constraints() {
                product.add_constraint(node_map[c.index()]);
            }
        }

        Miter {
            netlist: product,
            left: sides[0].clone(),
            right: sides[1].clone(),
            origin,
        }
    }

    /// The product netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access to the product netlist, e.g. to add environment
    /// constraints (VeloCT restricts the instruction input to the proposed
    /// safe set before learning).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Product state id of the left copy of a base state.
    pub fn left(&self, base: StateId) -> StateId {
        self.left[base.index()]
    }

    /// Product state id of the right copy of a base state.
    pub fn right(&self, base: StateId) -> StateId {
        self.right[base.index()]
    }

    /// Both copies of a base state.
    pub fn pair(&self, base: StateId) -> (StateId, StateId) {
        (self.left(base), self.right(base))
    }

    /// Base state and side of a product state.
    pub fn origin(&self, product: StateId) -> (StateId, Side) {
        self.origin[product.index()]
    }

    /// Number of base states.
    pub fn num_base_states(&self) -> usize {
        self.left.len()
    }

    /// Iterates over base state ids.
    pub fn base_state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.left.len()).map(StateId::from_index)
    }
}

/// Copies every node of `base` into `product`, reading states from
/// `state_map` (product states of one side) and inputs from `input_map`
/// (shared). Returns the base-indexed node map.
fn copy_nodes(
    base: &Netlist,
    product: &mut Netlist,
    input_map: &[NodeId],
    state_map: &[StateId],
) -> Vec<NodeId> {
    let mut map: Vec<NodeId> = Vec::with_capacity(base.num_nodes());
    for idx in 0..base.num_nodes() {
        let id = NodeId(idx as u32);
        let node = base.node(id);
        let m = |x: NodeId| map[x.index()];
        let new_id = match node.op {
            NodeOp::Input(i) => input_map[i.index()],
            NodeOp::State(s) => product.state_node(state_map[s.index()]),
            NodeOp::Const(c) => product.constant(c),
            NodeOp::Not(a) => product.not(m(a)),
            NodeOp::Neg(a) => product.neg(m(a)),
            NodeOp::RedOr(a) => product.redor(m(a)),
            NodeOp::RedAnd(a) => product.redand(m(a)),
            NodeOp::RedXor(a) => product.redxor(m(a)),
            NodeOp::And(a, b) => product.and(m(a), m(b)),
            NodeOp::Or(a, b) => product.or(m(a), m(b)),
            NodeOp::Xor(a, b) => product.xor(m(a), m(b)),
            NodeOp::Add(a, b) => product.add(m(a), m(b)),
            NodeOp::Sub(a, b) => product.sub(m(a), m(b)),
            NodeOp::Mul(a, b) => product.mul(m(a), m(b)),
            NodeOp::Eq(a, b) => product.eq(m(a), m(b)),
            NodeOp::Ult(a, b) => product.ult(m(a), m(b)),
            NodeOp::Slt(a, b) => product.slt(m(a), m(b)),
            NodeOp::Shl(a, b) => product.shl(m(a), m(b)),
            NodeOp::Lshr(a, b) => product.lshr(m(a), m(b)),
            NodeOp::Ashr(a, b) => product.ashr(m(a), m(b)),
            NodeOp::Ite(c, t, e) => product.ite(m(c), m(t), m(e)),
            NodeOp::Concat(a, b) => product.concat(m(a), m(b)),
            NodeOp::Slice(a, hi, lo) => product.slice(m(a), hi, lo),
            NodeOp::Uext(a) => product.uext(m(a), node.width),
            NodeOp::Sext(a) => product.sext(m(a), node.width),
        };
        map.push(new_id);
    }
    map
}

/// Builds the product of two *different* initial states: a clone of the miter
/// whose left/right initial values are overridden. Used by tests that run the
/// product circuit concretely from equal-modulo-secret states.
pub fn with_initial_values(
    miter: &Miter,
    left_init: impl Fn(StateId) -> Option<Bv>,
    right_init: impl Fn(StateId) -> Option<Bv>,
) -> crate::eval::StateValues {
    let mut values = crate::eval::StateValues::initial(miter.netlist());
    for base in miter.base_state_ids() {
        if let Some(v) = left_init(base) {
            values.set(miter.left(base), v);
        }
        if let Some(v) = right_init(base) {
            values.set(miter.right(base), v);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{step, InputValues, StateValues};

    fn accumulator() -> Netlist {
        let mut n = Netlist::new("acc");
        let acc = n.state("acc", 8, Bv::zero(8));
        let i = n.input("i", 8);
        let cur = n.state_node(acc);
        let next = n.add(cur, i);
        n.set_next(acc, next);
        n.add_output("acc_out", cur);
        n
    }

    #[test]
    fn miter_duplicates_states_shares_inputs() {
        let base = accumulator();
        let m = Miter::build(&base);
        assert_eq!(m.netlist().num_states(), 2);
        assert_eq!(m.netlist().num_inputs(), 1);
        assert_eq!(m.netlist().state_bits(), 16);
        assert!(m.netlist().find_state("l$acc").is_some());
        assert!(m.netlist().find_state("r$acc").is_some());
        assert!(m.netlist().find_output("l$acc_out").is_some());
        assert!(m.netlist().find_output("r$acc_out").is_some());
    }

    #[test]
    fn origin_roundtrip() {
        let base = accumulator();
        let m = Miter::build(&base);
        let acc = base.find_state("acc").unwrap();
        let (l, r) = m.pair(acc);
        assert_eq!(m.origin(l), (acc, Side::Left));
        assert_eq!(m.origin(r), (acc, Side::Right));
    }

    #[test]
    fn equal_states_stay_equal_under_shared_inputs() {
        let base = accumulator();
        let m = Miter::build(&base);
        let acc = base.find_state("acc").unwrap();
        let mut s = StateValues::initial(m.netlist());
        let mut inputs = InputValues::zeros(m.netlist());
        inputs.set_by_name(m.netlist(), "i", Bv::new(8, 7));
        for _ in 0..5 {
            s = step(m.netlist(), &s, &inputs);
            assert_eq!(s.get(m.left(acc)), s.get(m.right(acc)));
        }
        assert_eq!(s.get(m.left(acc)), Bv::new(8, 35));
    }

    #[test]
    fn differing_secrets_evolve_independently() {
        let base = accumulator();
        let m = Miter::build(&base);
        let acc = base.find_state("acc").unwrap();
        let mut s = with_initial_values(&m, |_| Some(Bv::new(8, 1)), |_| Some(Bv::new(8, 2)));
        let inputs = InputValues::zeros(m.netlist());
        s = step(m.netlist(), &s, &inputs);
        assert_eq!(s.get(m.left(acc)), Bv::new(8, 1));
        assert_eq!(s.get(m.right(acc)), Bv::new(8, 2));
    }

    #[test]
    fn init_values_copied_to_both_sides() {
        let mut base = Netlist::new("t");
        let r = base.state("r", 4, Bv::new(4, 9));
        base.keep_state(r);
        let m = Miter::build(&base);
        let s = StateValues::initial(m.netlist());
        assert_eq!(s.get(m.left(r)), Bv::new(4, 9));
        assert_eq!(s.get(m.right(r)), Bv::new(4, 9));
    }
}
