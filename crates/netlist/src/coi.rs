//! Cone-of-influence analysis — the slicing oracle `O_slice` of the paper.
//!
//! For a target predicate over state variables `V_p`, the H-Houdini recursion
//! needs the set of state elements that can influence the *next* value of
//! `V_p` in one step of the transition system (§3.2, line 9 of Algorithm 1):
//! the state support of the next-state functions of `V_p`. [`Coi`]
//! precomputes the per-state support once so that each of the thousands of
//! per-task queries is a cheap set union.

use crate::netlist::{InputId, Netlist, NodeId, NodeOp, StateId};
use std::collections::BTreeSet;

/// Computes the state and input support of a combinational node by walking
/// its fanin cone.
///
/// Returns vectors sorted ascending by id and deduplicated. The order is
/// **guaranteed deterministic** — a pure function of the netlist, independent
/// of traversal order (the collection goes through `BTreeSet`s) — because
/// downstream consumers key on it: encoding-cache signatures and the
/// parallel scheduler's cone-size priorities must see identical support
/// lists run-to-run.
pub fn node_support(netlist: &Netlist, root: NodeId) -> (Vec<StateId>, Vec<InputId>) {
    let mut seen = vec![false; netlist.num_nodes()];
    let mut states = BTreeSet::new();
    let mut inputs = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        match netlist.node(id).op {
            NodeOp::State(s) => {
                states.insert(s);
            }
            NodeOp::Input(i) => {
                inputs.insert(i);
            }
            _ => stack.extend(netlist.operands(id)),
        }
    }
    (states.into_iter().collect(), inputs.into_iter().collect())
}

/// Precomputed 1-step cone-of-influence table: for every state element, the
/// states and inputs its next-state function reads.
#[derive(Debug, Clone)]
pub struct Coi {
    state_deps: Vec<Vec<StateId>>,
    input_deps: Vec<Vec<InputId>>,
}

impl Coi {
    /// Analyses a complete netlist.
    ///
    /// # Panics
    ///
    /// Panics if any state lacks a next function.
    pub fn new(netlist: &Netlist) -> Coi {
        let mut state_deps = Vec::with_capacity(netlist.num_states());
        let mut input_deps = Vec::with_capacity(netlist.num_states());
        for s in netlist.state_ids() {
            let (st, inp) = node_support(netlist, netlist.next_of(s));
            state_deps.push(st);
            input_deps.push(inp);
        }
        Coi {
            state_deps,
            input_deps,
        }
    }

    /// The state elements read by the next-state function of `s`.
    pub fn states_of(&self, s: StateId) -> &[StateId] {
        &self.state_deps[s.index()]
    }

    /// The inputs read by the next-state function of `s`.
    pub fn inputs_of(&self, s: StateId) -> &[InputId] {
        &self.input_deps[s.index()]
    }

    /// `O_slice`: the union of 1-step cones of the given target variables —
    /// every state element that can influence any of them in one transition.
    ///
    /// The result is sorted ascending by id and deduplicated, regardless of
    /// the order (or multiplicity) of `targets`: cache keys and the parallel
    /// scheduler's deterministic cone-size priorities depend on this order
    /// being a pure function of the netlist and the target *set*.
    pub fn one_step(&self, targets: &[StateId]) -> Vec<StateId> {
        let mut out = BTreeSet::new();
        for &t in targets {
            out.extend(self.states_of(t).iter().copied());
        }
        out.into_iter().collect()
    }

    /// The transitive (fixed-point) cone of influence of the given targets:
    /// all states that can ever influence them. Useful for sanity checks and
    /// for pruning designs before monolithic baseline runs.
    ///
    /// Like [`Coi::one_step`], the result is sorted ascending and
    /// deduplicated — deterministic no matter the frontier exploration order.
    pub fn transitive(&self, targets: &[StateId]) -> Vec<StateId> {
        let mut reached: BTreeSet<StateId> = targets.iter().copied().collect();
        let mut frontier: Vec<StateId> = targets.to_vec();
        while let Some(t) = frontier.pop() {
            for &d in self.states_of(t) {
                if reached.insert(d) {
                    frontier.push(d);
                }
            }
        }
        reached.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::netlist::Netlist;

    /// Three-register pipeline a -> b -> c plus an unrelated register u.
    fn pipeline() -> (Netlist, [StateId; 4]) {
        let mut n = Netlist::new("pipe");
        let a = n.state("a", 4, Bv::zero(4));
        let b = n.state("b", 4, Bv::zero(4));
        let c = n.state("c", 4, Bv::zero(4));
        let u = n.state("u", 4, Bv::zero(4));
        let i = n.input("i", 4);
        n.set_next(a, i);
        let an = n.state_node(a);
        n.set_next(b, an);
        let bn = n.state_node(b);
        n.set_next(c, bn);
        n.keep_state(u);
        (n, [a, b, c, u])
    }

    #[test]
    fn one_step_coi_is_direct_predecessors() {
        let (n, [a, b, c, u]) = pipeline();
        let coi = Coi::new(&n);
        assert_eq!(coi.one_step(&[c]), vec![b]);
        assert_eq!(coi.one_step(&[b]), vec![a]);
        assert_eq!(coi.one_step(&[a]), vec![]); // input only
        assert_eq!(coi.one_step(&[u]), vec![u]); // self-loop
        assert_eq!(coi.one_step(&[b, c]), vec![a, b]);
    }

    #[test]
    fn input_deps_recorded() {
        let (n, [a, b, _, _]) = pipeline();
        let coi = Coi::new(&n);
        assert_eq!(coi.inputs_of(a).len(), 1);
        assert!(coi.inputs_of(b).is_empty());
    }

    #[test]
    fn transitive_closure() {
        let (n, [a, b, c, u]) = pipeline();
        let coi = Coi::new(&n);
        assert_eq!(coi.transitive(&[c]), vec![a, b, c]);
        assert_eq!(coi.transitive(&[u]), vec![u]);
    }

    #[test]
    fn node_support_sees_through_logic() {
        let mut n = Netlist::new("t");
        let a = n.state("a", 1, Bv::bit(false));
        let b = n.state("b", 1, Bv::bit(false));
        let i = n.input("i", 1);
        let an = n.state_node(a);
        let bn = n.state_node(b);
        let x = n.and(an, bn);
        let y = n.or(x, i);
        let (st, inp) = node_support(&n, y);
        assert_eq!(st, vec![a, b]);
        assert_eq!(inp.len(), 1);
    }

    /// Regression against brute force on pseudo-random netlists: `one_step`
    /// must equal the sorted, deduplicated union of per-target
    /// [`node_support`] calls, and `transitive` must equal a naive fixpoint
    /// — both in guaranteed ascending order.
    #[test]
    fn one_step_and_transitive_match_brute_force_support() {
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // xorshift64*: deterministic, no external crates.
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for trial in 0..8 {
            let mut n = Netlist::new("rand");
            let states: Vec<StateId> = (0..10)
                .map(|i| n.state(format!("s{i}"), 4, Bv::zero(4)))
                .collect();
            let inputs: Vec<NodeId> = (0..3).map(|i| n.input(format!("i{i}"), 4)).collect();
            for &s in &states {
                // Random 2–4 leaf expression over states and inputs.
                let mut leaves: Vec<NodeId> = Vec::new();
                for _ in 0..(2 + next() % 3) {
                    if next() % 4 == 0 {
                        leaves.push(inputs[(next() % 3) as usize]);
                    } else {
                        leaves.push(n.state_node(states[(next() % 10) as usize]));
                    }
                }
                let mut acc = leaves[0];
                for &l in &leaves[1..] {
                    acc = match next() % 3 {
                        0 => n.and(acc, l),
                        1 => n.add(acc, l),
                        _ => n.xor(acc, l),
                    };
                }
                n.set_next(s, acc);
            }
            let coi = Coi::new(&n);
            // Random target sets, in shuffled order with duplicates.
            for _ in 0..10 {
                let mut targets: Vec<StateId> = (0..(1 + next() % 5))
                    .map(|_| states[(next() % 10) as usize])
                    .collect();
                targets.push(targets[0]); // explicit duplicate

                // Brute force one_step: union of per-target node_support.
                let mut expect = BTreeSet::new();
                for &t in &targets {
                    let (st, _) = node_support(&n, n.next_of(t));
                    expect.extend(st);
                }
                let expect: Vec<StateId> = expect.into_iter().collect();
                let got = coi.one_step(&targets);
                assert_eq!(got, expect, "trial {trial}: one_step != brute force");
                assert!(got.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated");

                // Brute force transitive: naive fixpoint over one_step.
                let mut reach: BTreeSet<StateId> = targets.iter().copied().collect();
                loop {
                    let frontier: Vec<StateId> = reach.iter().copied().collect();
                    let before = reach.len();
                    for s in coi.one_step(&frontier) {
                        reach.insert(s);
                    }
                    if reach.len() == before {
                        break;
                    }
                }
                let expect_t: Vec<StateId> = reach.into_iter().collect();
                let got_t = coi.transitive(&targets);
                assert_eq!(got_t, expect_t, "trial {trial}: transitive mismatch");
                assert!(got_t.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn coi_respects_mux_structure() {
        // next(r) = ite(sel, x, y): all of sel, x, y are in the cone.
        let mut n = Netlist::new("t");
        let r = n.state("r", 4, Bv::zero(4));
        let sel = n.state("sel", 1, Bv::bit(false));
        let x = n.state("x", 4, Bv::zero(4));
        let y = n.state("y", 4, Bv::zero(4));
        let seln = n.state_node(sel);
        let xn = n.state_node(x);
        let yn = n.state_node(y);
        let nxt = n.ite(seln, xn, yn);
        n.set_next(r, nxt);
        n.keep_state(sel);
        n.keep_state(x);
        n.keep_state(y);
        let coi = Coi::new(&n);
        assert_eq!(coi.one_step(&[r]), vec![sel, x, y]);
    }
}
