//! btor2 subset reader and writer.
//!
//! The paper's tool consumes hardware designs in the btor2 format emitted by
//! yosys (§6.1). This module implements the word-level subset of btor2 that
//! our IR covers: bit-vector sorts up to 64 bits, `input`/`state` with
//! `init`/`next`, constants, the standard combinational operators, and
//! `output`/`bad` markers (both become named outputs).
//!
//! Arrays, multi-line comments and justice/fairness properties are not
//! supported; encountering them is a parse error rather than a silent skip.

use crate::bv::Bv;
use crate::netlist::{Netlist, NodeId, NodeOp, StateId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors produced by [`parse_btor2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btor2Error {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Btor2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "btor2 parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for Btor2Error {}

fn err(line: usize, message: impl Into<String>) -> Btor2Error {
    Btor2Error {
        line,
        message: message.into(),
    }
}

/// Parses btor2 text into a [`Netlist`].
///
/// States without an `init` line default to zero; states without a `next`
/// line are an error (our transition systems are complete).
///
/// # Errors
///
/// Returns [`Btor2Error`] on unsupported constructs, malformed lines, or
/// dangling references.
pub fn parse_btor2(text: &str) -> Result<Netlist, Btor2Error> {
    let mut netlist = Netlist::new("btor2");
    let mut sorts: HashMap<u64, u32> = HashMap::new();
    let mut nodes: HashMap<u64, NodeId> = HashMap::new();
    let mut states: HashMap<u64, StateId> = HashMap::new();
    let mut next_seen: HashMap<u64, bool> = HashMap::new();
    let mut anon_counter = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find(';') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let id: u64 = toks[0]
            .parse()
            .map_err(|_| err(lineno, format!("bad node id {}", toks[0])))?;
        let kind = *toks.get(1).ok_or_else(|| err(lineno, "missing kind"))?;

        let get_sort = |tok: &str| -> Result<u32, Btor2Error> {
            let sid: u64 = tok
                .parse()
                .map_err(|_| err(lineno, format!("bad sort ref {tok}")))?;
            sorts
                .get(&sid)
                .copied()
                .ok_or_else(|| err(lineno, format!("unknown sort {sid}")))
        };
        let get_node = |nodes: &HashMap<u64, NodeId>, tok: &str| -> Result<NodeId, Btor2Error> {
            let nid: i64 = tok
                .parse()
                .map_err(|_| err(lineno, format!("bad node ref {tok}")))?;
            if nid < 0 {
                return Err(err(lineno, "negated node refs are not supported"));
            }
            nodes
                .get(&(nid as u64))
                .copied()
                .ok_or_else(|| err(lineno, format!("unknown node {nid}")))
        };

        match kind {
            "sort" => {
                if toks.get(2) != Some(&"bitvec") {
                    return Err(err(lineno, "only bitvec sorts are supported"));
                }
                let w: u32 = toks
                    .get(3)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "bad sort width"))?;
                if !(1..=crate::bv::MAX_WIDTH).contains(&w) {
                    return Err(err(lineno, format!("unsupported width {w}")));
                }
                sorts.insert(id, w);
            }
            "input" => {
                let w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let name = toks.get(3).map(|s| s.to_string()).unwrap_or_else(|| {
                    anon_counter += 1;
                    format!("input_{id}")
                });
                let node = netlist.input(name, w);
                nodes.insert(id, node);
            }
            "state" => {
                let w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let name = toks.get(3).map(|s| s.to_string()).unwrap_or_else(|| {
                    anon_counter += 1;
                    format!("state_{id}")
                });
                let sid = netlist.state(name, w, Bv::zero(w));
                nodes.insert(id, netlist.state_node(sid));
                states.insert(id, sid);
                next_seen.insert(id, false);
            }
            "init" => {
                let state_tok = toks.get(3).ok_or_else(|| err(lineno, "missing state"))?;
                let sref: u64 = state_tok
                    .parse()
                    .map_err(|_| err(lineno, "bad state ref"))?;
                let sid = *states
                    .get(&sref)
                    .ok_or_else(|| err(lineno, format!("init of non-state {sref}")))?;
                let val = get_node(
                    &nodes,
                    toks.get(4).ok_or_else(|| err(lineno, "missing value"))?,
                )?;
                match netlist.node(val).op {
                    NodeOp::Const(c) => netlist.set_init(sid, c),
                    _ => return Err(err(lineno, "init value must be a constant")),
                }
            }
            "next" => {
                let state_tok = toks.get(3).ok_or_else(|| err(lineno, "missing state"))?;
                let sref: u64 = state_tok
                    .parse()
                    .map_err(|_| err(lineno, "bad state ref"))?;
                let sid = *states
                    .get(&sref)
                    .ok_or_else(|| err(lineno, format!("next of non-state {sref}")))?;
                let val = get_node(
                    &nodes,
                    toks.get(4).ok_or_else(|| err(lineno, "missing value"))?,
                )?;
                netlist.set_next(sid, val);
                next_seen.insert(sref, true);
            }
            "const" | "constd" | "consth" => {
                let w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let lit = toks.get(3).ok_or_else(|| err(lineno, "missing literal"))?;
                let radix = match kind {
                    "const" => 2,
                    "constd" => 10,
                    _ => 16,
                };
                let bits = u64::from_str_radix(lit, radix)
                    .map_err(|_| err(lineno, format!("bad constant {lit}")))?;
                nodes.insert(id, netlist.constant(Bv::new(w, bits)));
            }
            "one" | "ones" | "zero" => {
                let w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let v = match kind {
                    "one" => Bv::new(w, 1),
                    "ones" => Bv::ones(w),
                    _ => Bv::zero(w),
                };
                nodes.insert(id, netlist.constant(v));
            }
            "constraint" => {
                let node = get_node(
                    &nodes,
                    toks.get(2).ok_or_else(|| err(lineno, "missing node"))?,
                )?;
                netlist.add_constraint(node);
            }
            "output" | "bad" => {
                let node = get_node(
                    &nodes,
                    toks.get(2).ok_or_else(|| err(lineno, "missing node"))?,
                )?;
                let name = toks
                    .get(3)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("{kind}_{id}"));
                netlist.add_output(name, node);
            }
            // Unary operators.
            "not" | "neg" | "redor" | "redand" | "redxor" => {
                let _w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let a = get_node(
                    &nodes,
                    toks.get(3).ok_or_else(|| err(lineno, "missing operand"))?,
                )?;
                let node = match kind {
                    "not" => netlist.not(a),
                    "neg" => netlist.neg(a),
                    "redor" => netlist.redor(a),
                    "redand" => netlist.redand(a),
                    _ => netlist.redxor(a),
                };
                nodes.insert(id, node);
            }
            // Extensions carry the pad amount.
            "uext" | "sext" => {
                let w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let a = get_node(
                    &nodes,
                    toks.get(3).ok_or_else(|| err(lineno, "missing operand"))?,
                )?;
                let node = if kind == "uext" {
                    netlist.uext(a, w)
                } else {
                    netlist.sext(a, w)
                };
                nodes.insert(id, node);
            }
            "slice" => {
                let _w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let a = get_node(
                    &nodes,
                    toks.get(3).ok_or_else(|| err(lineno, "missing operand"))?,
                )?;
                let hi: u32 = toks
                    .get(4)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "bad slice hi"))?;
                let lo: u32 = toks
                    .get(5)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "bad slice lo"))?;
                nodes.insert(id, netlist.slice(a, hi, lo));
            }
            "ite" => {
                let _w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let c = get_node(
                    &nodes,
                    toks.get(3).ok_or_else(|| err(lineno, "missing cond"))?,
                )?;
                let t = get_node(
                    &nodes,
                    toks.get(4).ok_or_else(|| err(lineno, "missing then"))?,
                )?;
                let e = get_node(
                    &nodes,
                    toks.get(5).ok_or_else(|| err(lineno, "missing else"))?,
                )?;
                nodes.insert(id, netlist.ite(c, t, e));
            }
            // Binary operators.
            "and" | "or" | "xor" | "add" | "sub" | "mul" | "eq" | "neq" | "ult" | "slt" | "sll"
            | "srl" | "sra" | "concat" => {
                let _w = get_sort(toks.get(2).ok_or_else(|| err(lineno, "missing sort"))?)?;
                let a = get_node(
                    &nodes,
                    toks.get(3).ok_or_else(|| err(lineno, "missing lhs"))?,
                )?;
                let b = get_node(
                    &nodes,
                    toks.get(4).ok_or_else(|| err(lineno, "missing rhs"))?,
                )?;
                let node = match kind {
                    "and" => netlist.and(a, b),
                    "or" => netlist.or(a, b),
                    "xor" => netlist.xor(a, b),
                    "add" => netlist.add(a, b),
                    "sub" => netlist.sub(a, b),
                    "mul" => netlist.mul(a, b),
                    "eq" => netlist.eq(a, b),
                    "neq" => netlist.ne(a, b),
                    "ult" => netlist.ult(a, b),
                    "slt" => netlist.slt(a, b),
                    "sll" => netlist.shl(a, b),
                    "srl" => netlist.lshr(a, b),
                    "sra" => netlist.ashr(a, b),
                    _ => netlist.concat(a, b),
                };
                nodes.insert(id, node);
            }
            other => {
                return Err(err(
                    lineno,
                    format!("unsupported btor2 construct `{other}`"),
                ))
            }
        }
    }

    for (&sref, &seen) in &next_seen {
        if !seen {
            return Err(err(0, format!("state (btor id {sref}) has no next")));
        }
    }
    Ok(netlist)
}

/// Serialises a [`Netlist`] to btor2 text (round-trips through
/// [`parse_btor2`]).
///
/// # Panics
///
/// Panics if the netlist is incomplete.
pub fn to_btor2(netlist: &Netlist) -> String {
    netlist.assert_complete();
    let mut out = String::new();
    let _ = writeln!(out, "; btor2 emitted by hh-netlist: {}", netlist.name());
    let mut next_id: u64 = 1;
    let mut sort_ids: HashMap<u32, u64> = HashMap::new();
    let mut node_ids: Vec<u64> = vec![0; netlist.num_nodes()];

    // Collect all widths used, emit sorts first.
    let mut widths: Vec<u32> = (0..netlist.num_nodes())
        .map(|i| netlist.node(NodeId(i as u32)).width)
        .collect();
    widths.sort_unstable();
    widths.dedup();
    for w in widths {
        let _ = writeln!(out, "{next_id} sort bitvec {w}");
        sort_ids.insert(w, next_id);
        next_id += 1;
    }

    // Emit nodes in topological (index) order.
    for idx in 0..netlist.num_nodes() {
        let nid = NodeId(idx as u32);
        let node = netlist.node(nid);
        let sort = sort_ids[&node.width];
        let id = next_id;
        next_id += 1;
        node_ids[idx] = id;
        let r = |x: NodeId| node_ids[x.index()];
        match node.op {
            NodeOp::Input(i) => {
                let _ = writeln!(out, "{id} input {sort} {}", netlist.input_name(i));
            }
            NodeOp::State(s) => {
                let _ = writeln!(out, "{id} state {sort} {}", netlist.state_name(s));
            }
            NodeOp::Const(c) => {
                let _ = writeln!(out, "{id} constd {sort} {}", c.bits());
            }
            NodeOp::Not(a) => {
                let _ = writeln!(out, "{id} not {sort} {}", r(a));
            }
            NodeOp::Neg(a) => {
                let _ = writeln!(out, "{id} neg {sort} {}", r(a));
            }
            NodeOp::RedOr(a) => {
                let _ = writeln!(out, "{id} redor {sort} {}", r(a));
            }
            NodeOp::RedAnd(a) => {
                let _ = writeln!(out, "{id} redand {sort} {}", r(a));
            }
            NodeOp::RedXor(a) => {
                let _ = writeln!(out, "{id} redxor {sort} {}", r(a));
            }
            NodeOp::And(a, b) => {
                let _ = writeln!(out, "{id} and {sort} {} {}", r(a), r(b));
            }
            NodeOp::Or(a, b) => {
                let _ = writeln!(out, "{id} or {sort} {} {}", r(a), r(b));
            }
            NodeOp::Xor(a, b) => {
                let _ = writeln!(out, "{id} xor {sort} {} {}", r(a), r(b));
            }
            NodeOp::Add(a, b) => {
                let _ = writeln!(out, "{id} add {sort} {} {}", r(a), r(b));
            }
            NodeOp::Sub(a, b) => {
                let _ = writeln!(out, "{id} sub {sort} {} {}", r(a), r(b));
            }
            NodeOp::Mul(a, b) => {
                let _ = writeln!(out, "{id} mul {sort} {} {}", r(a), r(b));
            }
            NodeOp::Eq(a, b) => {
                let _ = writeln!(out, "{id} eq {sort} {} {}", r(a), r(b));
            }
            NodeOp::Ult(a, b) => {
                let _ = writeln!(out, "{id} ult {sort} {} {}", r(a), r(b));
            }
            NodeOp::Slt(a, b) => {
                let _ = writeln!(out, "{id} slt {sort} {} {}", r(a), r(b));
            }
            NodeOp::Shl(a, b) => {
                let _ = writeln!(out, "{id} sll {sort} {} {}", r(a), r(b));
            }
            NodeOp::Lshr(a, b) => {
                let _ = writeln!(out, "{id} srl {sort} {} {}", r(a), r(b));
            }
            NodeOp::Ashr(a, b) => {
                let _ = writeln!(out, "{id} sra {sort} {} {}", r(a), r(b));
            }
            NodeOp::Ite(c, t, e) => {
                let _ = writeln!(out, "{id} ite {sort} {} {} {}", r(c), r(t), r(e));
            }
            NodeOp::Concat(a, b) => {
                let _ = writeln!(out, "{id} concat {sort} {} {}", r(a), r(b));
            }
            NodeOp::Slice(a, hi, lo) => {
                let _ = writeln!(out, "{id} slice {sort} {} {hi} {lo}", r(a));
            }
            NodeOp::Uext(a) => {
                let pad = node.width - netlist.width(a);
                let _ = writeln!(out, "{id} uext {sort} {} {pad}", r(a));
            }
            NodeOp::Sext(a) => {
                let pad = node.width - netlist.width(a);
                let _ = writeln!(out, "{id} sext {sort} {} {pad}", r(a));
            }
        }
    }

    // init / next lines. Init constants may need fresh const nodes.
    for s in netlist.state_ids() {
        let w = netlist.state_width(s);
        let sort = sort_ids[&w];
        let state_btor = node_ids[netlist.state_node(s).index()];
        let init = netlist.init_of(s);
        let cid = next_id;
        next_id += 1;
        let _ = writeln!(out, "{cid} constd {sort} {}", init.bits());
        let iid = next_id;
        next_id += 1;
        let _ = writeln!(out, "{iid} init {sort} {state_btor} {cid}");
        let nid = next_id;
        next_id += 1;
        let next_btor = node_ids[netlist.next_of(s).index()];
        let _ = writeln!(out, "{nid} next {sort} {state_btor} {next_btor}");
    }

    for &c in netlist.constraints() {
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} constraint {}", node_ids[c.index()]);
    }
    for (name, node) in netlist.outputs() {
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} output {} {name}", node_ids[node.index()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{step, InputValues, StateValues};

    #[test]
    fn parse_simple_counter() {
        let text = "\
1 sort bitvec 4
2 state 1 cnt
3 one 1
4 add 1 2 3
5 next 1 2 4
6 output 2 cnt_out
";
        let n = parse_btor2(text).unwrap();
        assert_eq!(n.num_states(), 1);
        let cnt = n.find_state("cnt").unwrap();
        let mut s = StateValues::initial(&n);
        let inputs = InputValues::zeros(&n);
        s = step(&n, &s, &inputs);
        s = step(&n, &s, &inputs);
        assert_eq!(s.get(cnt).bits(), 2);
    }

    #[test]
    fn init_values_honoured() {
        let text = "\
1 sort bitvec 8
2 state 1 r
3 constd 1 42
4 init 1 2 3
5 next 1 2 2
";
        let n = parse_btor2(text).unwrap();
        let r = n.find_state("r").unwrap();
        assert_eq!(n.init_of(r).bits(), 42);
    }

    #[test]
    fn missing_next_is_error() {
        let text = "1 sort bitvec 1\n2 state 1 r\n";
        assert!(parse_btor2(text).is_err());
    }

    #[test]
    fn unsupported_construct_is_error() {
        let text = "1 sort array 2 2\n";
        let e = parse_btor2(text).unwrap_err();
        assert!(e.message.contains("bitvec"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "; header\n\n1 sort bitvec 1 ; trailing\n2 state 1 r\n3 next 1 2 2\n";
        assert!(parse_btor2(text).is_ok());
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        // Build a design, write btor2, re-parse, and check both step
        // identically for a few cycles.
        let mut n = Netlist::new("rt");
        let r = n.state("r", 8, crate::bv::Bv::new(8, 5));
        let i = n.input("i", 8);
        let cur = n.state_node(r);
        let two = n.c(8, 2);
        let shifted = n.shl(cur, two);
        let nxt = n.add(shifted, i);
        n.set_next(r, nxt);
        n.add_output("o", cur);
        let text = to_btor2(&n);
        let m = parse_btor2(&text).unwrap();
        assert_eq!(m.num_states(), 1);
        let rm = m.find_state("r").unwrap();
        assert_eq!(m.init_of(rm).bits(), 5);

        let mut sn = StateValues::initial(&n);
        let mut sm = StateValues::initial(&m);
        let mut inputs_n = InputValues::zeros(&n);
        inputs_n.set_by_name(&n, "i", crate::bv::Bv::new(8, 3));
        let mut inputs_m = InputValues::zeros(&m);
        inputs_m.set_by_name(&m, "i", crate::bv::Bv::new(8, 3));
        for _ in 0..5 {
            sn = step(&n, &sn, &inputs_n);
            sm = step(&m, &sm, &inputs_m);
            assert_eq!(sn.get(r), sm.get(rm));
        }
    }

    #[test]
    fn all_operators_roundtrip() {
        let mut n = Netlist::new("ops");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let r = n.state("r", 8, crate::bv::Bv::zero(8));
        let pieces = vec![
            n.not(a),
            n.neg(a),
            n.and(a, b),
            n.or(a, b),
            n.xor(a, b),
            n.add(a, b),
            n.sub(a, b),
            n.mul(a, b),
            n.shl(a, b),
            n.lshr(a, b),
            n.ashr(a, b),
        ];
        let red = [
            n.redor(a),
            n.redand(a),
            n.redxor(a),
            n.eq(a, b),
            n.ne(a, b),
            n.ult(a, b),
            n.slt(a, b),
        ];
        let mut acc = pieces[0];
        for &p in &pieces[1..] {
            acc = n.xor(acc, p);
        }
        let mut racc = red[0];
        for &p in &red[1..] {
            racc = n.xor(racc, p);
        }
        let sl = n.slice(acc, 6, 2);
        let ux = n.uext(sl, 8);
        let sx8 = n.sext(racc, 8);
        let cc = n.concat(racc, sl); // 6 bits
        let cc8 = n.uext(cc, 8);
        let t1 = n.xor(acc, ux);
        let t2 = n.xor(sx8, cc8);
        let nxt = n.ite(racc, t1, t2);
        n.set_next(r, nxt);
        n.add_output("o", nxt);

        let text = to_btor2(&n);
        let m = parse_btor2(&text).unwrap();
        let rm = m.find_state("r").unwrap();
        let rn = n.find_state("r").unwrap();
        // Compare a cycle of behaviour on several input pairs.
        for (av, bvv) in [(3u64, 5u64), (0, 255), (128, 127), (200, 200)] {
            let mut in_n = InputValues::zeros(&n);
            in_n.set_by_name(&n, "a", crate::bv::Bv::new(8, av));
            in_n.set_by_name(&n, "b", crate::bv::Bv::new(8, bvv));
            let mut in_m = InputValues::zeros(&m);
            in_m.set_by_name(&m, "a", crate::bv::Bv::new(8, av));
            in_m.set_by_name(&m, "b", crate::bv::Bv::new(8, bvv));
            let sn = step(&n, &StateValues::initial(&n), &in_n);
            let sm = step(&m, &StateValues::initial(&m), &in_m);
            assert_eq!(sn.get(rn), sm.get(rm), "mismatch for a={av} b={bvv}");
        }
    }
}
