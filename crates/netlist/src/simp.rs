//! Word-level simplification: constant folding and structural hashing.
//!
//! [`SimpMap::build`] runs one forward pass over a netlist's (topologically
//! ordered) node vector and computes a canonical representative for every
//! node:
//!
//! * **constant folding** — a node whose operands all reduce to constants
//!   becomes a [`Repr::Const`];
//! * **algebraic rewrites** — identity/absorption laws (`x & 0`, `x ^ x`,
//!   `ite(c, x, x)`, `x - x`, …) collapse a node onto an operand or a
//!   constant;
//! * **structural hashing (strash)** — two live nodes computing the same
//!   operator over the same representatives share one representative, so
//!   identical subtrees in different next-state cones are encoded once by
//!   the bit-blaster.
//!
//! The pass never mutates the netlist: it is an analysis the blaster
//! consults before CNF generation, which keeps [`crate::NodeId`]s stable
//! for everything else (evaluation, cones of influence, predicate mining).

use std::collections::HashMap;

use crate::bv::Bv;
use crate::netlist::{Netlist, NodeId, NodeOp};

/// Canonical representative of a node after simplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Repr {
    /// The node always evaluates to this constant.
    Const(Bv),
    /// The node is equivalent to this (representative) node.
    Node(NodeId),
}

/// Counters reported by [`SimpMap::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimpStats {
    /// Nodes that folded to a constant.
    pub const_folds: u64,
    /// Nodes collapsed onto an operand or constant by an algebraic rewrite.
    pub rewrites: u64,
    /// Nodes merged with an existing structurally identical node.
    pub strash_hits: u64,
}

/// Strash operand: a representative node or a folded constant. Constants
/// compare by value, so `c(8, 5)` built twice through different node chains
/// still hashes together.
type Operand = Repr;

/// Structural key of a node after operand canonicalisation. The result
/// width is part of the key because extension operators with the same
/// operand differ only in width.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Unary(u8, u32, Operand),
    Binary(u8, u32, Operand, Operand),
    Ite(Operand, Operand, Operand),
    Slice(Operand, u32, u32),
}

/// Result of the per-node analysis before strash.
enum Simplified {
    Const(Bv),
    Operand(Operand),
    Keep(Key),
    /// Inputs and states are always their own representative and never
    /// participate in strash.
    Leader,
}

/// Canonical-representative map for one netlist.
#[derive(Debug)]
pub struct SimpMap {
    repr: Vec<Repr>,
    stats: SimpStats,
}

impl SimpMap {
    /// Analyses `netlist` and returns the representative map.
    pub fn build(netlist: &Netlist) -> SimpMap {
        let mut map = SimpMap {
            repr: Vec::with_capacity(netlist.num_nodes()),
            stats: SimpStats::default(),
        };
        let mut strash: HashMap<Key, NodeId> = HashMap::new();
        for index in 0..netlist.num_nodes() {
            let id = NodeId(index as u32);
            let node = netlist.node(id);
            let repr = match map.analyse(netlist, node.op, node.width) {
                Simplified::Const(bv) => Repr::Const(bv),
                Simplified::Operand(op) => op,
                Simplified::Leader => Repr::Node(id),
                Simplified::Keep(key) => match strash.get(&key) {
                    Some(&leader) => {
                        map.stats.strash_hits += 1;
                        Repr::Node(leader)
                    }
                    None => {
                        strash.insert(key, id);
                        Repr::Node(id)
                    }
                },
            };
            map.repr.push(repr);
        }
        map
    }

    /// The canonical representative of `id`.
    pub fn repr(&self, id: NodeId) -> Repr {
        self.repr[id.index()]
    }

    /// Whether `id` is its own representative (i.e. must be encoded).
    pub fn is_leader(&self, id: NodeId) -> bool {
        self.repr[id.index()] == Repr::Node(id)
    }

    /// Simplification counters.
    pub fn stats(&self) -> SimpStats {
        self.stats
    }

    fn operand(&self, id: NodeId) -> Operand {
        self.repr[id.index()]
    }

    /// Folds, rewrites or keys one node, with operands already resolved to
    /// their representatives.
    fn analyse(&mut self, netlist: &Netlist, op: NodeOp, width: u32) -> Simplified {
        use NodeOp::*;
        match op {
            Const(bv) => Simplified::Const(bv),
            Input(_) | State(_) => Simplified::Leader,
            Not(a) => match self.operand(a) {
                Repr::Const(x) => self.fold(x.not()),
                r => Simplified::Keep(Key::Unary(2, width, r)),
            },
            Neg(a) => match self.operand(a) {
                Repr::Const(x) => self.fold(x.wrapping_neg()),
                r => Simplified::Keep(Key::Unary(3, width, r)),
            },
            RedOr(a) => self.reduction(netlist, 4, width, a, Bv::redor),
            RedAnd(a) => self.reduction(netlist, 5, width, a, Bv::redand),
            RedXor(a) => self.reduction(netlist, 6, width, a, Bv::redxor),
            And(a, b) => self.binary(7, width, a, b, op),
            Or(a, b) => self.binary(8, width, a, b, op),
            Xor(a, b) => self.binary(9, width, a, b, op),
            Add(a, b) => self.binary(10, width, a, b, op),
            Sub(a, b) => self.binary(11, width, a, b, op),
            Mul(a, b) => self.binary(12, width, a, b, op),
            Eq(a, b) => self.binary(13, width, a, b, op),
            Ult(a, b) => self.binary(14, width, a, b, op),
            Slt(a, b) => self.binary(15, width, a, b, op),
            Shl(a, b) => self.binary(16, width, a, b, op),
            Lshr(a, b) => self.binary(17, width, a, b, op),
            Ashr(a, b) => self.binary(18, width, a, b, op),
            Ite(c, t, e) => {
                let (rc, rt, re) = (self.operand(c), self.operand(t), self.operand(e));
                if let Repr::Const(cv) = rc {
                    self.rewrite_to(if cv.is_true() { rt } else { re })
                } else if rt == re {
                    self.rewrite_to(rt)
                } else {
                    Simplified::Keep(Key::Ite(rc, rt, re))
                }
            }
            Concat(hi, lo) => match (self.operand(hi), self.operand(lo)) {
                (Repr::Const(h), Repr::Const(l)) => self.fold(h.concat(l)),
                (rh, rl) => Simplified::Keep(Key::Binary(19, width, rh, rl)),
            },
            Slice(a, hi, lo) => match self.operand(a) {
                Repr::Const(x) => self.fold(x.slice(hi, lo)),
                r => Simplified::Keep(Key::Slice(r, hi, lo)),
            },
            Uext(a) => match self.operand(a) {
                Repr::Const(x) => self.fold(x.uext(width)),
                r => Simplified::Keep(Key::Unary(20, width, r)),
            },
            Sext(a) => match self.operand(a) {
                Repr::Const(x) => self.fold(x.sext(width)),
                r => Simplified::Keep(Key::Unary(21, width, r)),
            },
        }
    }

    fn fold(&mut self, bv: Bv) -> Simplified {
        self.stats.const_folds += 1;
        Simplified::Const(bv)
    }

    fn rewrite_to(&mut self, r: Operand) -> Simplified {
        self.stats.rewrites += 1;
        Simplified::Operand(r)
    }

    fn rewrite_const(&mut self, bv: Bv) -> Simplified {
        self.stats.rewrites += 1;
        Simplified::Const(bv)
    }

    /// Reductions fold on constants and are the identity on 1-bit operands.
    fn reduction(
        &mut self,
        netlist: &Netlist,
        tag: u8,
        width: u32,
        a: NodeId,
        f: impl Fn(Bv) -> Bv,
    ) -> Simplified {
        match self.operand(a) {
            Repr::Const(x) => self.fold(f(x)),
            Repr::Node(n) if netlist.width(n) == 1 => self.rewrite_to(Repr::Node(n)),
            r => Simplified::Keep(Key::Unary(tag, width, r)),
        }
    }

    /// Shared handling for two-operand operators: fold when both sides are
    /// constants, apply identity/absorption rewrites when one side is, and
    /// canonicalise commutative operand order for strash.
    fn binary(&mut self, tag: u8, width: u32, a: NodeId, b: NodeId, op: NodeOp) -> Simplified {
        use NodeOp::*;
        let ra = self.operand(a);
        let rb = self.operand(b);
        if let (Repr::Const(x), Repr::Const(y)) = (ra, rb) {
            let v = match op {
                And(..) => x.and(y),
                Or(..) => x.or(y),
                Xor(..) => x.xor(y),
                Add(..) => x.wrapping_add(y),
                Sub(..) => x.wrapping_sub(y),
                Mul(..) => x.wrapping_mul(y),
                Eq(..) => x.eq_bit(y),
                Ult(..) => x.ult(y),
                Slt(..) => x.slt(y),
                Shl(..) => x.shl(y),
                Lshr(..) => x.lshr(y),
                Ashr(..) => x.ashr(y),
                _ => unreachable!("binary() called on non-binary op"),
            };
            return self.fold(v);
        }
        // Equal representatives.
        if ra == rb {
            match op {
                And(..) | Or(..) => return self.rewrite_to(ra),
                Xor(..) | Sub(..) => return self.rewrite_const(Bv::zero(width)),
                Eq(..) => return self.rewrite_const(Bv::bit(true)),
                Ult(..) | Slt(..) => return self.rewrite_const(Bv::bit(false)),
                _ => {}
            }
        }
        // One constant operand: identity / absorption laws.
        for (c, other, const_is_lhs) in [(ra, rb, true), (rb, ra, false)] {
            let Repr::Const(cv) = c else { continue };
            let zero = cv.bits() == 0;
            let ones = cv == Bv::ones(cv.width());
            match op {
                And(..) if zero => return self.rewrite_const(Bv::zero(width)),
                And(..) if ones => return self.rewrite_to(other),
                Or(..) if zero => return self.rewrite_to(other),
                Or(..) if ones => return self.rewrite_const(Bv::ones(width)),
                Xor(..) if zero => return self.rewrite_to(other),
                Add(..) if zero => return self.rewrite_to(other),
                Mul(..) if zero => return self.rewrite_const(Bv::zero(width)),
                Mul(..) if cv.bits() == 1 => return self.rewrite_to(other),
                // x - 0 = x; 0 is the right operand.
                Sub(..) if zero && !const_is_lhs => return self.rewrite_to(other),
                // x << 0, x >> 0: shift amount is the right operand.
                Shl(..) | Lshr(..) | Ashr(..) if zero && !const_is_lhs => {
                    return self.rewrite_to(other)
                }
                // Shifting past the width zeroes logical shifts.
                Shl(..) | Lshr(..) if !const_is_lhs && cv.bits() >= u64::from(width) => {
                    return self.rewrite_const(Bv::zero(width))
                }
                _ => {}
            }
        }
        // Canonical operand order for commutative operators.
        let (ka, kb) = match op {
            And(..) | Or(..) | Xor(..) | Add(..) | Mul(..) | Eq(..) if rb < ra => (rb, ra),
            _ => (ra, rb),
        };
        Simplified::Keep(Key::Binary(tag, width, ka, kb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_all, InputValues, StateValues};

    #[test]
    fn constants_fold_through_operators() {
        let mut n = Netlist::new("t");
        let a = n.c(8, 12);
        let b = n.c(8, 5);
        let sum = n.add(a, b);
        let shifted = n.shl(sum, b);
        let map = SimpMap::build(&n);
        assert_eq!(map.repr(sum), Repr::Const(Bv::new(8, 17)));
        assert_eq!(map.repr(shifted), Repr::Const(Bv::new(8, (17 << 5) & 0xff)));
        assert!(map.stats().const_folds >= 2);
    }

    #[test]
    fn algebraic_rewrites_collapse_identities() {
        let mut n = Netlist::new("t");
        let x = n.input("x", 8);
        let zero = n.c(8, 0);
        let ones = n.c(8, 0xff);
        let and0 = n.and(x, zero);
        let and1 = n.and(x, ones);
        let xorxx = n.xor(x, x);
        let subxx = n.sub(x, x);
        let eqxx = n.eq(x, x);
        let add0 = n.add(zero, x);
        let map = SimpMap::build(&n);
        assert_eq!(map.repr(and0), Repr::Const(Bv::zero(8)));
        assert_eq!(map.repr(and1), Repr::Node(x));
        assert_eq!(map.repr(xorxx), Repr::Const(Bv::zero(8)));
        assert_eq!(map.repr(subxx), Repr::Const(Bv::zero(8)));
        assert_eq!(map.repr(eqxx), Repr::Const(Bv::bit(true)));
        assert_eq!(map.repr(add0), Repr::Node(x));
        assert!(map.stats().rewrites >= 5);
    }

    #[test]
    fn ite_with_constant_condition_or_equal_branches() {
        let mut n = Netlist::new("t");
        let x = n.input("x", 4);
        let y = n.input("y", 4);
        let t = n.ctrue();
        let picked = n.ite(t, x, y);
        let c = n.input("c", 1);
        let same = n.ite(c, y, y);
        let map = SimpMap::build(&n);
        assert_eq!(map.repr(picked), Repr::Node(x));
        assert_eq!(map.repr(same), Repr::Node(y));
    }

    #[test]
    fn strash_merges_structurally_identical_cones() {
        // The builder hash-conses syntactically identical expressions, so
        // build the duplicates through *different* routes that only become
        // identical after rewriting.
        let mut n = Netlist::new("t");
        let x = n.input("x", 8);
        let y = n.input("y", 8);
        let zero = n.c(8, 0);
        let x1 = n.add(x, zero); // rewrites to x
        let s1 = n.and(x, y);
        let s2 = n.and(x1, y); // structurally And(x, y) after rewrite
        assert_ne!(s1, s2, "builder must not already share these");
        let map = SimpMap::build(&n);
        assert_eq!(map.repr(s2), Repr::Node(s1));
        assert_eq!(map.stats().strash_hits, 1);
    }

    #[test]
    fn commutative_operands_share_a_key() {
        let mut n = Netlist::new("t");
        let x = n.input("x", 8);
        let y = n.input("y", 8);
        let zero = n.c(8, 0);
        let y1 = n.add(y, zero); // y, via a rewrite, so builder can't dedup
        let a = n.and(x, y);
        let b = n.and(y1, x);
        assert_ne!(a, b);
        let map = SimpMap::build(&n);
        assert_eq!(map.repr(b), Repr::Node(a));
    }

    #[test]
    fn representatives_agree_with_evaluation() {
        // Every node's representative must evaluate to the same value as
        // the node itself.
        let mut n = Netlist::new("t");
        let s = n.state("s", 8, Bv::new(8, 3));
        let sn = n.state_node(s);
        let x = n.input("x", 8);
        let zero = n.c(8, 0);
        let five = n.c(8, 5);
        let six = n.c(8, 6);
        let a = n.add(sn, x);
        let b = n.add(sn, zero);
        let c1 = n.xor(a, b);
        let folded = n.mul(five, six);
        let gated = n.and(c1, folded);
        let cond = n.eq(sn, sn);
        let picked = n.ite(cond, gated, x);
        n.set_next(s, picked);
        let map = SimpMap::build(&n);
        let states = StateValues::from_vec(vec![Bv::new(8, 3)]);
        let mut inputs = InputValues::zeros(&n);
        inputs.set_by_name(&n, "x", Bv::new(8, 0x5a));
        let vals = eval_all(&n, &states, &inputs);
        for i in 0..n.num_nodes() {
            let id = NodeId(i as u32);
            match map.repr(id) {
                Repr::Const(bv) => assert_eq!(bv, vals[i], "node {i} folded wrong"),
                Repr::Node(r) => {
                    assert_eq!(
                        vals[r.index()],
                        vals[i],
                        "node {i} merged with non-equal {r:?}"
                    )
                }
            }
        }
    }
}
