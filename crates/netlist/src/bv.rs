//! Fixed-width bit-vector values.
//!
//! All word-level signals in the IR are at most 64 bits wide, so a value is a
//! `(width, bits)` pair stored in a `u64` with the invariant that bits above
//! the width are zero. That keeps concrete simulation allocation-free, which
//! matters because positive-example generation simulates thousands of cycles.

use std::fmt;

/// Maximum supported signal width in bits.
pub const MAX_WIDTH: u32 = 64;

/// A bit-vector value of a fixed width between 1 and [`MAX_WIDTH`] bits.
///
/// ```
/// use hh_netlist::Bv;
/// let a = Bv::new(8, 0xff);
/// let b = Bv::new(8, 1);
/// assert_eq!(a.wrapping_add(b), Bv::new(8, 0)); // arithmetic wraps at width
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bv {
    width: u32,
    bits: u64,
}

impl Bv {
    /// Creates a value, truncating `bits` to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
    #[inline]
    pub fn new(width: u32, bits: u64) -> Bv {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "width {width} out of range 1..={MAX_WIDTH}"
        );
        Bv {
            width,
            bits: bits & mask(width),
        }
    }

    /// The all-zeros value of the given width.
    #[inline]
    pub fn zero(width: u32) -> Bv {
        Bv::new(width, 0)
    }

    /// The all-ones value of the given width.
    #[inline]
    pub fn ones(width: u32) -> Bv {
        Bv::new(width, mask(width))
    }

    /// A single-bit value.
    #[inline]
    pub fn bit(b: bool) -> Bv {
        Bv::new(1, b as u64)
    }

    /// The width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// The raw bits (upper bits guaranteed zero).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// `true` if this is a 1-bit value equal to 1.
    #[inline]
    pub fn is_true(self) -> bool {
        self.width == 1 && self.bits == 1
    }

    /// Whether any bit is set.
    #[inline]
    pub fn is_nonzero(self) -> bool {
        self.bits != 0
    }

    /// Extracts bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn get_bit(self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit {i} out of range for width {}",
            self.width
        );
        (self.bits >> i) & 1 == 1
    }

    /// The value sign-extended to 64 bits, as a signed integer.
    #[inline]
    pub fn as_i64(self) -> i64 {
        let shift = 64 - self.width;
        ((self.bits << shift) as i64) >> shift
    }

    fn same_width(self, rhs: Bv) -> u32 {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch: {} vs {}",
            self.width, rhs.width
        );
        self.width
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)] // named after the btor2 operator
    pub fn not(self) -> Bv {
        Bv::new(self.width, !self.bits)
    }

    /// Two's-complement negation at this width.
    pub fn wrapping_neg(self) -> Bv {
        Bv::new(self.width, self.bits.wrapping_neg())
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(self, rhs: Bv) -> Bv {
        Bv::new(self.same_width(rhs), self.bits & rhs.bits)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(self, rhs: Bv) -> Bv {
        Bv::new(self.same_width(rhs), self.bits | rhs.bits)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(self, rhs: Bv) -> Bv {
        Bv::new(self.same_width(rhs), self.bits ^ rhs.bits)
    }

    /// Addition modulo `2^width`. Panics on width mismatch.
    pub fn wrapping_add(self, rhs: Bv) -> Bv {
        Bv::new(self.same_width(rhs), self.bits.wrapping_add(rhs.bits))
    }

    /// Subtraction modulo `2^width`. Panics on width mismatch.
    pub fn wrapping_sub(self, rhs: Bv) -> Bv {
        Bv::new(self.same_width(rhs), self.bits.wrapping_sub(rhs.bits))
    }

    /// Multiplication modulo `2^width`. Panics on width mismatch.
    pub fn wrapping_mul(self, rhs: Bv) -> Bv {
        Bv::new(self.same_width(rhs), self.bits.wrapping_mul(rhs.bits))
    }

    /// Equality as a 1-bit value. Panics on width mismatch.
    pub fn eq_bit(self, rhs: Bv) -> Bv {
        self.same_width(rhs);
        Bv::bit(self.bits == rhs.bits)
    }

    /// Unsigned less-than as a 1-bit value. Panics on width mismatch.
    pub fn ult(self, rhs: Bv) -> Bv {
        self.same_width(rhs);
        Bv::bit(self.bits < rhs.bits)
    }

    /// Signed less-than as a 1-bit value. Panics on width mismatch.
    pub fn slt(self, rhs: Bv) -> Bv {
        self.same_width(rhs);
        Bv::bit(self.as_i64() < rhs.as_i64())
    }

    /// Logical shift left by `rhs` (shift amount read as unsigned; shifts of
    /// `width` or more produce zero).
    #[allow(clippy::should_implement_trait)] // named after the btor2 operator
    pub fn shl(self, rhs: Bv) -> Bv {
        let sh = rhs.bits;
        if sh >= self.width as u64 {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.bits << sh)
        }
    }

    /// Logical shift right by `rhs`.
    pub fn lshr(self, rhs: Bv) -> Bv {
        let sh = rhs.bits;
        if sh >= self.width as u64 {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.bits >> sh)
        }
    }

    /// Arithmetic shift right by `rhs` (sign-fill).
    pub fn ashr(self, rhs: Bv) -> Bv {
        let sh = rhs.bits.min(self.width as u64 - 1);
        Bv::new(self.width, (self.as_i64() >> sh) as u64)
    }

    /// OR-reduction to 1 bit.
    pub fn redor(self) -> Bv {
        Bv::bit(self.bits != 0)
    }

    /// AND-reduction to 1 bit.
    pub fn redand(self) -> Bv {
        Bv::bit(self.bits == mask(self.width))
    }

    /// XOR-reduction (parity) to 1 bit.
    pub fn redxor(self) -> Bv {
        Bv::bit(self.bits.count_ones() & 1 == 1)
    }

    /// Concatenation: `self` becomes the high bits, `low` the low bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(self, low: Bv) -> Bv {
        let w = self.width + low.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds {MAX_WIDTH}");
        Bv::new(w, (self.bits << low.width) | low.bits)
    }

    /// Extracts bits `hi..=lo` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(self, hi: u32, lo: u32) -> Bv {
        assert!(
            hi >= lo && hi < self.width,
            "bad slice [{hi}:{lo}] of width {}",
            self.width
        );
        Bv::new(hi - lo + 1, self.bits >> lo)
    }

    /// Zero-extends to `to` bits.
    ///
    /// # Panics
    ///
    /// Panics if `to < width` or `to > MAX_WIDTH`.
    pub fn uext(self, to: u32) -> Bv {
        assert!(to >= self.width, "uext shrinks width");
        Bv::new(to, self.bits)
    }

    /// Sign-extends to `to` bits.
    ///
    /// # Panics
    ///
    /// Panics if `to < width` or `to > MAX_WIDTH`.
    pub fn sext(self, to: u32) -> Bv {
        assert!(to >= self.width, "sext shrinks width");
        Bv::new(to, self.as_i64() as u64)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.bits)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{:b}", self.width, self.bits)
    }
}

#[inline]
pub(crate) fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_truncates() {
        assert_eq!(Bv::new(4, 0x1f).bits(), 0xf);
        assert_eq!(Bv::new(64, u64::MAX).bits(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn zero_width_panics() {
        Bv::new(0, 0);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Bv::new(4, 0xf);
        assert_eq!(a.wrapping_add(Bv::new(4, 1)), Bv::zero(4));
        assert_eq!(Bv::zero(4).wrapping_sub(Bv::new(4, 1)), Bv::ones(4));
        assert_eq!(Bv::new(4, 8).wrapping_mul(Bv::new(4, 2)), Bv::zero(4));
        assert_eq!(Bv::new(4, 3).wrapping_mul(Bv::new(4, 5)), Bv::new(4, 15));
    }

    #[test]
    fn signed_view() {
        assert_eq!(Bv::new(4, 0xf).as_i64(), -1);
        assert_eq!(Bv::new(4, 7).as_i64(), 7);
        assert_eq!(Bv::new(4, 8).as_i64(), -8);
    }

    #[test]
    fn comparisons() {
        let a = Bv::new(8, 0x80);
        let b = Bv::new(8, 0x01);
        assert!(b.ult(a).is_true());
        assert!(a.slt(b).is_true()); // 0x80 = -128 signed
        assert!(a.eq_bit(a).is_true());
        assert!(!a.eq_bit(b).is_true());
    }

    #[test]
    fn shifts() {
        let a = Bv::new(8, 0x81);
        assert_eq!(a.shl(Bv::new(3, 1)), Bv::new(8, 0x02));
        assert_eq!(a.lshr(Bv::new(3, 1)), Bv::new(8, 0x40));
        assert_eq!(a.ashr(Bv::new(3, 1)), Bv::new(8, 0xc0));
        // Oversized shift amounts.
        assert_eq!(a.shl(Bv::new(8, 200)), Bv::zero(8));
        assert_eq!(a.lshr(Bv::new(8, 200)), Bv::zero(8));
        assert_eq!(a.ashr(Bv::new(8, 200)), Bv::ones(8)); // sign fill
    }

    #[test]
    fn reductions() {
        assert!(Bv::new(4, 0b1010).redor().is_true());
        assert!(!Bv::zero(4).redor().is_true());
        assert!(Bv::ones(4).redand().is_true());
        assert!(!Bv::new(4, 0b1110).redand().is_true());
        assert!(Bv::new(4, 0b0111).redxor().is_true());
        assert!(!Bv::new(4, 0b0110).redxor().is_true());
    }

    #[test]
    fn structure_ops() {
        let hi = Bv::new(4, 0xa);
        let lo = Bv::new(4, 0x5);
        let c = hi.concat(lo);
        assert_eq!(c, Bv::new(8, 0xa5));
        assert_eq!(c.slice(7, 4), hi);
        assert_eq!(c.slice(3, 0), lo);
        assert_eq!(c.slice(4, 4), Bv::bit(false));
        assert_eq!(lo.uext(8), Bv::new(8, 5));
        assert_eq!(Bv::new(4, 0x8).sext(8), Bv::new(8, 0xf8));
    }

    #[test]
    fn display_formats() {
        let v = Bv::new(8, 0xa5);
        assert_eq!(v.to_string(), "8'd165");
        assert_eq!(format!("{v:x}"), "8'ha5");
        assert_eq!(format!("{v:b}"), "8'b10100101");
    }
}
