//! Integration tests for the simulator itself: the reproducibility
//! contract (`--seed` is the whole bug report), schedule diversity across
//! seeds, a clean CI batch, and the regression canary — the simulator must
//! catch a deliberately reintroduced commit-order shuffle.

use hh_vopr::harness::{self, probe, VoprOptions};

/// ISSUE acceptance: same seed ⇒ identical trace event-log hash and
/// identical invariant, at reorder windows 1, 2 and 4. Window 1 is the
/// serial schedule; wider windows genuinely reorder, yet every artifact
/// must still be a pure function of `(window, seed)`.
#[test]
fn same_seed_is_bit_identical_at_windows_1_2_4() {
    for scenario in 0..3 {
        let mut invariants = Vec::new();
        for window in [1usize, 2, 4] {
            let a = probe(scenario, window, 42);
            let b = probe(scenario, window, 42);
            assert_eq!(
                a.trace_hash, b.trace_hash,
                "scenario {scenario} window {window}: event-log hash diverged"
            );
            assert_eq!(a.events, b.events, "scheduler event log diverged");
            assert_eq!(a.invariant, b.invariant, "learned invariant diverged");
            assert_eq!(a.solutions, b.solutions, "solution table diverged");
            invariants.push(a.invariant);
        }
        // The *learned result* must not depend on the window width either —
        // reordering may change timing, never answers.
        assert_eq!(invariants[0], invariants[1], "scenario {scenario}");
        assert_eq!(invariants[1], invariants[2], "scenario {scenario}");
    }
}

/// Guard against a silently-unused PRNG: different seeds must actually
/// produce different completion schedules on the wide scenario (which has
/// enough independent cones for the window to have real freedom).
#[test]
fn different_seeds_produce_different_schedules() {
    let base = probe(0, 4, 0);
    let diverged = (1u64..16).any(|seed| probe(0, 4, seed).events != base.events);
    assert!(
        diverged,
        "15 distinct seeds replayed seed 0's schedule exactly — the \
         driver PRNG is not reaching the scheduler"
    );
}

/// A batch of default-option seeds must run violation-free — the same
/// property the CI smoke job asserts over the full 32-seed set via the
/// binary (this in-process version keeps the serve scenario off for speed).
#[test]
fn seed_batch_is_violation_free() {
    let opts = VoprOptions {
        serve: false,
        ..VoprOptions::default()
    };
    for seed in 0..6 {
        let report = harness::run_seed(seed, &opts);
        assert!(
            report.violations.is_empty(),
            "seed {seed} violated: {:?}",
            report.violations
        );
        assert!(report.checks > 0, "seed {seed} ran no checkers");
        // The per-seed digest is itself reproducible.
        assert_eq!(report.digest(), harness::run_seed(seed, &opts).digest());
    }
}

/// Regression canary: reintroducing the commit-order shuffle (the hidden
/// `enable_commit_shuffle` flag) must be caught by the commit-order
/// checker within a small seed budget. If this test fails, the simulator
/// has gone blind.
#[test]
fn canary_commit_shuffle_is_detected() {
    let opts = VoprOptions {
        canary: true,
        serve: false,
        ..VoprOptions::default()
    };
    let caught = (0..8u64).any(|seed| {
        harness::run_seed(seed, &opts)
            .violations
            .iter()
            .any(|v| v.contains("commit-order"))
    });
    assert!(
        caught,
        "commit-order shuffle reintroduced but no checker fired in 8 seeds"
    );
}

/// `minimize` on a canary failure must shrink to the empty fault prefix:
/// the bug is schedule-only, no injected fault is needed to expose it.
#[test]
fn minimize_isolates_schedule_only_failures() {
    let opts = VoprOptions {
        canary: true,
        serve: false,
        ..VoprOptions::default()
    };
    // Find a canary-failing seed with a non-empty fault plan first.
    let seed = (0..16u64)
        .find(|&s| {
            let r = harness::run_seed(s, &opts);
            !r.violations.is_empty() && !r.plan.faults.is_empty()
        })
        .expect("some seed in 0..16 fails the canary with faults planned");
    let (len, prefix, violations) = harness::minimize(seed, &opts);
    assert_eq!(len, 0, "canary needs no faults, got prefix {prefix}");
    assert!(violations.iter().any(|v| v.contains("commit-order")));
}
