//! # hh-vopr — deterministic whole-engine simulation
//!
//! A VOPR-style simulator (Viewstamped Operation Replicator, after the
//! TigerBeetle/Kimberlite lineage) for the H-Houdini engine: one seeded
//! PRNG owns *every* source of nondeterminism — worker interleaving,
//! commit reordering, cache-eviction timing, portfolio/budget slicing,
//! fault injection — so `vopr --seed N` reproduces an entire engine run
//! bit-for-bit, and a failing seed is a complete bug report.
//!
//! The crate splits into:
//!
//! * [`rng`] — the splitmix64 PRNG and its fork discipline;
//! * [`fault`] — the fault vocabulary and per-seed [`fault::FaultPlan`];
//! * [`designs`] — self-contained engine scenarios (wide / backtrack / leak);
//! * [`invariants`] — the always-on engine-invariant registry;
//! * [`harness`] — the per-seed driver gluing it together, plus
//!   [`harness::minimize`] for shrinking a failing fault schedule.
//!
//! See `docs/VOPR.md` for the operator's guide and the checker-writing
//! walkthrough.

pub mod designs;
pub mod fault;
pub mod harness;
pub mod invariants;
pub mod rng;

pub use fault::{Fault, FaultPlan};
pub use harness::{minimize, run_seed, SeedReport, VoprOptions};
pub use invariants::{InvariantConfig, InvariantResult, Registry};
pub use rng::SplitMix64;
