//! The `vopr` binary: seeded whole-engine simulation from the command line.
//!
//! ```text
//! vopr [--seed N] [--count N] [--canary] [--minimize] [--no-serve] [--quiet]
//! ```
//!
//! Runs seeds `N .. N+count` (default seed 0, count 1) with every invariant
//! checker on, printing one line per seed; exits nonzero if any seed
//! produced a violation. `--minimize` shrinks each failing seed's fault
//! schedule to the shortest still-failing prefix before reporting.
//! `--canary` reintroduces the commit-order shuffle bug — a self-test that
//! must *fail*.

use hh_vopr::harness::{self, VoprOptions};

fn main() {
    let mut seed: u64 = 0;
    let mut count: u64 = 1;
    let mut opts = VoprOptions::default();
    let mut do_minimize = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} expects an integer argument")))
        };
        match arg.as_str() {
            "--seed" => seed = num("--seed"),
            "--count" => count = num("--count"),
            "--canary" => opts.canary = true,
            "--minimize" => do_minimize = true,
            "--no-serve" => opts.serve = false,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "vopr: deterministic whole-engine simulation\n\n\
                     usage: vopr [--seed N] [--count N] [--canary] \
                     [--minimize] [--no-serve] [--quiet]\n\n\
                     --seed N      first seed (default 0)\n\
                     --count N     number of consecutive seeds (default 1)\n\
                     --canary      reintroduce the commit-order bug; must fail\n\
                     --minimize    shrink failing fault schedules\n\
                     --no-serve    skip the serve checkpoint scenario\n\
                     --quiet       only print failing seeds"
                );
                return;
            }
            other => die(&format!("unknown argument {other} (try --help)")),
        }
    }

    let mut failures = 0u64;
    for s in seed..seed.saturating_add(count) {
        let report = harness::run_seed(s, &opts);
        let ok = report.violations.is_empty();
        if !ok {
            failures += 1;
        }
        if !ok || !quiet {
            println!(
                "seed {s:>6}  {}  checks={:<3} digest={:016x}  faults={}",
                if ok { "ok  " } else { "FAIL" },
                report.checks,
                report.digest(),
                report.plan,
            );
        }
        if !ok {
            for v in &report.violations {
                println!("             violation: {v}");
            }
            if do_minimize {
                let (len, prefix, violations) = harness::minimize(s, &opts);
                println!("             minimized: {len} fault(s) suffice: {prefix}");
                if let Some(v) = violations.first() {
                    println!("             under prefix: {v}");
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("vopr: {failures} of {count} seed(s) violated an invariant");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("vopr: {msg}");
    std::process::exit(2);
}
