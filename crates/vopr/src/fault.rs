//! The fault vocabulary and the per-seed fault schedule.
//!
//! A [`FaultPlan`] is an ordered list of faults generated from the seed's
//! RNG. Each fault targets one seam the production crates expose for the
//! simulator (see `docs/VOPR.md` for the full map):
//!
//! | fault | seam | expected engine behaviour |
//! |---|---|---|
//! | [`Fault::WorkerDeath`] | `SimDriver::worker_dies` / `inject_worker_panic` | run poisoned, `learn` returns `None` |
//! | [`Fault::CacheEvict`] | `EncodeCache::evict` at a commit boundary | transparent: identical invariant |
//! | [`Fault::SinkDetach`] | `Solver::take_proof_sink` at a budget round | transparent: identical verdict |
//! | [`Fault::CheckpointCrash`] | `ServeState::checkpoint_crash_after` | restart restores the last good state |
//!
//! Commit *reordering* is not listed: it is not a fault but the ambient
//! nondeterminism every run carries (the driver's window picks).
//!
//! The ordered-list representation is what makes `--minimize` trivial: a
//! failing seed is re-run under prefixes of its plan until the shortest
//! still-failing prefix is found.

use crate::rng::SplitMix64;
use std::collections::BTreeSet;
use std::fmt;

/// One injected fault. See the module table for seam and semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker solving job `job` dies (panics) mid-solve.
    WorkerDeath {
        /// Job index (issue order) whose worker dies.
        job: usize,
    },
    /// Evict one RNG-chosen encoding from the shared [`hh_smt::EncodeCache`]
    /// immediately after commit `at_commit` — racing eviction against
    /// sessions that may still replay from the evicted entry.
    CacheEvict {
        /// Commit sequence number at which the eviction fires.
        at_commit: usize,
    },
    /// Detach the DRAT proof sink from the SAT solver once `at_round`
    /// budget rounds have elapsed — mid-stream, between two rounds of an
    /// in-progress incremental solve.
    SinkDetach {
        /// Budget-round count after which the sink is taken.
        at_round: u64,
    },
    /// Kill a serve checkpoint between the tmp-write and the rename of its
    /// `at_write`-th atomic file write.
    CheckpointCrash {
        /// 0-based index of the atomic write that never renames.
        at_write: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::WorkerDeath { job } => write!(f, "worker-death(job={job})"),
            Fault::CacheEvict { at_commit } => write!(f, "cache-evict(commit={at_commit})"),
            Fault::SinkDetach { at_round } => write!(f, "sink-detach(round={at_round})"),
            Fault::CheckpointCrash { at_write } => write!(f, "checkpoint-crash(write={at_write})"),
        }
    }
}

/// The ordered fault schedule of one seed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults in injection order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Draws a plan from the seed's RNG. Every fault kind is exercised
    /// with substantial probability so a ~32-seed CI set covers the whole
    /// vocabulary many times over, but no kind is certain — fault-free
    /// runs keep the checkers honest on the happy path too.
    pub fn generate(rng: &mut SplitMix64) -> FaultPlan {
        let mut faults = Vec::new();
        if rng.chance(1, 3) {
            faults.push(Fault::WorkerDeath {
                job: rng.below(12) as usize,
            });
        }
        for _ in 0..rng.below(3) {
            faults.push(Fault::CacheEvict {
                at_commit: rng.below(10) as usize,
            });
        }
        if rng.chance(1, 2) {
            faults.push(Fault::SinkDetach {
                at_round: 1 + rng.below(4),
            });
        }
        if rng.chance(1, 2) {
            faults.push(Fault::CheckpointCrash {
                at_write: rng.below(6) as usize,
            });
        }
        FaultPlan { faults }
    }

    /// The first `n` faults — the probe `--minimize` re-runs with.
    pub fn prefix(&self, n: usize) -> FaultPlan {
        FaultPlan {
            faults: self.faults[..n.min(self.faults.len())].to_vec(),
        }
    }

    /// The job whose worker dies, if any (first death wins; the engine
    /// stops at the first poisoning anyway).
    pub fn worker_death(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::WorkerDeath { job } => Some(*job),
            _ => None,
        })
    }

    /// Commit sequence numbers at which cache evictions fire.
    pub fn evict_commits(&self) -> BTreeSet<usize> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::CacheEvict { at_commit } => Some(*at_commit),
                _ => None,
            })
            .collect()
    }

    /// Budget round after which the proof sink detaches, if any.
    pub fn sink_detach(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::SinkDetach { at_round } => Some(*at_round),
            _ => None,
        })
    }

    /// Atomic-write index at which the serve checkpoint crashes, if any.
    pub fn checkpoint_crash(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::CheckpointCrash { at_write } => Some(*at_write),
            _ => None,
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fault}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(&mut SplitMix64::new(5));
        let b = FaultPlan::generate(&mut SplitMix64::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn seed_set_covers_the_whole_vocabulary() {
        // The CI smoke job runs seeds 0..32; every fault kind must appear
        // somewhere in that window or the acceptance criterion is void.
        let (mut death, mut evict, mut sink, mut ckpt) = (0, 0, 0, 0);
        for seed in 0..32u64 {
            let plan = FaultPlan::generate(&mut SplitMix64::new(seed).fork(0xFA));
            for f in &plan.faults {
                match f {
                    Fault::WorkerDeath { .. } => death += 1,
                    Fault::CacheEvict { .. } => evict += 1,
                    Fault::SinkDetach { .. } => sink += 1,
                    Fault::CheckpointCrash { .. } => ckpt += 1,
                }
            }
        }
        assert!(
            death > 0 && evict > 0 && sink > 0 && ckpt > 0,
            "seed set misses a fault kind: deaths={death} evicts={evict} \
             sinks={sink} ckpts={ckpt}"
        );
    }

    #[test]
    fn prefixes_shrink_monotonically() {
        let mut rng = SplitMix64::new(3);
        // Draw until we get a non-trivial plan.
        let plan = loop {
            let p = FaultPlan::generate(&mut rng);
            if p.faults.len() >= 2 {
                break p;
            }
        };
        assert_eq!(plan.prefix(0).faults.len(), 0);
        assert_eq!(plan.prefix(1).faults.len(), 1);
        assert_eq!(plan.prefix(plan.faults.len() + 7), plan);
    }
}
