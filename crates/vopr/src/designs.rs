//! Inline scenario designs the simulator drives the engine over.
//!
//! Three tiny netlists chosen to hit the three qualitatively different
//! engine paths: a *wide* design (many independent cones, so the reorder
//! window has real width and eviction races have targets), a *backtrack*
//! design (a mux on a secret, so `P_fail` grows and stale sweeps fire),
//! and a *leak* design (genuinely unprovable, exercising the failure
//! path). All are self-contained — no external design files — so a vopr
//! run is a function of the seed alone.

use hh_netlist::eval::StateValues;
use hh_netlist::miter::Miter;
use hh_netlist::{Bv, Netlist};
use hh_smt::Predicate;
use hhoudini::mine::CoiMiner;

/// One self-contained engine workload: a miter, its positive examples,
/// and the property to learn an invariant for.
#[derive(Debug)]
pub struct Scenario {
    /// Short stable name, used in violation messages and run labels.
    pub name: &'static str,
    /// Whether the engine is expected to prove the property (fault-free).
    pub provable: bool,
    base: Netlist,
    /// The two-copy product the engine runs over.
    pub miter: Miter,
    /// Positive examples for the miner.
    pub examples: Vec<StateValues>,
    prop_state: &'static str,
}

impl Scenario {
    /// The equivalence property over the designated output state.
    pub fn property(&self) -> Predicate {
        let s = self
            .base
            .find_state(self.prop_state)
            .expect("scenario property state exists");
        Predicate::eq(self.miter.left(s), self.miter.right(s))
    }

    /// A fresh candidate miner (miners carry per-run mined state, so every
    /// engine run gets its own).
    pub fn miner(&self) -> CoiMiner {
        CoiMiner::new(&self.miter, &self.examples, None, vec![])
    }

    /// All scenarios, in the fixed order the harness runs them.
    pub fn all() -> Vec<Scenario> {
        vec![wide(5), backtrack(), leak()]
    }
}

/// `t' = r0 & r1 & ... & r{k-1}` over `k` independently held registers:
/// the task DAG fans out one cone per register, giving the reorder window
/// genuine width and the encode cache `k` isomorphic entries to evict.
fn wide(k: usize) -> Scenario {
    let mut n = Netlist::new("vopr-wide");
    let regs: Vec<_> = (0..k)
        .map(|i| n.state(format!("r{i}"), 1, Bv::bit(true)))
        .collect();
    for &r in &regs {
        n.keep_state(r);
    }
    let t = n.state("t", 1, Bv::bit(true));
    let nodes: Vec<_> = regs.iter().map(|&r| n.state_node(r)).collect();
    let conj = n.and_all(&nodes);
    n.set_next(t, conj);
    let miter = Miter::build(&n);
    let examples = vec![StateValues::initial(miter.netlist())];
    Scenario {
        name: "wide",
        provable: true,
        base: n,
        miter,
        examples,
        prop_state: "t",
    }
}

/// `out' = sel ? secret : pub` — the candidate `left(out) == right(out)`
/// first abducts through the secret, fails, and forces a backtrack onto
/// the `sel`/`pub` support. Exercises `P_fail` growth and stale sweeps.
fn backtrack() -> Scenario {
    let mut n = Netlist::new("vopr-backtrack");
    let sel = n.state("sel", 1, Bv::bit(false));
    let secret = n.state("secret", 4, Bv::zero(4));
    let publ = n.state("pub", 4, Bv::zero(4));
    let out = n.state("out", 4, Bv::zero(4));
    n.keep_state(sel);
    n.keep_state(secret);
    n.keep_state(publ);
    let seln = n.state_node(sel);
    let secn = n.state_node(secret);
    let pubn = n.state_node(publ);
    let muxed = n.ite(seln, secn, pubn);
    n.set_next(out, muxed);
    let miter = Miter::build(&n);
    let mut e = StateValues::initial(miter.netlist());
    let sb = n.find_state("secret").expect("secret state");
    e.set(miter.left(sb), Bv::new(4, 3));
    e.set(miter.right(sb), Bv::new(4, 9));
    Scenario {
        name: "backtrack",
        provable: true,
        base: n,
        miter,
        examples: vec![e],
        prop_state: "out",
    }
}

/// `obs' = secret`: a direct leak, unprovable by construction. The engine
/// must report failure (no invariant) without poisoning.
fn leak() -> Scenario {
    let mut n = Netlist::new("vopr-leak");
    let s = n.state("secret", 4, Bv::zero(4));
    let o = n.state("obs", 4, Bv::zero(4));
    let sn = n.state_node(s);
    n.keep_state(s);
    n.set_next(o, sn);
    let miter = Miter::build(&n);
    let mut e = StateValues::initial(miter.netlist());
    let sb = n.find_state("secret").expect("secret state");
    e.set(miter.left(sb), Bv::new(4, 1));
    e.set(miter.right(sb), Bv::new(4, 2));
    Scenario {
        name: "leak",
        provable: false,
        base: n,
        miter,
        examples: vec![e],
        prop_state: "obs",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhoudini::{EngineConfig, ParallelEngine};

    #[test]
    fn provable_flags_match_the_engine() {
        for sc in Scenario::all() {
            let mut engine =
                ParallelEngine::new(sc.miter.netlist(), sc.miner(), EngineConfig::default(), 2);
            let inv = engine.learn(&[sc.property()]);
            assert_eq!(inv.is_some(), sc.provable, "scenario {}", sc.name);
        }
    }
}
