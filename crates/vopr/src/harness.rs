//! The per-seed simulation harness.
//!
//! [`run_seed`] executes one fully deterministic simulation: a fault plan
//! is drawn from the seed, each scenario design is run three times on the
//! engine's virtual backend (an unfaulted serial reference, a faulted
//! reordered run, and a bit-exact replay of the faulted run), the SAT
//! budget/proof-sink scenario and the serve checkpoint-crash scenario are
//! driven from the same seed, and every artifact flows through the
//! [`Registry`] of invariant checkers. The returned [`SeedReport`] is a
//! pure function of `(seed, options)` — byte-for-byte, including the trace
//! event-log hashes.
//!
//! Trace rings are process-global, so the harness serialises trace-using
//! sections behind an internal mutex: concurrent [`run_seed`] calls (e.g.
//! from the test runner) are safe, just not concurrent *inside* the traced
//! sections.

use crate::designs::Scenario;
use crate::fault::FaultPlan;
use crate::invariants::{InvariantConfig, InvariantResult, Registry, RunArtifacts};
use crate::rng::SplitMix64;
use hh_sat::{BudgetProbe, CountingSink, LimitedResult, SolveResult, Solver};
use hh_smt::EncodeCache;
use hh_trace::{EventKind, TraceConfig};
use hhoudini::sim::{SchedEvent, SimDriver};
use hhoudini::{EngineConfig, ParallelEngine};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, PoisonError};

/// Serialises access to the process-global trace rings.
static TRACE_GATE: Mutex<()> = Mutex::new(());

/// Harness options. CI uses the default: every checker on, no canary.
#[derive(Debug, Clone)]
pub struct VoprOptions {
    /// Checker switches.
    pub config: InvariantConfig,
    /// Reintroduce the commit-order shuffle bug ([`ParallelEngine::
    /// enable_commit_shuffle`]); the checkers must then report violations.
    pub canary: bool,
    /// Run the serve checkpoint scenario (one real learn per seed; the
    /// slowest part of a seed — tests that only target the engine loop
    /// turn it off).
    pub serve: bool,
}

impl Default for VoprOptions {
    fn default() -> VoprOptions {
        VoprOptions {
            config: InvariantConfig::default(),
            canary: false,
            serve: true,
        }
    }
}

/// Everything one simulated seed produced.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// The fault schedule injected.
    pub plan: FaultPlan,
    /// Checker violations (empty on a healthy engine).
    pub violations: Vec<String>,
    /// Checker applications performed.
    pub checks: usize,
    /// Per-run trace hashes, `(label, hash)`, in execution order.
    pub scenario_hashes: Vec<(String, u64)>,
}

impl SeedReport {
    /// One digest over the whole seed: chained FNV over the run hashes.
    /// Two bit-identical simulations produce equal digests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (label, hash) in &self.scenario_hashes {
            for &b in label.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            for &b in &hash.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        }
        h
    }
}

// ---------------------------------------------------------------------------
// The seeded driver
// ---------------------------------------------------------------------------

/// The [`SimDriver`] owning all scheduler nondeterminism: window picks come
/// from the seed's RNG, worker deaths and cache evictions from the fault
/// plan. Records the scheduler event log for the checkers.
#[derive(Debug)]
struct VoprDriver {
    rng: SplitMix64,
    death_job: Option<usize>,
    evict_at: BTreeSet<usize>,
    cache: Arc<EncodeCache>,
    events: Vec<SchedEvent>,
}

impl VoprDriver {
    fn new(rng: SplitMix64, plan: &FaultPlan, cache: Arc<EncodeCache>) -> VoprDriver {
        VoprDriver {
            rng,
            death_job: plan.worker_death(),
            evict_at: plan.evict_commits(),
            cache,
            events: Vec::new(),
        }
    }
}

impl SimDriver for VoprDriver {
    fn pick(&mut self, eligible: &[usize]) -> usize {
        self.rng.below(eligible.len() as u64) as usize
    }

    fn worker_dies(&mut self, job: usize) -> bool {
        self.death_job == Some(job)
    }

    fn observe(&mut self, ev: &SchedEvent) {
        self.events.push(*ev);
        if let SchedEvent::Commit { seq, .. } = ev {
            if self.evict_at.contains(seq) {
                // Race an eviction against live sessions: drop one
                // RNG-chosen encoding right at a commit boundary. In-flight
                // replays hold Arc snapshots, so this must be transparent.
                let keys = self.cache.encoding_keys();
                if !keys.is_empty() {
                    let victim = self.rng.below(keys.len() as u64) as usize;
                    self.cache.evict(&keys[victim]);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine scenario execution
// ---------------------------------------------------------------------------

/// Runs one scenario once on the virtual backend and captures everything
/// the checkers need. Caller must hold the trace gate.
fn engine_run(
    sc: &Scenario,
    window: usize,
    driver_rng: SplitMix64,
    plan: &FaultPlan,
    canary: bool,
    label: &str,
) -> RunArtifacts {
    hh_trace::init(TraceConfig::on());
    let _ = hh_trace::drain(); // discard residue from earlier sections

    let cache = Arc::new(EncodeCache::new(sc.miter.netlist()));
    let mut engine = ParallelEngine::new(
        sc.miter.netlist(),
        sc.miner(),
        EngineConfig::default(),
        window,
    );
    engine.set_encode_cache(Arc::clone(&cache));
    if canary {
        engine.enable_commit_shuffle();
    }
    let mut driver = VoprDriver::new(driver_rng, plan, cache);
    let invariant = engine.learn_sim(&[sc.property()], &mut driver).map(|inv| {
        let mut preds: Vec<String> = inv
            .preds()
            .iter()
            .map(|p| p.to_wire(sc.miter.netlist()))
            .collect();
        preds.sort();
        preds
    });
    let solutions = engine
        .solutions()
        .into_iter()
        .map(|(t, prems)| {
            (
                t.to_wire(sc.miter.netlist()),
                prems
                    .iter()
                    .map(|p| p.to_wire(sc.miter.netlist()))
                    .collect(),
            )
        })
        .collect();

    hh_trace::flush();
    let trace = hh_trace::drain();
    hh_trace::init(TraceConfig::Off);

    let spans = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }))
        .map(|e| (e.tid, e.ts_us, e.end_us()))
        .collect();
    RunArtifacts {
        label: label.to_string(),
        invariant,
        solutions,
        stats: engine.stats().clone(),
        trace_hash: trace.event_log_hash(),
        counters: trace.counter_totals(),
        spans,
        events: driver.events,
    }
}

// ---------------------------------------------------------------------------
// SAT scenario: budget rounds + proof-sink detach
// ---------------------------------------------------------------------------

/// Observation-only round recorder attached through the hh-sat
/// [`BudgetProbe`] seam.
#[derive(Debug, Default)]
struct RoundRecorder {
    rounds: u64,
}

impl BudgetProbe for RoundRecorder {
    fn on_round(&mut self, _round: u64) {
        self.rounds += 1;
    }
}

/// Drives one deterministic random 3-CNF through two solvers: a reference
/// solved in one call, and a faulted solver solved in RNG-sized budget
/// slices with a DRAT sink attached — detached mid-stream when the plan
/// says so. The verdicts must agree and the budget probe must have seen
/// every round.
fn sat_scenario(rng: &mut SplitMix64, plan: &FaultPlan, registry: &mut Registry) {
    let nvars = 16 + rng.below(8) as usize;
    let nclauses = nvars * 4 + rng.below(nvars as u64) as usize;
    let clauses: Vec<[(usize, bool); 3]> = (0..nclauses)
        .map(|_| [(); 3].map(|()| (rng.below(nvars as u64) as usize, rng.chance(1, 2))))
        .collect();
    let build = |s: &mut Solver| {
        let vars: Vec<_> = (0..nvars).map(|_| s.new_var()).collect();
        for c in &clauses {
            let lits: Vec<_> = c.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
            s.add_clause(&lits);
        }
    };

    let mut reference = Solver::new();
    build(&mut reference);
    let want = reference.solve();

    let mut faulted = Solver::new();
    build(&mut faulted);
    faulted.set_proof_sink(Box::new(CountingSink::default()));
    faulted.set_budget_probe(Box::new(RoundRecorder::default()));
    let detach_at = plan.sink_detach();
    let mut detached = false;
    let mut rounds_run: u64 = 0;
    let verdict = loop {
        // Small RNG-sized slices force several budget-round boundaries —
        // the seam the sink detach races against. Escalate after a while
        // so a hard instance still terminates.
        let budget = if rounds_run > 64 {
            u64::MAX
        } else {
            8 + rng.below(32)
        };
        match faulted.solve_limited(&[], budget) {
            LimitedResult::Sat => break SolveResult::Sat,
            LimitedResult::Unsat => break SolveResult::Unsat,
            LimitedResult::Unknown => {
                rounds_run += 1;
                if let Some(at) = detach_at {
                    if !detached && rounds_run >= at {
                        // Mid-stream detach: learnt clauses already went to
                        // the sink; the rest of the solve streams nowhere.
                        let _ = faulted.take_proof_sink();
                        detached = true;
                    }
                }
            }
        }
    };

    let verdicts = if verdict == want {
        InvariantResult::Ok
    } else {
        InvariantResult::Violation(format!(
            "budget-sliced solve with sink fault returned {verdict:?}, \
             reference returned {want:?}"
        ))
    };
    registry.record_external("sat", "verdict-stability", verdicts);

    let probe = faulted
        .take_budget_probe()
        .expect("probe attached above and never detached");
    // The probe outlives the sink detach; downcast-free check via Debug is
    // brittle, so RoundRecorder counts are recovered through its Debug
    // output only in error messages — the invariant itself compares the
    // solver's own round counter with what the probe observed.
    let seen = format!("{probe:?}");
    let solver_rounds = faulted.stats().budget_rounds;
    let agree = seen == format!("RoundRecorder {{ rounds: {solver_rounds} }}");
    registry.record_external(
        "sat",
        "budget-round-agreement",
        if agree {
            InvariantResult::Ok
        } else {
            InvariantResult::Violation(format!(
                "probe saw {seen}, solver counted {solver_rounds} rounds"
            ))
        },
    );
}

// ---------------------------------------------------------------------------
// Serve scenario: checkpoint crash between tmp-write and rename
// ---------------------------------------------------------------------------

/// Minimal btor2 design for the serve scenario: held secrets the
/// observables never read, so every safe set proves quickly.
const SERVE_TOY: &str = "\
1 sort bitvec 8
2 sort bitvec 32
3 input 2 instr
4 state 1 sec1
5 state 1 sec2
6 state 1 sec3
7 state 1 sec4
8 state 1 a
9 state 1 b
10 state 1 obs_a
11 state 1 obs_b
12 zero 1
13 one 1
14 init 1 4 12
15 init 1 5 12
16 init 1 6 12
17 init 1 7 12
18 init 1 8 12
19 init 1 9 12
20 init 1 10 12
21 init 1 11 12
22 next 1 4 4
23 next 1 5 5
24 next 1 6 6
25 next 1 7 7
26 add 1 8 13
27 next 1 8 26
28 xor 1 9 13
29 next 1 9 28
30 next 1 10 8
31 next 1 11 9
";

/// Learns a design in a `ServeState`, checkpoints, crashes a re-checkpoint
/// mid-write where the plan says so, then boots a fresh state from disk:
/// the restored state must answer bit-identically and warm (zero solving),
/// and no `.tmp` debris may survive the sweep.
fn serve_scenario(seed: u64, plan: &FaultPlan, registry: &mut Registry) {
    use hh_serve::json::Json;
    use hh_serve::state::{resolve_safe_set, DesignSpec, JobKey, RunOptions, ServeState};

    let dir = std::env::temp_dir().join(format!("hh-vopr-serve-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec_json = Json::obj(vec![
        ("name", Json::Str("vopr-toy".to_string())),
        ("btor2", Json::Str(SERVE_TOY.to_string())),
        ("instr_input", Json::Str("instr".to_string())),
        (
            "observables",
            Json::Arr(vec![
                Json::Str("obs_a".to_string()),
                Json::Str("obs_b".to_string()),
            ]),
        ),
        (
            "secret_regs",
            Json::Arr(
                ["sec1", "sec2", "sec3", "sec4"]
                    .iter()
                    .map(|s| Json::Str(s.to_string()))
                    .collect(),
            ),
        ),
        ("xlen", Json::Int(8)),
        ("max_latency", Json::Int(2)),
    ]);
    let spec = || DesignSpec::from_json(&spec_json).expect("valid inline spec");
    let key = JobKey {
        safe: resolve_safe_set(&Json::Str("alu".to_string())).expect("alu shorthand"),
        pairs_per_instr: 1,
        seed: 0,
        impl_predicates: false,
    };
    let opts = RunOptions {
        threads: 1,
        certify: false,
        require_baseline: false,
    };

    let mut state = ServeState::new(Some(dir.clone()));
    let pre = state
        .learn(spec(), key.clone(), opts)
        .expect("toy learn succeeds");
    state.checkpoint().expect("clean checkpoint");
    if let Some(at_write) = plan.checkpoint_crash() {
        let crashed = state.checkpoint_crash_after(at_write);
        if crashed.is_ok() {
            registry.record_external(
                "serve",
                "checkpoint-crash",
                InvariantResult::Violation(format!(
                    "injected crash at write {at_write} did not surface"
                )),
            );
        }
    }
    drop(state);

    let mut restored = ServeState::new(Some(dir.clone()));
    let (_, _warnings) = restored.restore();
    let post = restored
        .learn(spec(), key, opts)
        .expect("restored learn succeeds");
    let identical = post.invariant == pre.invariant && post.result == pre.result;
    registry.record_external(
        "serve",
        "restore-answers-identically",
        if identical {
            InvariantResult::Ok
        } else {
            InvariantResult::Violation(format!(
                "restored answer differs: {:?} vs pre-crash {:?}",
                post.result, pre.result
            ))
        },
    );
    registry.record_external(
        "serve",
        "restore-is-warm",
        if post.counters.smt_queries == 0 {
            InvariantResult::Ok
        } else {
            InvariantResult::Violation(format!(
                "restored state re-solved {} queries",
                post.counters.smt_queries
            ))
        },
    );
    let debris = walk_tmp(&dir);
    registry.record_external(
        "serve",
        "debris-swept",
        if debris.is_empty() {
            InvariantResult::Ok
        } else {
            InvariantResult::Violation(format!("{} .tmp file(s) survived restore", debris.len()))
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn walk_tmp(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "tmp") {
                found.push(p);
            }
        }
    }
    found
}

// ---------------------------------------------------------------------------
// The per-seed entry points
// ---------------------------------------------------------------------------

/// Simulates one seed with its generated fault plan. See the module docs.
pub fn run_seed(seed: u64, opts: &VoprOptions) -> SeedReport {
    run_seed_with_plan(seed, opts, None)
}

/// Like [`run_seed`], but with an explicit fault plan (the `--minimize`
/// probe). The plan override replaces the generated plan without shifting
/// any other RNG stream, so the schedule stays comparable.
pub fn run_seed_with_plan(
    seed: u64,
    opts: &VoprOptions,
    plan_override: Option<&FaultPlan>,
) -> SeedReport {
    let _gate = TRACE_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let mut root = SplitMix64::new(seed);
    // The plan draws from its own fork so an override never perturbs the
    // scenario streams below.
    let generated = FaultPlan::generate(&mut root.fork(0xFA));
    let plan = plan_override.cloned().unwrap_or(generated);

    let mut registry = Registry::new(opts.config);
    let mut scenario_hashes = Vec::new();

    for (i, sc) in Scenario::all().into_iter().enumerate() {
        let mut srng = root.fork(1 + i as u64);
        let window = 2 + srng.below(3) as usize;
        let driver_seed = srng.next_u64();

        // Unfaulted serial reference: window 1 replays the serial schedule.
        let reference = engine_run(
            &sc,
            1,
            SplitMix64::new(driver_seed),
            &FaultPlan::default(),
            false,
            "reference",
        );
        // Faulted, reordered run — and a bit-exact replay of it.
        let faulted = engine_run(
            &sc,
            window,
            SplitMix64::new(driver_seed),
            &plan,
            opts.canary,
            "faulted",
        );
        let replay = engine_run(
            &sc,
            window,
            SplitMix64::new(driver_seed),
            &plan,
            opts.canary,
            "replay",
        );

        registry.record_run(sc.name, &reference);
        registry.record_run(sc.name, &faulted);
        registry.record_pair(sc.name, &reference, &faulted);
        registry.record_replay(sc.name, &faulted, &replay);

        scenario_hashes.push((format!("{}/reference", sc.name), reference.trace_hash));
        scenario_hashes.push((format!("{}/faulted@w{window}", sc.name), faulted.trace_hash));
    }

    sat_scenario(&mut root.fork(0x5A7), &plan, &mut registry);
    if opts.serve {
        serve_scenario(seed, &plan, &mut registry);
    }

    SeedReport {
        seed,
        plan,
        violations: registry.violations,
        checks: registry.checks,
        scenario_hashes,
    }
}

/// Runs one unfaulted engine scenario at an explicit reorder window and
/// returns the run's artifacts. This is the fixed-thread-count probe the
/// replay-determinism tests drive directly: same `(scenario, window,
/// seed)` must be bit-identical, and the learned invariant must not depend
/// on `window` at all.
pub fn probe(scenario: usize, window: usize, seed: u64) -> RunArtifacts {
    let _gate = TRACE_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let sc = &Scenario::all()[scenario];
    engine_run(
        sc,
        window,
        SplitMix64::new(seed),
        &FaultPlan::default(),
        false,
        "probe",
    )
}

/// Bisects the fault schedule of a failing seed to the shortest prefix
/// that still produces a violation. Returns `(prefix_len, plan_prefix,
/// violations_under_prefix)`. A zero-length result means the failure does
/// not need any injected fault (schedule-only — or a canary).
pub fn minimize(seed: u64, opts: &VoprOptions) -> (usize, FaultPlan, Vec<String>) {
    let full = run_seed(seed, opts);
    let plan = full.plan.clone();
    let mut best_len = plan.faults.len();
    let mut best_violations = full.violations;
    // Plans are tiny (≤ ~8 faults); a linear scan from the empty prefix
    // finds the true minimum, not just a local one.
    for len in 0..plan.faults.len() {
        let probe = run_seed_with_plan(seed, opts, Some(&plan.prefix(len)));
        if !probe.violations.is_empty() {
            best_len = len;
            best_violations = probe.violations;
            break;
        }
    }
    (best_len, plan.prefix(best_len), best_violations)
}
