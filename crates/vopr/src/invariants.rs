//! The always-on engine-invariant registry.
//!
//! Modeled on Kimberlite's VOPR checker anatomy: each invariant is a small
//! checker with `record_*` entry points returning an [`InvariantResult`];
//! the [`Registry`] owns one of each, feeds them the run artifacts, and
//! accumulates violations with enough context to reproduce (`scenario`,
//! checker name, message). [`InvariantConfig`] lets a debugging session
//! switch individual checkers off; everything defaults to on, and CI runs
//! with everything on.
//!
//! Checkers come in three shapes:
//!
//! * **event checkers** replay the scheduler event log of one run
//!   (commit order, issue/commit balance);
//! * **run checkers** look at one run's artifacts (trace/Stats agreement,
//!   span laminarity, death surfacing);
//! * **pair checkers** compare two runs (fault transparency against the
//!   unfaulted reference, bit-exact replay equality, Stats additivity).

use hhoudini::sim::SchedEvent;
use hhoudini::Stats;
use std::collections::BTreeMap;

/// Outcome of one checker application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantResult {
    /// The invariant held.
    Ok,
    /// The invariant was violated; the message states what and where.
    Violation(String),
}

/// Per-checker enable switches. All on by default; CI never turns any off.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// Commits must be the issue-order projection: commit *i* commits job *i*.
    pub commit_order: bool,
    /// Issue/commit balance and a drained `sched.inflight` counter.
    pub inflight_balance: bool,
    /// Trace counter totals agree with the `Stats` the engine reports.
    pub trace_agreement: bool,
    /// Spans on each thread are laminar (disjoint or nested, never crossing).
    pub laminarity: bool,
    /// `Stats::merge` adds counters (maxing only the documented gauges).
    pub stats_additivity: bool,
    /// Non-poisoning faults leave invariant and solution table bit-identical.
    pub fault_transparency: bool,
    /// A worker death is surfaced (poisoned, no invariant), never absorbed.
    pub death_surfacing: bool,
    /// Same seed, same faults ⇒ bit-identical run (event-log hash equality).
    pub replay_determinism: bool,
}

impl Default for InvariantConfig {
    fn default() -> InvariantConfig {
        InvariantConfig {
            commit_order: true,
            inflight_balance: true,
            trace_agreement: true,
            laminarity: true,
            stats_additivity: true,
            fault_transparency: true,
            death_surfacing: true,
            replay_determinism: true,
        }
    }
}

/// Everything one engine run leaves behind, in comparison-friendly form.
/// Predicates are wire-serialized so equality is bit-exact and printable.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// Display label, e.g. `"wide/faulted"`.
    pub label: String,
    /// The learned invariant (sorted wire form), `None` on failure.
    pub invariant: Option<Vec<String>>,
    /// The memo table as sorted `(target, premises)` wire pairs.
    pub solutions: Vec<(String, Vec<String>)>,
    /// Engine telemetry.
    pub stats: Stats,
    /// Timing-insensitive trace digest ([`hh_trace::Trace::event_log_hash`]).
    pub trace_hash: u64,
    /// Trace counter totals by name.
    pub counters: BTreeMap<&'static str, i64>,
    /// Per-thread span intervals `(tid, start_us, end_us)`.
    pub spans: Vec<(u64, u64, u64)>,
    /// The scheduler event log the driver observed.
    pub events: Vec<SchedEvent>,
}

impl RunArtifacts {
    /// Worker deaths the driver injected and observed.
    pub fn deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SchedEvent::WorkerDeath { .. }))
            .count()
    }

    fn issues(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SchedEvent::Issue { .. }))
            .count()
    }

    fn commits(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SchedEvent::Commit { .. }))
            .count()
    }
}

// ---------------------------------------------------------------------------
// Event checkers
// ---------------------------------------------------------------------------

/// Commit order == issue-order projection. Jobs are issued with ascending
/// indices, and the reorder buffer must commit them in exactly that order:
/// the *i*-th commit carries `seq == i` and `job == i`. This is the
/// determinism keystone — every scheduler decision is a pure function of
/// the commit count only if the commit sequence itself is schedule-free.
#[derive(Debug, Default)]
pub struct CommitOrderChecker {
    committed: usize,
}

impl CommitOrderChecker {
    /// Feeds one scheduler event.
    pub fn record_event(&mut self, ev: &SchedEvent) -> InvariantResult {
        if let SchedEvent::Commit { seq, job } = ev {
            let want = self.committed;
            self.committed += 1;
            if *seq != want || *job != want {
                return InvariantResult::Violation(format!(
                    "commit #{want} carried seq={seq} job={job}; commits must \
                     be the issue-order projection"
                ));
            }
        }
        InvariantResult::Ok
    }
}

// ---------------------------------------------------------------------------
// Run checkers
// ---------------------------------------------------------------------------

/// Issue/commit balance: an unpoisoned run commits every issued job and
/// drains the `sched.inflight` gauge to zero; a poisoned run's residue
/// must equal exactly the jobs issued but never committed.
pub fn check_inflight_balance(run: &RunArtifacts) -> InvariantResult {
    let issues = run.issues();
    let commits = run.commits();
    let residue = *run.counters.get("sched.inflight").unwrap_or(&0);
    if residue != (issues - commits) as i64 {
        return InvariantResult::Violation(format!(
            "sched.inflight residue {residue} != issued({issues}) - \
             committed({commits})"
        ));
    }
    if !run.stats.poisoned && issues != commits {
        return InvariantResult::Violation(format!(
            "unpoisoned run left {issues} issues vs {commits} commits"
        ));
    }
    InvariantResult::Ok
}

/// Trace counters and `Stats` are two recordings of the same run; the
/// totals must agree wherever both exist. (`smt.cache.*` totals come from
/// the shared cache's own counters, so they agree even on poisoned runs
/// where uncommitted solves never reach `Stats` — `engine.query` is
/// recorded at commit, so it agrees unconditionally too.)
pub fn check_trace_agreement(run: &RunArtifacts) -> InvariantResult {
    let pairs: [(&str, u64); 3] = [
        ("engine.query", run.stats.smt_queries as u64),
        ("smt.cache.hit", run.stats.encode_cache_hits),
        ("smt.cache.miss", run.stats.encode_cache_misses),
    ];
    for (name, stat) in pairs {
        let traced = *run.counters.get(name).unwrap_or(&0);
        if traced != stat as i64 {
            return InvariantResult::Violation(format!(
                "trace total {name}={traced} disagrees with Stats value {stat}"
            ));
        }
    }
    InvariantResult::Ok
}

/// Span laminarity: on each thread, spans nest or are disjoint — a span
/// that *crosses* another (starts inside it, ends outside) means the
/// guard-based instrumentation itself is broken.
pub fn check_laminarity(run: &RunArtifacts) -> InvariantResult {
    let mut by_tid: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for &(tid, start, end) in &run.spans {
        by_tid.entry(tid).or_default().push((start, end));
    }
    for (tid, mut spans) in by_tid {
        // Outer spans first at equal start, then a containment stack.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (start, end) in spans {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_start, top_end)) = stack.last() {
                if end > top_end {
                    return InvariantResult::Violation(format!(
                        "span [{start},{end}]us on tid {tid} crosses enclosing \
                         span [{top_start},{top_end}]us"
                    ));
                }
            }
            stack.push((start, end));
        }
    }
    InvariantResult::Ok
}

/// A worker death must poison the run and suppress the invariant; absent a
/// death, the run must not be poisoned. Catches both an absorbed death
/// (the pre-fix hang, or worse, a fabricated result) and a spurious one.
pub fn check_death_surfacing(run: &RunArtifacts) -> InvariantResult {
    let deaths = run.deaths();
    if deaths > 0 {
        if !run.stats.poisoned {
            return InvariantResult::Violation(format!(
                "{deaths} worker death(s) observed but Stats::poisoned unset"
            ));
        }
        if run.invariant.is_some() {
            return InvariantResult::Violation(
                "poisoned run reported a learned invariant".to_string(),
            );
        }
    } else if run.stats.poisoned {
        return InvariantResult::Violation(
            "run poisoned with no injected worker death".to_string(),
        );
    }
    InvariantResult::Ok
}

// ---------------------------------------------------------------------------
// Pair checkers
// ---------------------------------------------------------------------------

/// `sat.arena_bytes` and `sat.watch_bytes` are gauges (merged by max);
/// every other projected counter is a sum.
const MERGE_MAX_GAUGES: [&str; 2] = ["sat.arena_bytes", "sat.watch_bytes"];

/// `Stats::merge` must be additive on counters (gauges max), and poisoning
/// must be sticky across merges — an aggregated report must never launder
/// a poisoned run into a clean total.
pub fn check_stats_additivity(a: &Stats, b: &Stats) -> InvariantResult {
    let mut merged = a.clone();
    merged.merge(b);
    let (ca, cb, cm) = (a.counters(), b.counters(), merged.counters());
    for ((name, va), ((_, vb), (_, vm))) in ca.iter().zip(cb.iter().zip(cm.iter())) {
        let want = if MERGE_MAX_GAUGES.contains(name) {
            (*va).max(*vb)
        } else {
            va + vb
        };
        if *vm != want {
            return InvariantResult::Violation(format!(
                "merge broke {name}: {va} ⊕ {vb} gave {vm}, expected {want}"
            ));
        }
    }
    if merged.poisoned != (a.poisoned || b.poisoned) {
        return InvariantResult::Violation("merge dropped the poisoned flag".to_string());
    }
    InvariantResult::Ok
}

/// Whenever a faulted run reports success, its learned invariant and full
/// solution table must be bit-identical to the unfaulted reference —
/// reorderings and cache evictions may only change timing, never results.
/// (Poisoned runs report no result and are judged by
/// [`check_death_surfacing`] instead.)
pub fn check_fault_transparency(
    reference: &RunArtifacts,
    faulted: &RunArtifacts,
) -> InvariantResult {
    if faulted.stats.poisoned {
        return InvariantResult::Ok;
    }
    if faulted.invariant != reference.invariant {
        return InvariantResult::Violation(format!(
            "invariant differs from unfaulted reference: {:?} vs {:?}",
            faulted.invariant, reference.invariant
        ));
    }
    if faulted.solutions != reference.solutions {
        return InvariantResult::Violation(
            "solution table differs from unfaulted reference".to_string(),
        );
    }
    InvariantResult::Ok
}

/// Two runs of the same seed must be bit-identical: same event-log hash,
/// same scheduler event sequence, same counters, same result. This is the
/// reproducibility contract `--seed` advertises.
pub fn check_replay(first: &RunArtifacts, second: &RunArtifacts) -> InvariantResult {
    if first.trace_hash != second.trace_hash {
        return InvariantResult::Violation(format!(
            "event-log hash diverged across replays: {:016x} vs {:016x}",
            first.trace_hash, second.trace_hash
        ));
    }
    if first.events != second.events {
        return InvariantResult::Violation("scheduler event log diverged across replays".into());
    }
    if first.counters != second.counters {
        return InvariantResult::Violation("trace counter totals diverged across replays".into());
    }
    if first.invariant != second.invariant || first.solutions != second.solutions {
        return InvariantResult::Violation("learned result diverged across replays".into());
    }
    InvariantResult::Ok
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Owns every checker, routes run artifacts through them, and accumulates
/// violations. One registry lives for one seed.
#[derive(Debug)]
pub struct Registry {
    config: InvariantConfig,
    /// Human-readable violations: `scenario: checker: message`.
    pub violations: Vec<String>,
    /// Total checker applications (for "did anything actually run" smoke).
    pub checks: usize,
}

impl Registry {
    /// A registry with the given switches (CI uses `Default`: all on).
    pub fn new(config: InvariantConfig) -> Registry {
        Registry {
            config,
            violations: Vec::new(),
            checks: 0,
        }
    }

    fn apply(&mut self, scenario: &str, checker: &str, result: InvariantResult) {
        self.checks += 1;
        if let InvariantResult::Violation(msg) = result {
            self.violations
                .push(format!("{scenario}: {checker}: {msg}"));
        }
    }

    /// Runs every single-run checker over one run's artifacts.
    pub fn record_run(&mut self, scenario: &str, run: &RunArtifacts) {
        let label = format!("{scenario}/{}", run.label);
        if self.config.commit_order {
            let mut checker = CommitOrderChecker::default();
            for ev in &run.events {
                let r = checker.record_event(ev);
                if !matches!(r, InvariantResult::Ok) {
                    self.apply(&label, "commit-order", r);
                    break; // one violation per run is enough context
                }
            }
            self.checks += 1;
        }
        if self.config.inflight_balance {
            self.apply(&label, "inflight-balance", check_inflight_balance(run));
        }
        if self.config.trace_agreement {
            self.apply(&label, "trace-agreement", check_trace_agreement(run));
        }
        if self.config.laminarity {
            self.apply(&label, "laminarity", check_laminarity(run));
        }
        if self.config.death_surfacing {
            self.apply(&label, "death-surfacing", check_death_surfacing(run));
        }
    }

    /// Runs the pair checkers over (unfaulted reference, faulted run).
    pub fn record_pair(
        &mut self,
        scenario: &str,
        reference: &RunArtifacts,
        faulted: &RunArtifacts,
    ) {
        if self.config.fault_transparency {
            self.apply(
                scenario,
                "fault-transparency",
                check_fault_transparency(reference, faulted),
            );
        }
        if self.config.stats_additivity {
            self.apply(
                scenario,
                "stats-additivity",
                check_stats_additivity(&reference.stats, &faulted.stats),
            );
        }
    }

    /// Runs the replay checker over two executions of the same seed.
    pub fn record_replay(&mut self, scenario: &str, first: &RunArtifacts, second: &RunArtifacts) {
        if self.config.replay_determinism {
            self.apply(scenario, "replay-determinism", check_replay(first, second));
        }
    }

    /// Records a violation discovered outside the checker structs (the
    /// serve and SAT scenarios produce domain-specific messages).
    pub fn record_external(&mut self, scenario: &str, checker: &str, result: InvariantResult) {
        self.apply(scenario, checker, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_order_checker_accepts_in_order_and_rejects_shuffle() {
        let mut c = CommitOrderChecker::default();
        for i in 0..4 {
            assert_eq!(
                c.record_event(&SchedEvent::Commit { seq: i, job: i }),
                InvariantResult::Ok
            );
        }
        let mut c = CommitOrderChecker::default();
        assert_eq!(
            c.record_event(&SchedEvent::Commit { seq: 0, job: 0 }),
            InvariantResult::Ok
        );
        assert!(matches!(
            c.record_event(&SchedEvent::Commit { seq: 1, job: 2 }),
            InvariantResult::Violation(_)
        ));
    }

    #[test]
    fn laminarity_rejects_crossing_spans() {
        let ok = RunArtifacts {
            label: "t".into(),
            invariant: None,
            solutions: vec![],
            stats: Stats::default(),
            trace_hash: 0,
            counters: BTreeMap::new(),
            spans: vec![(1, 0, 10), (1, 2, 5), (1, 6, 9), (1, 12, 20)],
            events: vec![],
        };
        assert_eq!(check_laminarity(&ok), InvariantResult::Ok);
        let crossing = RunArtifacts {
            spans: vec![(1, 0, 10), (1, 5, 15)],
            ..ok
        };
        assert!(matches!(
            check_laminarity(&crossing),
            InvariantResult::Violation(_)
        ));
    }

    #[test]
    fn stats_additivity_holds_for_engine_stats() {
        let a = Stats {
            smt_queries: 3,
            sat_arena_bytes: 100,
            ..Stats::default()
        };
        let b = Stats {
            smt_queries: 4,
            sat_arena_bytes: 60,
            poisoned: true,
            ..Stats::default()
        };
        assert_eq!(check_stats_additivity(&a, &b), InvariantResult::Ok);
    }
}
