//! The simulator's single source of randomness.
//!
//! Every nondeterministic choice in a vopr run — completion interleaving,
//! reorder-window picks, fault placement, eviction victims, SAT budget
//! slices — is drawn from one [`SplitMix64`] stream seeded by `--seed`.
//! Forked sub-streams ([`SplitMix64::fork`]) keep scenarios independent:
//! adding a draw to one scenario does not shift the schedule of the next.

/// Sebastiano Vigna's SplitMix64: a tiny, full-period, splittable PRNG.
/// Exactly reproducible from its seed on every platform — the property the
/// whole simulator rests on.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator whose entire output stream is a function of `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`). The modulo bias is
    /// irrelevant here: draws pick among at most a few dozen alternatives.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// An independent sub-stream. Forking consumes one draw from `self`,
    /// and distinct `stream` tags give unrelated sequences, so consumers
    /// of sibling forks cannot perturb each other.
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(GOLDEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference values of the published SplitMix64 algorithm for
        // seed 0 — guards against silent edits to the mixing constants.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn forks_are_independent() {
        let mut root = SplitMix64::new(7);
        let mut a = root.fork(1);
        let a_seq: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();

        // Re-derive the same fork, but this time burn draws on a sibling
        // first: the sibling must not shift `a`'s stream.
        let mut root2 = SplitMix64::new(7);
        let mut a2 = root2.fork(1);
        let mut b = root2.fork(2);
        let _ = b.next_u64();
        let a2_seq: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(a_seq, a2_seq);
    }
}
