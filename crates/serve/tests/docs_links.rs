//! Documentation link lint: every relative markdown link in `README.md`
//! and `docs/*.md` must resolve to a file in the repository. External
//! (`http…`) links and intra-page `#anchors` are skipped — this is a
//! drift check for the doc set, not a crawler.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/serve -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels below the repo root")
        .to_path_buf()
}

/// Extracts `(target)` of every inline markdown link `[text](target)` in
/// `text`. Good enough for this doc set: no nested brackets, no reference
/// links, code spans containing `](` do not occur.
fn link_targets(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(rel_end) = text[start..].find(')') {
                out.push(text[start..start + rel_end].to_string());
                i = start + rel_end;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn relative_doc_links_resolve() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    entries.sort();
    files.extend(entries);
    assert!(files.len() > 4, "doc set went missing: {files:?}");

    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        let base = file.parent().unwrap();
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.starts_with("mailto:")
            {
                continue;
            }
            let path = target.split('#').next().unwrap();
            if path.is_empty() {
                continue;
            }
            if !base.join(path).exists() {
                broken.push(format!("{}: ({target})", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

/// The three serve documents exist and cross-reference each other — the
/// protocol spec, the production guide, and the monitoring runbook are one
/// set and must not drift apart.
#[test]
fn serve_doc_set_is_complete() {
    let docs = repo_root().join("docs");
    for name in ["SERVE.md", "PRODUCTION.md", "MONITORING.md"] {
        let text = std::fs::read_to_string(docs.join(name))
            .unwrap_or_else(|e| panic!("docs/{name} missing: {e}"));
        for other in ["SERVE.md", "PRODUCTION.md", "MONITORING.md"] {
            if other != name {
                assert!(
                    text.contains(other),
                    "docs/{name} does not reference {other}"
                );
            }
        }
    }
}

/// Every `serve.*` trace record the daemon emits is documented in both
/// TRACE_SCHEMA.md (the stable vocabulary) and MONITORING.md (the
/// runbook), and conversely everything documented is actually emitted —
/// the sources are scanned for the literal counter!/event! names.
#[test]
fn serve_trace_vocabulary_matches_docs() {
    let root = repo_root();
    let mut emitted = std::collections::BTreeSet::new();
    for src in ["server.rs", "state.rs"] {
        let text = std::fs::read_to_string(root.join("crates/serve/src").join(src)).unwrap();
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("\"serve.") {
            let tail = &rest[pos + 1..];
            let end = tail.find('"').unwrap();
            emitted.insert(tail[..end].to_string());
            rest = &tail[end..];
        }
    }
    assert!(
        emitted.len() >= 12,
        "serve trace vocabulary shrank: {emitted:?}"
    );

    let schema = std::fs::read_to_string(root.join("docs/TRACE_SCHEMA.md")).unwrap();
    let runbook = std::fs::read_to_string(root.join("docs/MONITORING.md")).unwrap();
    for name in &emitted {
        assert!(schema.contains(name), "TRACE_SCHEMA.md missing {name}");
        assert!(runbook.contains(name), "MONITORING.md missing {name}");
    }
    // And the docs do not promise records the code never emits.
    for doc_text in [&schema, &runbook] {
        let mut rest = doc_text.as_str();
        while let Some(pos) = rest.find("`serve.") {
            let tail = &rest[pos + 1..];
            // The record name is the maximal identifier-ish prefix; prose
            // like `serve.*` or `serve.restored_jobs == 0` carries extra
            // characters past it.
            let end = tail
                .find(|c: char| {
                    !c.is_ascii_lowercase() && !c.is_ascii_digit() && c != '_' && c != '.'
                })
                .unwrap_or(tail.len());
            let name = tail[..end].trim_end_matches('.');
            if name != "serve" {
                assert!(
                    emitted.contains(name),
                    "docs document {name} but the daemon never emits it"
                );
            }
            rest = &tail[end.max(1)..];
        }
    }
}
