//! End-to-end tests of the serve daemon: warm hits, bit-identity with cold
//! batch runs, checkpoint/restart, signature-directed delta invalidation,
//! and the protocol error vocabulary. Every op and every documented
//! `serve.*` counter is exercised here.

use hh_serve::client::{Client, ClientError};
use hh_serve::json::Json;
use hh_serve::proto::{read_frame, write_frame, PROTOCOL_VERSION};
use hh_serve::server::{Bind, Server, ServerConfig};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct Daemon {
    addr: String,
    handle: Option<std::thread::JoinHandle<std::io::Result<hh_serve::server::ServerCounters>>>,
}

impl Daemon {
    /// Boots an in-process daemon on an ephemeral TCP port.
    fn start(state_dir: Option<PathBuf>) -> Daemon {
        let config = ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            state_dir,
            threads: 2,
            checkpoint_every: 0,
        };
        let (server, _notes) = Server::bind(config).expect("bind");
        let addr = server.local_addr().expect("tcp addr").to_string();
        let handle = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect_tcp(&self.addr).expect("connect")
    }

    /// Shuts the daemon down and joins the accept loop.
    fn stop(mut self) {
        self.client().shutdown().expect("shutdown");
        self.handle
            .take()
            .unwrap()
            .join()
            .expect("join")
            .expect("run");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hh-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn i64_field(resp: &Json, key: &str) -> i64 {
    resp.get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("missing i64 field {key} in {resp}"))
}

fn str_arr(resp: &Json, key: &str) -> Vec<String> {
    resp.get(key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("missing array field {key}"))
        .iter()
        .map(|j| j.as_str().expect("string entry").to_string())
        .collect()
}

// ---------------------------------------------------------------------------
// A toy design with independent observable cones. `obs_a <= a`, `obs_b <= b`,
// a secret register the observables never read, and a 32-bit instruction
// input the datapath ignores — so every safe set proves, fast.
// ---------------------------------------------------------------------------

const TOY_V1: &str = "\
1 sort bitvec 8
2 sort bitvec 32
3 input 2 instr
4 state 1 sec1
5 state 1 sec2
6 state 1 sec3
7 state 1 sec4
8 state 1 a
9 state 1 b
10 state 1 obs_a
11 state 1 obs_b
12 zero 1
13 one 1
14 init 1 4 12
15 init 1 5 12
16 init 1 6 12
17 init 1 7 12
18 init 1 8 12
19 init 1 9 12
20 init 1 10 12
21 init 1 11 12
22 next 1 4 4
23 next 1 5 5
24 next 1 6 6
25 next 1 7 7
26 add 1 8 13
27 next 1 8 26
28 xor 1 9 13
29 next 1 9 28
30 next 1 10 8
31 next 1 11 9
";

/// V2 changes only `b`'s update function (`xor` → `and`). The cones of the
/// secrets, `a`, `obs_a` and `obs_b` are untouched, so only memo entries
/// whose target reads `next(b)` may be invalidated.
const TOY_V2: &str = "\
1 sort bitvec 8
2 sort bitvec 32
3 input 2 instr
4 state 1 sec1
5 state 1 sec2
6 state 1 sec3
7 state 1 sec4
8 state 1 a
9 state 1 b
10 state 1 obs_a
11 state 1 obs_b
12 zero 1
13 one 1
14 init 1 4 12
15 init 1 5 12
16 init 1 6 12
17 init 1 7 12
18 init 1 8 12
19 init 1 9 12
20 init 1 10 12
21 init 1 11 12
22 next 1 4 4
23 next 1 5 5
24 next 1 6 6
25 next 1 7 7
26 add 1 8 13
27 next 1 8 26
28 and 1 9 13
29 next 1 9 28
30 next 1 10 8
31 next 1 11 9
";

fn toy_design_field(name: &str, src: &str) -> (&'static str, Json) {
    (
        "design",
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("btor2", Json::Str(src.to_string())),
            ("instr_input", Json::Str("instr".to_string())),
            (
                "observables",
                Json::Arr(vec![
                    Json::Str("obs_a".to_string()),
                    Json::Str("obs_b".to_string()),
                ]),
            ),
            (
                "secret_regs",
                Json::Arr(
                    ["sec1", "sec2", "sec3", "sec4"]
                        .iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                ),
            ),
            ("xlen", Json::Int(8)),
            ("max_latency", Json::Int(2)),
        ]),
    )
}

fn toy_learn_fields(name: &str, src: &str) -> Vec<(&'static str, Json)> {
    vec![
        toy_design_field(name, src),
        ("safe", Json::Str("alu".to_string())),
        ("pairs", Json::Int(1)),
        ("threads", Json::Int(2)),
    ]
}

// ---------------------------------------------------------------------------
// Warm hits
// ---------------------------------------------------------------------------

/// The acceptance property: the second identical request is answered
/// entirely from warm state — memo seeded, zero SMT queries, zero fresh
/// cone blasts — and the invariant is bit-identical. A memo flush then
/// proves the encode cache itself replays (hits > 0, misses == 0).
#[test]
fn second_identical_request_is_a_warm_hit() {
    let daemon = Daemon::start(None);
    let mut c = daemon.client();

    let cold = c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    assert_eq!(cold.get("result").unwrap().as_str(), Some("proved"));
    assert!(i64_field(&cold, "smt_queries") > 0, "cold run must solve");
    assert!(
        i64_field(&cold, "cache_misses") > 0,
        "cold run blasts cones"
    );
    assert_eq!(cold.get("warm_hit").unwrap(), &Json::Bool(false));
    let cold_inv = str_arr(&cold, "invariant");
    assert!(!cold_inv.is_empty());

    let warm = c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    assert_eq!(warm.get("result").unwrap().as_str(), Some("proved"));
    assert_eq!(warm.get("warm_hit").unwrap(), &Json::Bool(true));
    assert!(i64_field(&warm, "memo_seeded") > 0);
    assert_eq!(
        i64_field(&warm, "memo_seeded"),
        i64_field(&warm, "memo_reused"),
        "every seed must survive an identical request"
    );
    assert_eq!(i64_field(&warm, "smt_queries"), 0, "zero fresh solving");
    assert_eq!(i64_field(&warm, "cache_misses"), 0, "zero fresh blasting");
    assert_eq!(i64_field(&warm, "relearned"), 0);
    assert_eq!(str_arr(&warm, "invariant"), cold_inv, "bit-identical");

    // Drop the memo but keep the encode cache: the re-learn must re-solve
    // (queries > 0) yet serve every base encoding by replay.
    let flushed = c.flush("memo", Some("toy")).unwrap();
    assert_eq!(i64_field(&flushed, "jobs_cleared"), 1);
    assert!(i64_field(&flushed, "entries_dropped") > 0);
    let replay = c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    assert!(i64_field(&replay, "smt_queries") > 0, "memo was flushed");
    assert!(i64_field(&replay, "cache_hits") > 0, "cache must replay");
    assert_eq!(
        i64_field(&replay, "cache_misses"),
        0,
        "no cone shape is new to the resident cache"
    );
    assert_eq!(str_arr(&replay, "invariant"), cold_inv, "replay-identical");

    // Counters surface through status too.
    let status = c.status().unwrap();
    assert_eq!(i64_field(&status, "warm_hits"), 1);
    assert_eq!(i64_field(&status, "learns"), 3);
    daemon.stop();
}

/// Warm-served invariants are bit-identical to a cold batch run of the
/// library pipeline, at every thread count.
#[test]
fn warm_answers_match_cold_batch_at_every_thread_count() {
    use hh_isa::{InstrClass, ALL_MNEMONICS};
    use hh_netlist::btor2::parse_btor2;
    use hh_uarch::Design;
    use veloct::{Veloct, VeloctConfig};

    let netlist = parse_btor2(TOY_V1).unwrap();
    let find = |n: &str| netlist.find_state(n).unwrap();
    let design = Design {
        instr_input: "instr".to_string(),
        observable: vec![find("obs_a"), find("obs_b")],
        secret_regs: vec![find("sec1"), find("sec2"), find("sec3"), find("sec4")],
        masking: vec![],
        nregs: 5,
        xlen: 8,
        max_latency: 2,
        example_depth: 8,
        netlist,
    };
    let safe: Vec<_> = ALL_MNEMONICS
        .iter()
        .copied()
        .filter(|m| m.class() == InstrClass::Alu)
        .collect();

    let daemon = Daemon::start(None);
    let mut c = daemon.client();
    c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();

    for threads in [1i64, 2, 4] {
        let mut fields = toy_learn_fields("toy", TOY_V1);
        fields.retain(|(k, _)| *k != "threads");
        fields.push(("threads", Json::Int(threads)));
        let warm = c.request("learn", fields).unwrap();
        assert_eq!(
            warm.get("warm_hit").unwrap(),
            &Json::Bool(true),
            "thread count must not key warm state"
        );

        let veloct = Veloct::with_config(
            &design,
            VeloctConfig {
                threads: threads as usize,
                pairs_per_instr: 1,
                ..VeloctConfig::default()
            },
        );
        // Invariant predicates live over the product (miter) netlist; the
        // wire serialization needs its state names.
        let (miter, _) = veloct.build_miter(&safe);
        let cold = veloct.learn(&safe);
        let inv = cold.invariant.expect("cold learn proves");
        let mut cold_preds: Vec<String> = inv
            .preds()
            .iter()
            .map(|p| p.to_wire(miter.netlist()))
            .collect();
        cold_preds.sort();
        let mut warm_preds = str_arr(&warm, "invariant");
        warm_preds.sort();
        assert_eq!(warm_preds, cold_preds, "warm != cold at threads={threads}");
    }
    daemon.stop();
}

// ---------------------------------------------------------------------------
// Checkpoint / restart
// ---------------------------------------------------------------------------

/// Learn fields for the builtin rocketlite design — the certify leg of the
/// restart test. Certificates reference the design by constructor name, so
/// only builtin designs are certifiable over the wire.
fn rocket_learn_fields() -> Vec<(&'static str, Json)> {
    vec![
        (
            "design",
            Json::obj(vec![
                ("name", Json::Str("rocket".to_string())),
                ("builtin", Json::Str("rocketlite".to_string())),
                ("xlen", Json::Int(16)),
            ]),
        ),
        ("safe", Json::Str("alu".to_string())),
        ("pairs", Json::Int(1)),
        ("threads", Json::Int(2)),
        ("certify", Json::Bool(true)),
    ]
}

/// Kill-and-restart from a checkpoint reproduces the answer with zero
/// solving, and the certificate bundle re-emitted from restored state
/// passes the independent `hh-proof` checker.
#[test]
fn restart_from_checkpoint_reproduces_answers() {
    let dir = temp_dir("restart");

    let daemon = Daemon::start(Some(dir.clone()));
    let mut c = daemon.client();
    // Leg 1: a btor2 design shipped in the frame (warm restore of inlined
    // sources). Not certifiable — the checker cannot re-derive it.
    let toy_fields = toy_learn_fields("toy", TOY_V1);
    let toy_cold = c.request("learn", toy_fields.clone()).unwrap();
    let toy_inv = str_arr(&toy_cold, "invariant");
    let mut bad = toy_learn_fields("toy", TOY_V1);
    bad.push(("certify", Json::Bool(true)));
    expect_server_error(c.request("learn", bad), "bad-request");
    // Leg 2: a builtin design with certification.
    let cold = c.request("learn", rocket_learn_fields()).unwrap();
    let cold_inv = str_arr(&cold, "invariant");
    let cert_path = PathBuf::from(cold.get("certificate").unwrap().as_str().unwrap());
    let report = hh_proof::cert::check_bundle(&cert_path).expect("bundle checks");
    assert!(report.obligations > 0);
    daemon.stop(); // checkpoints on the way down

    // A fresh process (modelled by a fresh server) restores the state dir.
    let daemon2 = Daemon::start(Some(dir.clone()));
    let mut c2 = daemon2.client();
    let status = c2.status().unwrap();
    let designs = status.get("designs").unwrap().as_arr().unwrap();
    assert_eq!(designs.len(), 2, "both designs restored from checkpoint");
    for d in designs {
        assert_eq!(
            d.get("jobs").unwrap().as_arr().unwrap()[0]
                .get("proved")
                .unwrap(),
            &Json::Bool(true)
        );
    }

    let toy_warm = c2.request("learn", toy_fields).unwrap();
    assert_eq!(toy_warm.get("warm_hit").unwrap(), &Json::Bool(true));
    assert_eq!(
        i64_field(&toy_warm, "smt_queries"),
        0,
        "restart keeps warmth"
    );
    assert_eq!(str_arr(&toy_warm, "invariant"), toy_inv);

    let warm = c2.request("learn", rocket_learn_fields()).unwrap();
    assert_eq!(warm.get("warm_hit").unwrap(), &Json::Bool(true));
    assert_eq!(i64_field(&warm, "smt_queries"), 0, "restart keeps warmth");
    assert_eq!(str_arr(&warm, "invariant"), cold_inv);
    // The bundle survives the shutdown checkpoint and was re-emitted from
    // restored solutions; both ways it must satisfy the checker.
    assert!(
        cert_path.join("MANIFEST").exists(),
        "bundle survives restart"
    );
    let cert2 = PathBuf::from(warm.get("certificate").unwrap().as_str().unwrap());
    hh_proof::cert::check_bundle(&cert2).expect("restored bundle checks");
    daemon2.stop();

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every `*.tmp` file under `dir`, recursively.
fn tmp_debris(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "tmp") {
                found.push(p);
            }
        }
    }
    found
}

/// A checkpoint killed between tmp-write and rename leaves a synced `.tmp`
/// sibling and no renamed file. Whichever of the six per-job writes the
/// kill lands on, a restart must sweep the debris and come back warm from
/// the last completed checkpoint, answering identically to pre-crash.
#[test]
fn killed_mid_checkpoint_restarts_warm_from_last_good_state() {
    use hh_serve::state::ServeState;

    let dir = temp_dir("crash");
    let daemon = Daemon::start(Some(dir.clone()));
    let mut c = daemon.client();
    let cold = c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    let inv = str_arr(&cold, "invariant");
    daemon.stop(); // checkpoints on the way down: the last good state

    // Re-run the checkpoint, killing it at each atomic write in turn
    // (VERSION, spec, job meta, solutions, invariant, pools).
    for crash_after in 0..6 {
        let mut state = ServeState::new(Some(dir.clone()));
        let (restored, warnings) = state.restore();
        assert_eq!(restored.jobs, 1, "warm state restores before the crash");
        assert!(warnings.is_empty(), "dir was clean: {warnings:?}");
        let err = state
            .checkpoint_crash_after(crash_after)
            .expect_err("the injected crash must surface");
        assert!(err.to_string().contains("injected checkpoint crash"));
        assert!(
            !tmp_debris(&dir).is_empty(),
            "crash at write {crash_after} leaves tmp debris"
        );

        let mut after = ServeState::new(Some(dir.clone()));
        let (restored, warnings) = after.restore();
        assert_eq!(
            restored.jobs, 1,
            "crash at write {crash_after} must not lose the last good state"
        );
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("removed half-written checkpoint debris")),
            "sweep must report the debris: {warnings:?}"
        );
        assert!(tmp_debris(&dir).is_empty(), "sweep leaves nothing behind");
    }

    // Leave one crash un-swept and boot a real daemon on the debris: the
    // server restore path must clean it and answer warm and identically.
    let mut state = ServeState::new(Some(dir.clone()));
    state.restore();
    state.checkpoint_crash_after(3).expect_err("injected");
    assert!(!tmp_debris(&dir).is_empty());

    let daemon2 = Daemon::start(Some(dir.clone()));
    let mut c2 = daemon2.client();
    let warm = c2
        .request("learn", toy_learn_fields("toy", TOY_V1))
        .unwrap();
    assert_eq!(warm.get("warm_hit").unwrap(), &Json::Bool(true));
    assert_eq!(i64_field(&warm, "smt_queries"), 0, "restart keeps warmth");
    assert_eq!(str_arr(&warm, "invariant"), inv, "identical to pre-crash");
    daemon2.stop();
    assert!(tmp_debris(&dir).is_empty(), "boot swept the debris");

    // Claim-at-boot rejection: a brand-new dir whose very first checkpoint
    // died at the VERSION write holds only `VERSION.tmp`. Boot must remove
    // it — never mistake it for a claim — then claim the dir cleanly.
    let fresh = temp_dir("crash-fresh");
    let state = ServeState::new(Some(fresh.clone()));
    state.checkpoint_crash_after(0).expect_err("injected");
    assert!(fresh.join("VERSION.tmp").exists());
    assert!(!fresh.join("VERSION").exists());
    let mut state2 = ServeState::new(Some(fresh.clone()));
    let (_, w) = state2.restore();
    assert!(
        w.iter()
            .any(|m| m.contains("removed half-written checkpoint debris")),
        "rejection must be reported: {w:?}"
    );
    assert!(fresh.join("VERSION").exists(), "claimed after sweeping");
    assert!(!fresh.join("VERSION.tmp").exists());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}

// ---------------------------------------------------------------------------
// Design deltas
// ---------------------------------------------------------------------------

/// A signature-preserving delta re-learns only the changed cones: the `b`
/// update function changes, so exactly the memo entries reading `next(b)`
/// are invalidated; everything else seeds the re-run.
#[test]
fn delta_relearns_only_changed_cones() {
    let daemon = Daemon::start(None);
    let mut c = daemon.client();

    let v1 = c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    assert_eq!(v1.get("result").unwrap().as_str(), Some("proved"));
    let v1_queries = i64_field(&v1, "smt_queries");

    // `verify` is the incremental-re-verification op: it requires the warm
    // baseline this job now has.
    let v2 = c
        .request("verify", toy_learn_fields("toy", TOY_V2))
        .unwrap();
    assert_eq!(v2.get("result").unwrap().as_str(), Some("proved"));
    let invalidated = i64_field(&v2, "invalidated");
    let seeded = i64_field(&v2, "memo_seeded");
    let reused = i64_field(&v2, "memo_reused");
    assert!(invalidated >= 1, "the changed cone must be invalidated");
    assert!(seeded >= 1, "unchanged cones must carry over");
    assert!(reused >= 1, "carried-over entries must be reused");
    assert_eq!(seeded, reused, "no seed should go stale on this delta");
    let v2_queries = i64_field(&v2, "smt_queries");
    assert!(v2_queries > 0, "the changed cone must be re-learned");
    assert!(
        v2_queries < v1_queries,
        "incremental re-verification must solve less than the cold run \
         ({v2_queries} vs {v1_queries})"
    );

    // Same delta again: now fully warm.
    let again = c
        .request("verify", toy_learn_fields("toy", TOY_V2))
        .unwrap();
    assert_eq!(again.get("warm_hit").unwrap(), &Json::Bool(true));
    assert_eq!(i64_field(&again, "invalidated"), 0);
    daemon.stop();
}

// ---------------------------------------------------------------------------
// Protocol errors
// ---------------------------------------------------------------------------

fn expect_server_error(r: Result<Json, ClientError>, code: &str) {
    match r {
        Err(ClientError::Server(c, _)) => assert_eq!(c, code),
        other => panic!("expected server error {code}, got {other:?}"),
    }
}

/// Every documented error code is producible, and none of them poisons the
/// connection.
#[test]
fn error_vocabulary_round_trips() {
    let daemon = Daemon::start(None);
    let mut c = daemon.client();

    // bad-request: unknown op, malformed design name, bad safe set.
    expect_server_error(c.request("frobnicate", vec![]), "bad-request");
    expect_server_error(
        c.request(
            "learn",
            vec![(
                "design",
                Json::obj(vec![
                    ("name", Json::Str("no/slashes".to_string())),
                    ("builtin", Json::Str("rocketlite".to_string())),
                ]),
            )],
        ),
        "bad-request",
    );
    expect_server_error(
        c.request(
            "learn",
            vec![
                toy_design_field("toy", TOY_V1),
                ("safe", Json::Str("everything".to_string())),
            ],
        ),
        "bad-request",
    );

    // bad-design: unknown builtin, unparsable btor2, missing state.
    expect_server_error(
        c.request(
            "learn",
            vec![(
                "design",
                Json::obj(vec![
                    ("name", Json::Str("d".to_string())),
                    ("builtin", Json::Str("pentium4".to_string())),
                ]),
            )],
        ),
        "bad-design",
    );
    expect_server_error(
        c.request(
            "learn",
            vec![(
                "design",
                Json::obj(vec![
                    ("name", Json::Str("d".to_string())),
                    ("btor2", Json::Str("1 zort bitvec 8".to_string())),
                    ("instr_input", Json::Str("instr".to_string())),
                ]),
            )],
        ),
        "bad-design",
    );

    // unknown-design: verify of a never-registered design name, and flush of
    // a never-seen key.
    expect_server_error(
        c.request("verify", toy_learn_fields("fresh", TOY_V1)),
        "unknown-design",
    );
    expect_server_error(c.flush("memo", Some("never-seen")), "unknown-design");

    // no-baseline: the design is resident, but no learn ever ran for this
    // job key (pairs differs).
    c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    let other_key: Vec<(&str, Json)> = toy_learn_fields("toy", TOY_V1)
        .into_iter()
        .map(|(k, v)| {
            if k == "pairs" {
                (k, Json::Int(2))
            } else {
                (k, v)
            }
        })
        .collect();
    expect_server_error(c.request("verify", other_key), "no-baseline");

    // The connection is still healthy after every error.
    assert!(c.status().is_ok());
    daemon.stop();
}

/// Version and framing errors, spoken raw (the typed client cannot produce
/// them): wrong `v` answers bad-version, a non-JSON body answers bad-json,
/// and both leave the connection usable.
#[test]
fn version_and_framing_errors() {
    let daemon = Daemon::start(None);
    let mut s = TcpStream::connect(&daemon.addr).unwrap();

    // Wrong protocol version.
    let req = Json::obj(vec![
        ("v", Json::Int(PROTOCOL_VERSION + 1)),
        ("id", Json::Int(9)),
        ("op", Json::Str("status".to_string())),
    ]);
    write_frame(&mut s, &req).unwrap();
    let resp = read_frame(&mut s).unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.get("id"), Some(&Json::Int(9)));
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("bad-version")
    );

    // Missing version field.
    let req = Json::obj(vec![
        ("id", Json::Int(10)),
        ("op", Json::Str("status".to_string())),
    ]);
    write_frame(&mut s, &req).unwrap();
    let resp = read_frame(&mut s).unwrap();
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("bad-version")
    );

    // A well-framed garbage body: bad-json, connection survives.
    use std::io::Write as _;
    s.write_all(&3u32.to_be_bytes()).unwrap();
    s.write_all(b"{{{").unwrap();
    s.flush().unwrap();
    let resp = read_frame(&mut s).unwrap();
    assert_eq!(
        resp.get("error").unwrap().get("code").unwrap().as_str(),
        Some("bad-json")
    );
    let req = Json::obj(vec![
        ("v", Json::Int(PROTOCOL_VERSION)),
        ("id", Json::Int(11)),
        ("op", Json::Str("status".to_string())),
    ]);
    write_frame(&mut s, &req).unwrap();
    let resp = read_frame(&mut s).unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    daemon.stop();
}

// ---------------------------------------------------------------------------
// Unix socket transport
// ---------------------------------------------------------------------------

/// The daemon speaks the same protocol over a Unix-domain socket.
#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let sock = std::env::temp_dir().join(format!("hh-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let (server, _) = Server::bind(ServerConfig {
        bind: Bind::Unix(sock.clone()),
        state_dir: None,
        threads: 2,
        checkpoint_every: 0,
    })
    .expect("bind unix");
    let handle = std::thread::spawn(move || server.run());
    let mut c = Client::connect_unix(&sock).expect("connect unix");
    let status = c.status().unwrap();
    assert_eq!(i64_field(&status, "requests"), 1);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    assert!(!sock.exists(), "socket file removed on shutdown");
}

// ---------------------------------------------------------------------------
// Trace counters
// ---------------------------------------------------------------------------

/// Every `serve.*` counter documented in docs/TRACE_SCHEMA.md and mapped in
/// docs/MONITORING.md fires under this one scenario: boot, cold learn, warm
/// learn, delta verify, flush, explicit checkpoint, framing error,
/// shutdown, restore.
#[test]
fn documented_trace_counters_all_fire() {
    hh_trace::init(hh_trace::TraceConfig::on());
    let dir = temp_dir("trace");

    let daemon = Daemon::start(Some(dir.clone()));
    let mut c = daemon.client();
    c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap();
    c.request("learn", toy_learn_fields("toy", TOY_V1)).unwrap(); // warm hit
    c.request("verify", toy_learn_fields("toy", TOY_V2))
        .unwrap(); // delta
    c.flush("memo", None).unwrap();
    c.checkpoint().unwrap();
    let _ = c.request("frobnicate", vec![]); // serve.error
    daemon.stop();

    let daemon2 = Daemon::start(Some(dir.clone())); // serve.restored_jobs
    daemon2.stop();
    // Connection threads harvest their trace rings into the global registry
    // when they exit; close our connection and poll-drain until the rings
    // land (thread exit is asynchronous).
    drop(c);

    let counters = [
        "serve.request",
        "serve.error",
        "serve.seeded",
        "serve.reused",
        "serve.invalidated",
        "serve.relearned",
        "serve.warm_hit",
        "serve.flush",
        "serve.checkpoint",
        "serve.restored_jobs",
    ];
    let want_events = ["serve.boot", "serve.shutdown"];
    let mut totals: std::collections::BTreeMap<&str, i64> = Default::default();
    let mut seen_events: Vec<&str> = Vec::new();
    for _ in 0..100 {
        let trace = hh_trace::drain();
        for (k, v) in trace.counter_totals() {
            *totals.entry(k).or_insert(0) += v;
        }
        seen_events.extend(trace.events.iter().map(|e| e.name));
        if counters.iter().all(|c| totals.contains_key(c))
            && want_events.iter().all(|e| seen_events.contains(e))
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    for counter in counters {
        assert!(
            totals.contains_key(counter),
            "counter {counter} never fired; totals: {totals:?}"
        );
    }
    for event in want_events {
        assert!(seen_events.contains(&event), "event {event} never fired");
    }
    hh_trace::init(hh_trace::TraceConfig::Off);
    let _ = std::fs::remove_dir_all(&dir);
}
