//! The serve wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! This module is the normative implementation of `docs/SERVE.md` §2–§4.
//! A frame is a 4-byte big-endian unsigned length followed by exactly that
//! many bytes of UTF-8 JSON. Requests carry `v` (protocol version), `id`
//! (client-chosen echo token) and `op`; responses echo both and report
//! either `ok:true` with op-specific fields or `ok:false` with a structured
//! error. See [`ErrorCode`] for the closed error vocabulary.

use crate::json::Json;
use std::fmt;
use std::io::{Read, Write};

/// Protocol version spoken by this build. Versioning rule (SERVE.md §4):
/// the major version is bumped on any change that removes or re-types an
/// existing field; additions of optional request fields or new response
/// fields are compatible and do not bump it. A server receiving a frame
/// whose `v` differs from its own MUST answer `bad-version` and leave the
/// connection open.
pub const PROTOCOL_VERSION: i64 = 1;

/// Hard cap on a frame body. Large enough for an inlined btor2 design and
/// a full invariant listing; small enough that a corrupt length prefix
/// cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Closed set of protocol error codes (SERVE.md §3.7). Codes are stable
/// strings: clients may match on them, messages are advisory prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON, or not a JSON object.
    BadJson,
    /// The `v` field is missing or differs from [`PROTOCOL_VERSION`].
    BadVersion,
    /// The request is structurally invalid: unknown `op`, missing or
    /// ill-typed required field.
    BadRequest,
    /// The design specification could not be built (unknown builtin,
    /// btor2 parse failure, missing annotation, unknown state name).
    BadDesign,
    /// The request names a design key the server has never seen.
    UnknownDesign,
    /// `verify` was issued for a job with no prior successful `learn` to
    /// re-verify against.
    NoBaseline,
    /// The server failed internally (e.g. the state directory is not
    /// writable during a checkpoint).
    Internal,
}

impl ErrorCode {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::BadDesign => "bad-design",
            ErrorCode::UnknownDesign => "unknown-design",
            ErrorCode::NoBaseline => "no-baseline",
            ErrorCode::Internal => "internal",
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// An I/O failure mid-frame.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The body is not UTF-8 or not JSON. The payload is a human-readable
    /// description; the connection can keep going (the framing layer is
    /// still synchronized).
    BadJson(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME}"),
            FrameError::BadJson(m) => write!(f, "bad frame payload: {m}"),
        }
    }
}

/// Writes one frame: 4-byte big-endian length, then the serialized JSON.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> std::io::Result<()> {
    let body = payload.to_string();
    let len = body.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one frame. [`FrameError::Eof`] only when the stream ends cleanly
/// *between* frames; a stream ending inside a frame is an I/O error.
pub fn read_frame(r: &mut impl Read) -> Result<Json, FrameError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(FrameError::Eof),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    let text = String::from_utf8(body).map_err(|e| FrameError::BadJson(e.to_string()))?;
    Json::parse(&text).map_err(|e| FrameError::BadJson(e.to_string()))
}

/// Builds a success response envelope: `{v, id, op, ok:true}` plus
/// op-specific `fields`.
pub fn ok_response(id: i64, op: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("v", Json::Int(PROTOCOL_VERSION)),
        ("id", Json::Int(id)),
        ("op", Json::Str(op.to_string())),
        ("ok", Json::Bool(true)),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// Builds an error response envelope:
/// `{v, id, op, ok:false, error:{code, msg}}`.
pub fn err_response(id: i64, op: &str, code: ErrorCode, msg: &str) -> Json {
    Json::obj(vec![
        ("v", Json::Int(PROTOCOL_VERSION)),
        ("id", Json::Int(id)),
        ("op", Json::Str(op.to_string())),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::Str(code.as_str().to_string())),
                ("msg", Json::Str(msg.to_string())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = Json::obj(vec![
            ("op", Json::Str("status".into())),
            ("v", Json::Int(1)),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &Json::Int(7)).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), v);
        assert_eq!(read_frame(&mut r).unwrap(), Json::Int(7));
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        buf.extend_from_slice(b"xxxx");
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_frame_is_io_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Int(1)).unwrap();
        buf.pop(); // cut the body short
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn non_json_body_keeps_framing() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        write_frame(&mut buf, &Json::Bool(true)).unwrap();
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadJson(_))));
        // The next frame is still readable: framing survived the bad body.
        assert_eq!(read_frame(&mut r).unwrap(), Json::Bool(true));
    }

    #[test]
    fn response_envelopes() {
        let ok = ok_response(3, "status", vec![("uptime_ms", Json::Int(5))]);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(ok.get("id"), Some(&Json::Int(3)));
        let err = err_response(4, "learn", ErrorCode::BadDesign, "nope");
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            err.get("error").unwrap().get("code").unwrap().as_str(),
            Some("bad-design")
        );
    }
}
