//! `hh-serve` — a warm, long-running verification daemon for the VeloCT
//! pipeline.
//!
//! Batch `veloct` pays the full cost of every run: netlist build, CNF
//! blasting, invariant learning from nothing. In an interactive hardware
//! flow the same design is verified over and over with small or no changes,
//! so almost all of that work is re-derivable from the previous run. This
//! crate keeps it resident:
//!
//! * **[`server`]** — the daemon. Accepts length-prefixed JSON frames over
//!   TCP or a Unix socket ([`proto`]), keeps per-job [`state`] warm across
//!   requests (encode caches, learnt-clause pools, memoised solutions,
//!   certificates), checkpoints to a state directory and restores on boot.
//! * **[`client`]** — a thin synchronous client used by `veloct connect`
//!   and the integration tests.
//! * **[`cli`]** — the `veloct` binary: `serve`, `connect`, and the
//!   original batch mode.
//! * **[`json`]** — a minimal self-contained JSON value/parser (the wire
//!   format and the persistence format; no external dependencies).
//!
//! Two properties are load-bearing and tested end to end:
//!
//! 1. **Warm answers are bit-identical to cold ones.** A repeat request is
//!    answered from the memo with zero SMT queries, and the invariant
//!    equals what a cold batch run at any thread count produces.
//! 2. **Warmth survives restart and design deltas.** A daemon restarted
//!    from its checkpoint reproduces its answers without re-solving, and a
//!    changed design re-learns only the cones whose renaming-invariant
//!    signatures changed.
//!
//! The protocol and operational story are documented in `docs/SERVE.md`,
//! `docs/PRODUCTION.md` and `docs/MONITORING.md`.

#![deny(missing_docs)]

pub mod cli;
pub mod client;
pub mod json;
pub mod proto;
pub mod server;
pub mod state;
