//! The daemon: accept loop, request dispatch, counters, checkpoint cadence.
//!
//! Each connection gets its own thread, but every request is dispatched
//! under one state lock — the parallel engine already saturates the machine
//! for a single learn, so running two learns concurrently would fight over
//! cores and interleave nondeterministically. Serialized dispatch keeps
//! answers deterministic while letting any number of clients stay
//! connected (an idle connection never blocks another client's request).

use crate::json::Json;
use crate::proto::{
    err_response, ok_response, read_frame, write_frame, ErrorCode, FrameError, PROTOCOL_VERSION,
};
use crate::state::{
    resolve_safe_set, CheckpointSummary, DesignSpec, JobKey, LearnOutcome, LearnResult, RunOptions,
    ServeState,
};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path (Unix targets only).
    Unix(PathBuf),
}

/// Daemon configuration (`veloct serve` flags; see `docs/PRODUCTION.md`).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Persistence root, or `None` for a memory-only daemon.
    pub state_dir: Option<PathBuf>,
    /// Default engine threads for requests that do not specify `threads`
    /// (0 = all available cores).
    pub threads: usize,
    /// Auto-checkpoint after every N successful learn/verify requests
    /// (0 = only on explicit `checkpoint` and on `shutdown`).
    pub checkpoint_every: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:7411".to_string()),
            state_dir: None,
            threads: 0,
            checkpoint_every: 0,
        }
    }
}

/// Request counters mirrored into the `status` response, so operators (and
/// tests) can read them without enabling tracing. Each field has a
/// `serve.*` trace counter twin; `docs/MONITORING.md` maps both to the
/// operational question they answer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerCounters {
    /// Frames dispatched (any op, either outcome).
    pub requests: u64,
    /// Frames answered `ok:false`.
    pub errors: u64,
    /// `learn` requests served.
    pub learns: u64,
    /// `verify` requests served.
    pub verifies: u64,
    /// Learn/verify runs answered entirely from warm state: memo seeded,
    /// zero SMT queries issued.
    pub warm_hits: u64,
    /// Checkpoints written (explicit, cadence-driven, and shutdown).
    pub checkpoints: u64,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

/// Everything the connection threads share, behind one lock.
struct Inner {
    config: ServerConfig,
    state: ServeState,
    counters: ServerCounters,
    started: Instant,
    since_checkpoint: usize,
    shutdown: bool,
    /// Bound TCP address, used to self-connect and wake the accept loop on
    /// shutdown.
    local_addr: Option<std::net::SocketAddr>,
}

/// A warm verification daemon bound to a socket.
pub struct Server {
    listener: Listener,
    inner: Arc<Mutex<Inner>>,
    local_addr: Option<std::net::SocketAddr>,
}

impl Server {
    /// Binds the socket and restores warm state from the state directory
    /// (if any). Returns the server plus restore warnings for logging.
    pub fn bind(config: ServerConfig) -> std::io::Result<(Server, Vec<String>)> {
        let (listener, local_addr) = match &config.bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let a = l.local_addr()?;
                (Listener::Tcp(l), Some(a))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(std::os::unix::net::UnixListener::bind(path)?),
                    None,
                )
            }
            #[cfg(not(unix))]
            Bind::Unix(_) => {
                return Err(std::io::Error::other(
                    "unix sockets are not supported on this target",
                ))
            }
        };
        let mut state = ServeState::new(config.state_dir.clone());
        let (summary, warnings) = state.restore();
        hh_trace::event!("serve", "serve.boot");
        let mut notes = warnings;
        if summary.jobs > 0 {
            notes.push(format!(
                "restored {} design(s), {} job(s), {} memo entr(ies), {} pooled clause(s)",
                summary.designs, summary.jobs, summary.solutions, summary.pool_clauses
            ));
        }
        let inner = Inner {
            config,
            state,
            counters: ServerCounters::default(),
            started: Instant::now(),
            since_checkpoint: 0,
            shutdown: false,
            local_addr,
        };
        Ok((
            Server {
                listener,
                inner: Arc::new(Mutex::new(inner)),
                local_addr,
            },
            notes,
        ))
    }

    /// The bound TCP address (useful after binding to port 0).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.local_addr
    }

    /// Accepts connections until a `shutdown` request arrives, spawning one
    /// thread per connection. The final checkpoint is written by the
    /// `shutdown` handler *before* its response frame, so a client that saw
    /// the acknowledgement can rely on the state directory being current.
    pub fn run(self) -> std::io::Result<ServerCounters> {
        let bind = {
            let inner = self.inner.lock().unwrap();
            inner.config.bind.clone()
        };
        loop {
            match &self.listener {
                Listener::Tcp(l) => {
                    let (stream, _) = l.accept()?;
                    if self.inner.lock().unwrap().shutdown {
                        break;
                    }
                    // Learn responses can lag requests by minutes; never
                    // let the OS batch half-frames.
                    stream.set_nodelay(true).ok();
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || serve_connection(stream, inner));
                }
                #[cfg(unix)]
                Listener::Unix(l) => {
                    let (stream, _) = l.accept()?;
                    if self.inner.lock().unwrap().shutdown {
                        break;
                    }
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || serve_connection(stream, inner));
                }
            }
        }
        if let Bind::Unix(path) = &bind {
            let _ = std::fs::remove_file(path);
        }
        let counters = self.inner.lock().unwrap().counters;
        Ok(counters)
    }
}

/// Serves one connection to completion. Requests are handled one frame at a
/// time; the state lock is taken per request, not per connection.
fn serve_connection(mut stream: impl Read + Write, inner: Arc<Mutex<Inner>>) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Eof) => return,
            Err(FrameError::BadJson(msg)) => {
                // Framing survived: answer and keep the connection.
                {
                    let mut g = inner.lock().unwrap();
                    g.counters.requests += 1;
                    g.counters.errors += 1;
                }
                hh_trace::counter!("serve", "serve.error", 1);
                let resp = err_response(0, "", ErrorCode::BadJson, &msg);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
            Err(e) => {
                // TooLarge / mid-frame I/O: the stream position is unknown,
                // so the connection cannot continue.
                inner.lock().unwrap().counters.errors += 1;
                hh_trace::counter!("serve", "serve.error", 1);
                let resp = err_response(0, "", ErrorCode::BadJson, &e.to_string());
                let _ = write_frame(&mut stream, &resp);
                return;
            }
        };
        let (resp, shutdown) = {
            let mut g = inner.lock().unwrap();
            g.counters.requests += 1;
            hh_trace::counter!("serve", "serve.request", 1);
            let (resp, shutdown) = g.dispatch(&frame);
            if resp.get("ok") == Some(&Json::Bool(false)) {
                g.counters.errors += 1;
                hh_trace::counter!("serve", "serve.error", 1);
            }
            if shutdown {
                g.shutdown = true;
            }
            (resp, shutdown)
        };
        if write_frame(&mut stream, &resp).is_err() {
            return;
        }
        if shutdown {
            wake_acceptor(&inner);
            return;
        }
    }
}

/// Wakes the blocking accept loop after shutdown by making (and dropping) a
/// throwaway connection to our own listener.
fn wake_acceptor(inner: &Arc<Mutex<Inner>>) {
    let (addr, bind) = {
        let g = inner.lock().unwrap();
        (g.local_addr, g.config.bind.clone())
    };
    match bind {
        Bind::Tcp(_) => {
            if let Some(a) = addr {
                let _ = std::net::TcpStream::connect(a);
            }
        }
        #[cfg(unix)]
        Bind::Unix(path) => {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        #[cfg(not(unix))]
        Bind::Unix(_) => {}
    }
}

impl Inner {
    /// Dispatches one request frame; returns the response and whether the
    /// daemon should shut down.
    fn dispatch(&mut self, frame: &Json) -> (Json, bool) {
        let id = frame.get("id").and_then(Json::as_i64).unwrap_or(0);
        let op = frame
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        match frame.get("v").and_then(Json::as_i64) {
            Some(v) if v == PROTOCOL_VERSION => {}
            got => {
                let msg = match got {
                    Some(v) => format!("protocol version {v} != {PROTOCOL_VERSION}"),
                    None => "missing protocol version field v".to_string(),
                };
                return (err_response(id, &op, ErrorCode::BadVersion, &msg), false);
            }
        }
        match op.as_str() {
            "learn" | "verify" => {
                let verify = op == "verify";
                let resp = match self.handle_learn(frame, verify) {
                    Ok(fields) => {
                        if verify {
                            self.counters.verifies += 1;
                        } else {
                            self.counters.learns += 1;
                        }
                        self.since_checkpoint += 1;
                        if self.config.checkpoint_every > 0
                            && self.since_checkpoint >= self.config.checkpoint_every
                        {
                            let _ = self.checkpoint_now();
                        }
                        ok_response(id, &op, fields)
                    }
                    Err((code, msg)) => err_response(id, &op, code, &msg),
                };
                (resp, false)
            }
            "status" => (ok_response(id, &op, self.status_fields()), false),
            "flush" => {
                let scope = frame.get("scope").and_then(Json::as_str).unwrap_or("memo");
                let design = frame.get("design").and_then(Json::as_str);
                let resp = match self.state.flush(scope, design) {
                    Ok((designs, jobs, entries)) => {
                        hh_trace::counter!("serve", "serve.flush", 1);
                        ok_response(
                            id,
                            &op,
                            vec![
                                ("designs_dropped", Json::Int(designs as i64)),
                                ("jobs_cleared", Json::Int(jobs as i64)),
                                ("entries_dropped", Json::Int(entries as i64)),
                            ],
                        )
                    }
                    Err((code, msg)) => err_response(id, &op, code, &msg),
                };
                (resp, false)
            }
            "checkpoint" => {
                let resp = match self.checkpoint_now() {
                    Ok(s) => ok_response(
                        id,
                        &op,
                        vec![
                            ("designs", Json::Int(s.designs as i64)),
                            ("jobs", Json::Int(s.jobs as i64)),
                            ("solutions", Json::Int(s.solutions as i64)),
                            ("pool_clauses", Json::Int(s.pool_clauses as i64)),
                        ],
                    ),
                    Err(e) => err_response(id, &op, ErrorCode::Internal, &e.to_string()),
                };
                (resp, false)
            }
            "shutdown" => {
                // Checkpoint before acknowledging: a client that saw the ok
                // may immediately restart the daemon from the state dir.
                let resp = match self.checkpoint_now() {
                    Ok(_) => {
                        hh_trace::event!("serve", "serve.shutdown");
                        ok_response(id, &op, vec![])
                    }
                    Err(e) => err_response(id, &op, ErrorCode::Internal, &e.to_string()),
                };
                (resp, true)
            }
            other => (
                err_response(
                    id,
                    other,
                    ErrorCode::BadRequest,
                    &format!("unknown op {other:?}"),
                ),
                false,
            ),
        }
    }

    fn handle_learn(
        &mut self,
        frame: &Json,
        verify: bool,
    ) -> Result<Vec<(&'static str, Json)>, (ErrorCode, String)> {
        let design_json = frame
            .get("design")
            .ok_or((ErrorCode::BadRequest, "design is required".to_string()))?;
        let spec = DesignSpec::from_json(design_json)?;
        let safe_json = frame
            .get("safe")
            .cloned()
            .unwrap_or(Json::Str("default".to_string()));
        let safe = resolve_safe_set(&safe_json)?;
        let key = JobKey {
            safe,
            pairs_per_instr: frame.get("pairs").and_then(Json::as_u64).unwrap_or(2) as usize,
            seed: frame
                .get("seed")
                .and_then(Json::as_i64)
                .map(|s| s as u64)
                .unwrap_or(0xD1CE),
            impl_predicates: frame
                .get("impl_predicates")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        };
        let default_threads = if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let opts = RunOptions {
            threads: frame
                .get("threads")
                .and_then(Json::as_u64)
                .map(|t| t as usize)
                .unwrap_or(default_threads),
            certify: frame
                .get("certify")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            require_baseline: verify,
        };
        let started = Instant::now();
        let outcome = self.state.learn(spec, key, opts)?;
        if outcome.counters.memo_seeded > 0 && outcome.counters.smt_queries == 0 {
            self.counters.warm_hits += 1;
        }
        Ok(outcome_fields(
            &outcome,
            started.elapsed().as_millis() as i64,
        ))
    }

    fn checkpoint_now(&mut self) -> std::io::Result<CheckpointSummary> {
        let s = self.state.checkpoint()?;
        self.counters.checkpoints += 1;
        self.since_checkpoint = 0;
        Ok(s)
    }

    fn status_fields(&self) -> Vec<(&'static str, Json)> {
        let c = &self.counters;
        let mut designs = Vec::new();
        let mut names: Vec<&String> = self.state.designs.keys().collect();
        names.sort();
        for name in names {
            let entry = &self.state.designs[name];
            let mut jobs = Vec::new();
            let mut ids: Vec<&String> = entry.jobs.keys().collect();
            ids.sort();
            for id in ids {
                let job = &entry.jobs[id];
                let cache = job.cache.stats();
                jobs.push(Json::obj(vec![
                    ("id", Json::Str(id.clone())),
                    ("key", Json::Str(job.key.key_string())),
                    ("proved", Json::Bool(job.invariant.is_some())),
                    ("solutions", Json::Int(job.solutions.len() as i64)),
                    ("num_examples", Json::Int(job.num_examples as i64)),
                    ("cache_hits", Json::Int(cache.hits as i64)),
                    ("cache_misses", Json::Int(cache.misses as i64)),
                    ("pool_exported", Json::Int(cache.exported_clauses as i64)),
                    ("pool_imported", Json::Int(cache.imported_clauses as i64)),
                ]));
            }
            designs.push(Json::obj(vec![
                ("name", Json::Str(name.to_string())),
                (
                    "fingerprint",
                    Json::Str(format!("{:016x}", entry.fingerprint)),
                ),
                ("jobs", Json::Arr(jobs)),
            ]));
        }
        vec![
            (
                "uptime_ms",
                Json::Int(self.started.elapsed().as_millis() as i64),
            ),
            ("requests", Json::Int(c.requests as i64)),
            ("errors", Json::Int(c.errors as i64)),
            ("learns", Json::Int(c.learns as i64)),
            ("verifies", Json::Int(c.verifies as i64)),
            ("warm_hits", Json::Int(c.warm_hits as i64)),
            ("checkpoints", Json::Int(c.checkpoints as i64)),
            (
                "state_dir",
                match &self.config.state_dir {
                    Some(d) => Json::Str(d.display().to_string()),
                    None => Json::Null,
                },
            ),
            ("designs", Json::Arr(designs)),
        ]
    }
}

/// Serializes a [`LearnOutcome`] into response fields (SERVE.md §3.3).
fn outcome_fields(outcome: &LearnOutcome, elapsed_ms: i64) -> Vec<(&'static str, Json)> {
    let c = &outcome.counters;
    let (result, diverged_at) = match outcome.result {
        LearnResult::Proved => ("proved", Json::Null),
        LearnResult::Unprovable => ("unprovable", Json::Null),
        LearnResult::Diverged(cycle) => ("diverged", Json::Int(cycle as i64)),
    };
    vec![
        ("result", Json::Str(result.to_string())),
        ("diverged_at", diverged_at),
        (
            "invariant",
            Json::Arr(outcome.invariant.iter().cloned().map(Json::Str).collect()),
        ),
        ("invariant_size", Json::Int(outcome.invariant.len() as i64)),
        ("num_examples", Json::Int(outcome.num_examples as i64)),
        ("memo_seeded", Json::Int(c.memo_seeded as i64)),
        ("memo_reused", Json::Int(c.memo_reused as i64)),
        ("invalidated", Json::Int(c.invalidated as i64)),
        ("relearned", Json::Int(c.relearned as i64)),
        ("smt_queries", Json::Int(c.smt_queries as i64)),
        ("cache_hits", Json::Int(c.cache_hits as i64)),
        ("cache_misses", Json::Int(c.cache_misses as i64)),
        ("pool_exported", Json::Int(c.pool_exported as i64)),
        ("pool_imported", Json::Int(c.pool_imported as i64)),
        (
            "warm_hit",
            Json::Bool(c.memo_seeded > 0 && c.smt_queries == 0),
        ),
        (
            "certificate",
            match &outcome.certificate {
                Some(p) => Json::Str(p.display().to_string()),
                None => Json::Null,
            },
        ),
        ("elapsed_ms", Json::Int(elapsed_ms)),
    ]
}
