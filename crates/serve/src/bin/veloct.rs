//! The `veloct` binary: batch pipeline plus `serve` / `connect` daemon
//! subcommands. All logic lives in [`hh_serve::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    hh_serve::cli::main()
}
