//! A thin synchronous client for the serve protocol.
//!
//! The client owns request-id allocation and the version field; callers
//! build op-specific payloads as [`Json`] objects and get the raw response
//! back. Typed convenience wrappers cover the common ops.

use crate::json::Json;
use crate::proto::{read_frame, write_frame, FrameError, PROTOCOL_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected protocol client.
pub struct Client {
    stream: Stream,
    next_id: i64,
}

/// A client-side failure: transport errors or a server `ok:false` reply.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failed.
    Io(std::io::Error),
    /// The server closed the connection or sent an unreadable frame.
    Frame(String),
    /// The server answered `ok:false`; `(code, msg)` from the error object.
    Server(String, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(code, msg) => write!(f, "server error [{code}]: {msg}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        Ok(Client {
            stream: Stream::Tcp(s),
            next_id: 1,
        })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        Ok(Client {
            stream: Stream::Unix(std::os::unix::net::UnixStream::connect(path)?),
            next_id: 1,
        })
    }

    /// Connects to `spec`: a filesystem path (Unix socket) if it contains a
    /// `/`, otherwise a TCP `host:port`.
    pub fn connect(spec: &str) -> Result<Client, ClientError> {
        #[cfg(unix)]
        if spec.contains('/') {
            return Client::connect_unix(Path::new(spec));
        }
        Client::connect_tcp(spec)
    }

    /// Sends `op` with the given payload fields and returns the verified
    /// response: version and echoed id are checked, `ok:false` becomes
    /// [`ClientError::Server`].
    pub fn request(&mut self, op: &str, fields: Vec<(&str, Json)>) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut pairs = vec![
            ("v", Json::Int(PROTOCOL_VERSION)),
            ("id", Json::Int(id)),
            ("op", Json::Str(op.to_string())),
        ];
        pairs.extend(fields);
        write_frame(&mut self.stream, &Json::obj(pairs))?;
        let resp = match read_frame(&mut self.stream) {
            Ok(r) => r,
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Frame(e.to_string())),
        };
        if resp.get("id").and_then(Json::as_i64) != Some(id) {
            return Err(ClientError::Frame(format!(
                "response id does not echo request id {id}"
            )));
        }
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(resp);
        }
        let (code, msg) = match resp.get("error") {
            Some(e) => (
                e.get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("internal")
                    .to_string(),
                e.get("msg")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            ),
            None => (
                "internal".to_string(),
                "malformed error response".to_string(),
            ),
        };
        Err(ClientError::Server(code, msg))
    }

    /// `status` round trip.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.request("status", vec![])
    }

    /// `flush` round trip.
    pub fn flush(&mut self, scope: &str, design: Option<&str>) -> Result<Json, ClientError> {
        let mut fields = vec![("scope", Json::Str(scope.to_string()))];
        if let Some(d) = design {
            fields.push(("design", Json::Str(d.to_string())));
        }
        self.request("flush", fields)
    }

    /// `checkpoint` round trip.
    pub fn checkpoint(&mut self) -> Result<Json, ClientError> {
        self.request("checkpoint", vec![])
    }

    /// `shutdown` round trip. The server checkpoints and stops accepting
    /// after acknowledging.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request("shutdown", vec![])
    }
}
