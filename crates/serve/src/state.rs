//! Resident warm state: designs, per-job memo tables, encode caches, and
//! their persistence to a state directory.
//!
//! The unit of warmth is a **job**: one (design, safe set, example
//! configuration) triple. Each job keeps resident, across requests:
//!
//! * the product **miter** (deterministically rebuilt by every engine run,
//!   so resident predicates resolve against identical state numbering),
//! * a shared [`EncodeCache`] — recorded Tseitin replay streams plus
//!   per-signature learnt-clause pools,
//! * the **solution table** (`target ⊢ premises` memo entries) of the last
//!   successful learn, and the learned invariant.
//!
//! On a **design delta** (same design key, different content) the job is
//! migrated: every memoised target's renaming-invariant cone signature
//! (`hh_netlist::signature`) is recomputed against the new netlist and
//! compared with its value on the old one. Entries whose signature is
//! unchanged blast to a byte-identical obligation CNF, so their relative-
//! inductivity result carries over; the rest are invalidated and re-learned.
//! Learnt-clause pools are keyed by the same signatures, so they transplant
//! wholesale — clauses for surviving cone shapes stay usable, orphaned keys
//! are simply never looked up again.
//!
//! Persistence (SERVE.md §5) stores the *reconstructible* core — design
//! specs, solution tables as [`Predicate::to_wire`] text, invariants, and
//! pool dumps. Encoding replay streams are deliberately not persisted: a
//! restored memo answers repeat requests with zero solver work anyway, and
//! cone shapes re-record on first miss.

use crate::json::Json;
use crate::proto::ErrorCode;
use hh_isa::{InstrClass, Mnemonic, ALL_MNEMONICS};
use hh_netlist::btor2::{parse_btor2, to_btor2};
use hh_netlist::miter::Miter;
use hh_proof::cert::fnv1a;
use hh_sat::Lit;
use hh_smt::{EncodeCache, EncodeScope, Predicate};
use hh_uarch::boomlite::{boom_lite_scaled, BoomVariant};
use hh_uarch::rocketlite::rocket_lite;
use hh_uarch::{Design, MaskRule};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use veloct::{Veloct, VeloctConfig, WarmContext};

/// A request-level failure: protocol error code plus a message.
pub type ServeError = (ErrorCode, String);

fn bad_design(msg: impl Into<String>) -> ServeError {
    (ErrorCode::BadDesign, msg.into())
}

fn bad_request(msg: impl Into<String>) -> ServeError {
    (ErrorCode::BadRequest, msg.into())
}

/// Looks up a mnemonic by its assembly name.
pub fn mnemonic_by_name(name: &str) -> Option<Mnemonic> {
    ALL_MNEMONICS.iter().copied().find(|m| m.name() == name)
}

/// Resolves a protocol safe-set specification: the literal shorthands
/// `"alu"` (ALU-class instructions) and `"default"` (every non-control
/// candidate), or an explicit array of mnemonic names.
pub fn resolve_safe_set(spec: &Json) -> Result<Vec<Mnemonic>, ServeError> {
    let mut out = match spec {
        Json::Str(s) if s == "alu" => ALL_MNEMONICS
            .iter()
            .copied()
            .filter(|m| m.class() == InstrClass::Alu)
            .collect(),
        Json::Str(s) if s == "default" => veloct::default_candidates(),
        Json::Str(s) => return Err(bad_request(format!("unknown safe-set shorthand {s:?}"))),
        Json::Arr(items) => {
            let mut v = Vec::with_capacity(items.len());
            for it in items {
                let name = it
                    .as_str()
                    .ok_or_else(|| bad_request("safe-set entries must be strings"))?;
                v.push(
                    mnemonic_by_name(name)
                        .ok_or_else(|| bad_request(format!("unknown mnemonic {name:?}")))?,
                );
            }
            v
        }
        _ => {
            return Err(bad_request(
                "safe must be \"alu\", \"default\", or an array",
            ))
        }
    };
    out.sort_by_key(|m| m.name());
    out.dedup();
    if out.is_empty() {
        return Err(bad_request("safe set must not be empty"));
    }
    Ok(out)
}

/// How a design is specified on the wire and in `spec.json` — either a
/// builtin core from `hh-uarch` or an inlined btor2 source plus the
/// annotations the batch CLI takes as flags.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSource {
    /// A builtin core constructor.
    Builtin {
        /// `rocketlite`, `boom-small`, `boom-medium`, `boom-large`, `boom-mega`.
        kind: String,
        /// Datapath width.
        xlen: u32,
        /// Structure scale factor (BOOM variants only; 1 = paper size).
        scale: usize,
    },
    /// An inlined btor2 design with verification annotations.
    Btor2 {
        /// The btor2 source text.
        src: String,
        /// Name of the 32-bit instruction input.
        instr_input: String,
        /// Observable state names.
        observables: Vec<String>,
        /// Secret register state names.
        secret_regs: Vec<String>,
        /// Masking rules as `(valid, fields)` name tuples.
        masks: Vec<(String, Vec<String>)>,
        /// Datapath width.
        xlen: u32,
        /// Worst-case single-instruction latency.
        max_latency: usize,
        /// Example-program depth override (`0` = derive from latency).
        example_depth: usize,
    },
}

/// A named design specification.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// The client-chosen design key (directory-safe, validated).
    pub name: String,
    /// How to build it.
    pub source: DesignSource,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

impl DesignSpec {
    /// Parses the protocol `design` object (SERVE.md §3.2).
    pub fn from_json(j: &Json) -> Result<DesignSpec, ServeError> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("design.name is required"))?
            .to_string();
        if !valid_name(&name) {
            return Err(bad_request(
                "design.name must be 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        let source = if let Some(builtin) = j.get("builtin").and_then(Json::as_str) {
            DesignSource::Builtin {
                kind: builtin.to_string(),
                xlen: j.get("xlen").and_then(Json::as_u64).unwrap_or(16) as u32,
                scale: j.get("scale").and_then(Json::as_u64).unwrap_or(1) as usize,
            }
        } else if let Some(src) = j.get("btor2").and_then(Json::as_str) {
            let strings = |key: &str| -> Result<Vec<String>, ServeError> {
                match j.get(key) {
                    None => Ok(Vec::new()),
                    Some(Json::Arr(a)) => a
                        .iter()
                        .map(|e| {
                            e.as_str().map(str::to_string).ok_or_else(|| {
                                bad_request(format!("{key} entries must be strings"))
                            })
                        })
                        .collect(),
                    Some(_) => Err(bad_request(format!("{key} must be an array"))),
                }
            };
            let mut masks = Vec::new();
            if let Some(Json::Arr(entries)) = j.get("masks") {
                for e in entries {
                    let pair = e
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| bad_request("masks entries must be [valid, [fields]]"))?;
                    let valid = pair[0]
                        .as_str()
                        .ok_or_else(|| bad_request("mask valid must be a string"))?;
                    let fields: Result<Vec<String>, ServeError> = pair[1]
                        .as_arr()
                        .ok_or_else(|| bad_request("mask fields must be an array"))?
                        .iter()
                        .map(|f| {
                            f.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| bad_request("mask fields must be strings"))
                        })
                        .collect();
                    masks.push((valid.to_string(), fields?));
                }
            }
            DesignSource::Btor2 {
                src: src.to_string(),
                instr_input: j
                    .get("instr_input")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad_request("design.instr_input is required for btor2"))?
                    .to_string(),
                observables: strings("observables")?,
                secret_regs: strings("secret_regs")?,
                masks,
                xlen: j.get("xlen").and_then(Json::as_u64).unwrap_or(16) as u32,
                max_latency: j.get("max_latency").and_then(Json::as_u64).unwrap_or(8) as usize,
                example_depth: j.get("example_depth").and_then(Json::as_u64).unwrap_or(0) as usize,
            }
        } else {
            return Err(bad_request("design needs either builtin or btor2"));
        };
        Ok(DesignSpec { name, source })
    }

    /// Serializes back to the protocol/persistence JSON object.
    pub fn to_json(&self) -> Json {
        match &self.source {
            DesignSource::Builtin { kind, xlen, scale } => Json::obj(vec![
                ("name", Json::Str(self.name.clone())),
                ("builtin", Json::Str(kind.clone())),
                ("xlen", Json::Int(*xlen as i64)),
                ("scale", Json::Int(*scale as i64)),
            ]),
            DesignSource::Btor2 {
                src,
                instr_input,
                observables,
                secret_regs,
                masks,
                xlen,
                max_latency,
                example_depth,
            } => Json::obj(vec![
                ("name", Json::Str(self.name.clone())),
                ("btor2", Json::Str(src.clone())),
                ("instr_input", Json::Str(instr_input.clone())),
                (
                    "observables",
                    Json::Arr(observables.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "secret_regs",
                    Json::Arr(secret_regs.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "masks",
                    Json::Arr(
                        masks
                            .iter()
                            .map(|(v, fs)| {
                                Json::Arr(vec![
                                    Json::Str(v.clone()),
                                    Json::Arr(fs.iter().cloned().map(Json::Str).collect()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("xlen", Json::Int(*xlen as i64)),
                ("max_latency", Json::Int(*max_latency as i64)),
                ("example_depth", Json::Int(*example_depth as i64)),
            ]),
        }
    }

    /// Builds the concrete [`Design`].
    pub fn build(&self) -> Result<Design, ServeError> {
        match &self.source {
            DesignSource::Builtin { kind, xlen, scale } => {
                let variant = |v: BoomVariant| Ok(boom_lite_scaled(v, *xlen, (*scale).max(1)));
                match kind.as_str() {
                    "rocketlite" => Ok(rocket_lite(*xlen)),
                    "boom-small" => variant(BoomVariant::Small),
                    "boom-medium" => variant(BoomVariant::Medium),
                    "boom-large" => variant(BoomVariant::Large),
                    "boom-mega" => variant(BoomVariant::Mega),
                    other => Err(bad_design(format!("unknown builtin design {other:?}"))),
                }
            }
            DesignSource::Btor2 {
                src,
                instr_input,
                observables,
                secret_regs,
                masks,
                xlen,
                max_latency,
                example_depth,
            } => {
                let netlist = parse_btor2(src).map_err(|e| bad_design(e.to_string()))?;
                if netlist.find_input(instr_input).is_none() {
                    return Err(bad_design(format!("no input named {instr_input:?}")));
                }
                let find = |name: &str| {
                    netlist
                        .find_state(name)
                        .ok_or_else(|| bad_design(format!("no state named {name:?}")))
                };
                if observables.is_empty() {
                    return Err(bad_design("at least one observable is required"));
                }
                if secret_regs.is_empty() {
                    return Err(bad_design("at least one secret_reg is required"));
                }
                let observable = observables
                    .iter()
                    .map(|o| find(o))
                    .collect::<Result<_, _>>()?;
                let secrets = secret_regs
                    .iter()
                    .map(|s| find(s))
                    .collect::<Result<_, _>>()?;
                let mut masking = Vec::new();
                for (valid, fields) in masks {
                    masking.push(MaskRule {
                        valid: find(valid)?,
                        fields: fields.iter().map(|f| find(f)).collect::<Result<_, _>>()?,
                    });
                }
                let nregs = secret_regs.len() + 1;
                Ok(Design {
                    netlist,
                    instr_input: instr_input.clone(),
                    observable,
                    secret_regs: secrets,
                    masking,
                    nregs,
                    xlen: *xlen,
                    max_latency: *max_latency,
                    example_depth: if *example_depth > 0 {
                        *example_depth
                    } else {
                        (*max_latency).max(8)
                    },
                })
            }
        }
    }
}

/// Content fingerprint of a built design: structure (canonical btor2
/// serialization) plus every annotation that influences learning. Equal
/// fingerprints mean the resident warm state applies verbatim; a change
/// triggers signature-directed invalidation.
pub fn design_fingerprint(design: &Design) -> u64 {
    let mut text = to_btor2(&design.netlist);
    text.push('\x1f');
    text.push_str(&design.instr_input);
    for &o in &design.observable {
        text.push('\x1f');
        text.push_str(design.netlist.state_name(o));
    }
    for &s in &design.secret_regs {
        text.push('\x1f');
        text.push_str(design.netlist.state_name(s));
    }
    for rule in &design.masking {
        text.push('\x1f');
        text.push_str(design.netlist.state_name(rule.valid));
        for &f in &rule.fields {
            text.push(',');
            text.push_str(design.netlist.state_name(f));
        }
    }
    use std::fmt::Write as _;
    let _ = write!(
        text,
        "\x1f{}:{}:{}:{}",
        design.nregs, design.xlen, design.max_latency, design.example_depth
    );
    fnv1a(text.as_bytes())
}

/// The per-job portion of a warm learn configuration that changes the
/// learning *problem* (and therefore keys warm state). Thread count and
/// certification mode deliberately excluded: both are gated bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobKey {
    /// Sorted safe set.
    pub safe: Vec<Mnemonic>,
    /// Paired executions per instruction.
    pub pairs_per_instr: usize,
    /// Example RNG seed.
    pub seed: u64,
    /// Impl-predicate (ConjunCT §5.2.1) mode.
    pub impl_predicates: bool,
}

impl JobKey {
    /// Stable human-readable key string.
    pub fn key_string(&self) -> String {
        let names: Vec<&str> = self.safe.iter().map(|m| m.name()).collect();
        format!(
            "safe={};pairs={};seed={:#x};impl={}",
            names.join("+"),
            self.pairs_per_instr,
            self.seed,
            self.impl_predicates
        )
    }

    /// Directory-safe job id: FNV-1a of [`JobKey::key_string`].
    pub fn id(&self) -> String {
        format!("{:016x}", fnv1a(self.key_string().as_bytes()))
    }
}

/// One warm job: resident miter, encode cache, memo table, invariant.
#[derive(Debug)]
pub struct JobState {
    /// The job key.
    pub key: JobKey,
    /// Resident product netlist (identical to what every engine run builds).
    pub miter: Miter,
    /// Resident encode cache: replay streams + learnt-clause pools.
    pub cache: Arc<EncodeCache>,
    /// Memoised solution table of the last successful learn, over
    /// [`JobState::miter`]'s netlist.
    pub solutions: Vec<(Predicate, Vec<Predicate>)>,
    /// The learned invariant (sorted predicates), if the last learn proved.
    pub invariant: Option<Vec<Predicate>>,
    /// Positive examples used by the last learn.
    pub num_examples: usize,
}

impl JobState {
    fn fresh(key: JobKey, veloct: &Veloct<'_>) -> JobState {
        let (miter, _) = veloct.build_miter(&key.safe);
        let cache = Arc::new(EncodeCache::new(miter.netlist()));
        JobState {
            key,
            miter,
            cache,
            solutions: Vec::new(),
            invariant: None,
            num_examples: 0,
        }
    }
}

/// One named design plus its warm jobs.
#[derive(Debug)]
pub struct DesignEntry {
    /// The durable specification (rebuilds the design from nothing).
    pub spec: DesignSpec,
    /// The built design.
    pub design: Design,
    /// Content fingerprint of `design`.
    pub fingerprint: u64,
    /// Warm jobs keyed by [`JobKey::id`].
    pub jobs: HashMap<String, JobState>,
}

/// Counters describing one warm learn/verify run (SERVE.md §3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCounters {
    /// Memo entries seeded from warm state before solving.
    pub memo_seeded: usize,
    /// Seeded entries that survived (were reused by) the run.
    pub memo_reused: usize,
    /// Warm entries invalidated by a design delta before the run.
    pub invalidated: usize,
    /// Fresh abduction tasks the run had to solve.
    pub relearned: usize,
    /// SMT queries issued by the run.
    pub smt_queries: usize,
    /// Encode-cache replays served during the run (delta).
    pub cache_hits: u64,
    /// Fresh cone blasts during the run (delta). Zero on a warm hit.
    pub cache_misses: u64,
    /// Learnt clauses exported into pools during the run (delta).
    pub pool_exported: u64,
    /// Learnt clauses imported from pools during the run (delta).
    pub pool_imported: u64,
}

/// Outcome classification of a learn/verify run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnResult {
    /// An invariant was learned (or fully reused).
    Proved,
    /// No invariant exists within the predicate language.
    Unprovable,
    /// Example generation refuted the safe set at the given cycle.
    Diverged(usize),
}

/// Everything a learn/verify response reports.
#[derive(Debug)]
pub struct LearnOutcome {
    /// Proved / unprovable / diverged.
    pub result: LearnResult,
    /// The invariant in [`Predicate::to_wire`] form, sorted (empty unless
    /// proved).
    pub invariant: Vec<String>,
    /// Run counters.
    pub counters: RunCounters,
    /// Positive examples used.
    pub num_examples: usize,
    /// Where the certificate bundle was written, if requested.
    pub certificate: Option<PathBuf>,
}

/// Per-request options that do *not* key warm state.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Worker threads for the engine.
    pub threads: usize,
    /// Emit an `hh-proof` certificate bundle after a successful learn.
    pub certify: bool,
    /// `verify` semantics: require an existing warm baseline.
    pub require_baseline: bool,
}

/// The server's complete resident state.
#[derive(Debug)]
pub struct ServeState {
    /// Persistence root (`None` = memory-only daemon).
    pub state_dir: Option<PathBuf>,
    /// Resident designs by key.
    pub designs: HashMap<String, DesignEntry>,
}

/// Summary of a checkpoint write.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointSummary {
    /// Designs written.
    pub designs: usize,
    /// Jobs written.
    pub jobs: usize,
    /// Memo entries written.
    pub solutions: usize,
    /// Learnt clauses written across all pools.
    pub pool_clauses: usize,
}

/// Summary of a restore.
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreSummary {
    /// Designs restored.
    pub designs: usize,
    /// Jobs restored.
    pub jobs: usize,
    /// Memo entries restored.
    pub solutions: usize,
    /// Learnt clauses re-seeded into pools.
    pub pool_clauses: usize,
}

const STATE_VERSION: &str = "hh-serve state v1";

impl ServeState {
    /// Creates empty state (no persistence).
    pub fn new(state_dir: Option<PathBuf>) -> ServeState {
        ServeState {
            state_dir,
            designs: HashMap::new(),
        }
    }

    /// Builds the per-request [`VeloctConfig`] for a job.
    fn veloct_config(key: &JobKey, opts: RunOptions) -> VeloctConfig {
        VeloctConfig {
            threads: opts.threads.max(1),
            pairs_per_instr: key.pairs_per_instr,
            seed: key.seed,
            impl_predicates: key.impl_predicates,
            certify: opts.certify,
            ..VeloctConfig::default()
        }
    }

    /// The encode scope warm signatures are computed under — must match the
    /// scope [`hh_smt::AbductionSession`] uses, which is the engine config's
    /// abduction scope (the default; serve never overrides it).
    fn scope() -> EncodeScope {
        VeloctConfig::default().engine.abduction.scope
    }

    /// Handles a learn/verify request end to end: design registration or
    /// delta migration, warm seeding, the engine run, and warm-state
    /// update. This is the request lifecycle documented in
    /// `docs/ARCHITECTURE.md`.
    pub fn learn(
        &mut self,
        spec: DesignSpec,
        key: JobKey,
        opts: RunOptions,
    ) -> Result<LearnOutcome, ServeError> {
        // A certificate's design reference must be re-derivable by the
        // independent checker, which only knows builtin constructors; an
        // inlined btor2 source has no durable reference. Reject up front
        // rather than after a full learn.
        if opts.certify && !matches!(spec.source, DesignSource::Builtin { .. }) {
            return Err((
                ErrorCode::BadRequest,
                "certify requires a builtin design: certificate bundles \
                 reference the design by constructor name"
                    .to_string(),
            ));
        }
        let design = spec.build()?;
        let fingerprint = design_fingerprint(&design);
        let name = spec.name.clone();

        // Register the design or migrate resident jobs across a delta.
        let mut invalidated = 0usize;
        match self.designs.get_mut(&name) {
            None => {
                if opts.require_baseline {
                    return Err((
                        ErrorCode::UnknownDesign,
                        format!("design {name:?} has never been learned on this server"),
                    ));
                }
                self.designs.insert(
                    name.clone(),
                    DesignEntry {
                        spec,
                        design,
                        fingerprint,
                        jobs: HashMap::new(),
                    },
                );
            }
            Some(entry) if entry.fingerprint == fingerprint => {
                // Identical content: resident state applies verbatim.
            }
            Some(entry) => {
                // Design delta: migrate every resident job before swapping
                // the design in, so signatures can be compared old-vs-new.
                invalidated = migrate_entry(entry, spec, design, fingerprint, opts);
            }
        }

        let entry = self.designs.get_mut(&name).expect("just ensured");
        let job_id = key.id();
        // `verify` re-checks against warm state: it needs a prior learn for
        // this exact job (whose memo a delta may have partially invalidated
        // — that is the incremental case), never a cold start.
        if opts.require_baseline && !entry.jobs.contains_key(&job_id) {
            return Err((
                ErrorCode::NoBaseline,
                format!(
                    "no prior learn for job {} on design {name:?}",
                    key.key_string()
                ),
            ));
        }
        let veloct_cfg = Self::veloct_config(&key, opts);
        let veloct = Veloct::with_config(&entry.design, veloct_cfg);
        let job = entry
            .jobs
            .entry(job_id.clone())
            .or_insert_with(|| JobState::fresh(key.clone(), &veloct));

        let before = job.cache.stats();
        let warm = WarmContext {
            encode_cache: Some(Arc::clone(&job.cache)),
            seeds: job.solutions.clone(),
        };
        hh_trace::counter!("serve", "serve.seeded", warm.seeds.len());
        let report = veloct.learn_warm(&key.safe, warm);
        let after = job.cache.stats();

        let (result, invariant_preds) = match (&report.divergence, &report.invariant) {
            (Some(div), _) => (LearnResult::Diverged(div.cycle), Vec::new()),
            (None, None) => (LearnResult::Unprovable, Vec::new()),
            (None, Some(inv)) => {
                let mut preds = inv.preds().to_vec();
                preds.sort();
                (LearnResult::Proved, preds)
            }
        };

        // Update warm state: keep the last *successful* memo (seeding from
        // a failed run would be wasted work — its entries reference
        // predicates in P_fail).
        if result == LearnResult::Proved {
            job.solutions = report.solutions.clone();
            job.invariant = Some(invariant_preds.clone());
            job.num_examples = report.num_examples;
        } else {
            job.solutions.clear();
            job.invariant = None;
        }

        let counters = RunCounters {
            memo_seeded: report.memo_seeded,
            memo_reused: report.memo_reused,
            invalidated,
            relearned: report.stats.num_tasks(),
            smt_queries: report.stats.smt_queries,
            cache_hits: after.hits - before.hits,
            cache_misses: after.misses - before.misses,
            pool_exported: after.exported_clauses - before.exported_clauses,
            pool_imported: after.imported_clauses - before.imported_clauses,
        };
        hh_trace::counter!("serve", "serve.reused", counters.memo_reused);
        hh_trace::counter!("serve", "serve.invalidated", counters.invalidated);
        hh_trace::counter!("serve", "serve.relearned", counters.relearned);
        if counters.memo_seeded > 0 && counters.smt_queries == 0 {
            hh_trace::counter!("serve", "serve.warm_hit", 1);
        }

        // Certificates are served from (and re-derived into) the resident
        // store: the bundle lives under the job's state directory.
        let mut certificate = None;
        if opts.certify && result == LearnResult::Proved {
            let dir = self
                .job_dir(&name, &job_id)
                .ok_or_else(|| {
                    (
                        ErrorCode::Internal,
                        "certify requires the daemon to run with a state directory".to_string(),
                    )
                })?
                .join("cert");
            let entry = self.designs.get(&name).expect("present");
            let job = entry.jobs.get(&job_id).expect("present");
            let veloct = Veloct::with_config(&entry.design, Self::veloct_config(&key, opts));
            let inv = hhoudini::Invariant::new(invariant_preds.clone());
            std::fs::create_dir_all(&dir)
                .map_err(|e| (ErrorCode::Internal, format!("creating {dir:?}: {e}")))?;
            veloct
                .emit_certificate(&key.safe, &inv, &job.solutions, &dir)
                .map_err(|e| (ErrorCode::Internal, format!("certificate emission: {e}")))?;
            certificate = Some(dir);
        }

        let entry = self.designs.get(&name).expect("present");
        let job = entry.jobs.get(&job_id).expect("present");
        Ok(LearnOutcome {
            result,
            invariant: invariant_preds
                .iter()
                .map(|p| p.to_wire(job.miter.netlist()))
                .collect(),
            counters,
            num_examples: report.num_examples,
            certificate,
        })
    }

    /// Drops warm state. `scope` is `"memo"` (clear solution tables and
    /// invariants, keep encode caches and pools) or `"all"` (drop designs
    /// entirely). Returns `(designs_dropped, jobs_cleared, entries_dropped)`.
    pub fn flush(
        &mut self,
        scope: &str,
        design: Option<&str>,
    ) -> Result<(usize, usize, usize), ServeError> {
        let names: Vec<String> = match design {
            Some(d) => {
                if !self.designs.contains_key(d) {
                    return Err((ErrorCode::UnknownDesign, format!("unknown design {d:?}")));
                }
                vec![d.to_string()]
            }
            None => self.designs.keys().cloned().collect(),
        };
        let mut jobs = 0usize;
        let mut entries = 0usize;
        match scope {
            "memo" => {
                for n in &names {
                    let e = self.designs.get_mut(n).expect("listed");
                    for job in e.jobs.values_mut() {
                        jobs += 1;
                        entries += job.solutions.len();
                        job.solutions.clear();
                        job.invariant = None;
                    }
                }
                Ok((0, jobs, entries))
            }
            "all" => {
                let mut designs = 0usize;
                for n in &names {
                    let e = self.designs.remove(n).expect("listed");
                    designs += 1;
                    for job in e.jobs.values() {
                        jobs += 1;
                        entries += job.solutions.len();
                    }
                }
                Ok((designs, jobs, entries))
            }
            other => Err(bad_request(format!(
                "unknown flush scope {other:?} (expected \"memo\" or \"all\")"
            ))),
        }
    }

    fn job_dir(&self, design: &str, job_id: &str) -> Option<PathBuf> {
        self.state_dir
            .as_ref()
            .map(|d| d.join("designs").join(design).join("jobs").join(job_id))
    }

    /// Writes the full warm state to the state directory (no-op without
    /// one). The `designs/` subtree is replaced wholesale — it is owned by
    /// this daemon and marked by the VERSION file; partially written
    /// checkpoints are prevented by writing every file to a `.tmp` sibling
    /// and renaming.
    pub fn checkpoint(&self) -> std::io::Result<CheckpointSummary> {
        self.checkpoint_inner(None)
    }

    /// Fault-injection seam (hh-vopr checkpoint-crash fault): runs a
    /// normal checkpoint until the `crash_after`-th atomic file write
    /// (0-based), which writes its `.tmp` sibling, syncs it, and then
    /// fails **before** the rename — byte-for-byte the on-disk state a
    /// process killed between tmp-write and rename leaves behind. Returns
    /// the injected error; [`ServeState::restore`] must clean the debris
    /// and come back warm from the last completed checkpoint.
    #[doc(hidden)]
    pub fn checkpoint_crash_after(&self, crash_after: usize) -> std::io::Result<CheckpointSummary> {
        self.checkpoint_inner(Some(crash_after))
    }

    fn checkpoint_inner(&self, crash_after: Option<usize>) -> std::io::Result<CheckpointSummary> {
        let mut fault = WriteFault {
            until_crash: crash_after,
        };
        let Some(root) = &self.state_dir else {
            return Ok(CheckpointSummary::default());
        };
        std::fs::create_dir_all(root)?;
        let version_path = root.join("VERSION");
        let designs_root = root.join("designs");
        if designs_root.exists() {
            // Refuse to prune a directory we do not own.
            if !version_path.exists() {
                return Err(std::io::Error::other(format!(
                    "{} exists but {} does not; refusing to overwrite a \
                     directory hh-serve did not create",
                    designs_root.display(),
                    version_path.display()
                )));
            }
            // Prune stale entries but never blanket-wipe: `cert/` bundles
            // under surviving jobs are re-derivable yet expensive, and a
            // checkpoint must not destroy them.
            prune_dir(&designs_root, |name| self.designs.contains_key(name))?;
            for (name, entry) in &self.designs {
                let jobs_root = designs_root.join(name).join("jobs");
                if jobs_root.exists() {
                    prune_dir(&jobs_root, |id| entry.jobs.contains_key(id))?;
                }
            }
        }
        fault.write(&version_path, STATE_VERSION.as_bytes())?;
        let mut summary = CheckpointSummary::default();
        let mut names: Vec<&String> = self.designs.keys().collect();
        names.sort();
        for name in names {
            let entry = &self.designs[name];
            let ddir = designs_root.join(name);
            std::fs::create_dir_all(&ddir)?;
            let mut spec = entry.spec.to_json();
            if let Json::Obj(m) = &mut spec {
                m.insert(
                    "fingerprint".to_string(),
                    Json::Str(format!("{:016x}", entry.fingerprint)),
                );
            }
            fault.write(&ddir.join("spec.json"), spec.to_string().as_bytes())?;
            summary.designs += 1;
            let mut job_ids: Vec<&String> = entry.jobs.keys().collect();
            job_ids.sort();
            for id in job_ids {
                let job = &entry.jobs[id];
                let jdir = ddir.join("jobs").join(id);
                std::fs::create_dir_all(&jdir)?;
                summary.jobs += 1;

                let meta = Json::obj(vec![
                    (
                        "safe",
                        Json::Arr(
                            job.key
                                .safe
                                .iter()
                                .map(|m| Json::Str(m.name().to_string()))
                                .collect(),
                        ),
                    ),
                    ("pairs", Json::Int(job.key.pairs_per_instr as i64)),
                    ("seed", Json::Int(job.key.seed as i64)),
                    ("impl_predicates", Json::Bool(job.key.impl_predicates)),
                    ("proved", Json::Bool(job.invariant.is_some())),
                    ("num_examples", Json::Int(job.num_examples as i64)),
                ]);
                fault.write(&jdir.join("job.json"), meta.to_string().as_bytes())?;

                let nl = job.miter.netlist();
                let mut sol = String::new();
                for (t, prem) in &job.solutions {
                    sol.push_str("T ");
                    sol.push_str(&t.to_wire(nl));
                    sol.push('\n');
                    for p in prem {
                        sol.push_str("P ");
                        sol.push_str(&p.to_wire(nl));
                        sol.push('\n');
                    }
                    sol.push_str(".\n");
                    summary.solutions += 1;
                }
                fault.write(&jdir.join("solutions.txt"), sol.as_bytes())?;

                let mut inv = String::new();
                if let Some(preds) = &job.invariant {
                    for p in preds {
                        inv.push_str(&p.to_wire(nl));
                        inv.push('\n');
                    }
                }
                fault.write(&jdir.join("invariant.txt"), inv.as_bytes())?;

                let mut pools = String::new();
                for (sig, clauses) in job.cache.dump_pools() {
                    pools.push('K');
                    for tok in &sig {
                        use std::fmt::Write as _;
                        let _ = write!(pools, " {tok:x}");
                    }
                    pools.push('\n');
                    for clause in &clauses {
                        pools.push('C');
                        for lit in clause {
                            use std::fmt::Write as _;
                            let _ = write!(pools, " {}", lit.code());
                        }
                        pools.push('\n');
                        summary.pool_clauses += 1;
                    }
                }
                fault.write(&jdir.join("pools.txt"), pools.as_bytes())?;
            }
        }
        hh_trace::counter!("serve", "serve.checkpoint", 1);
        Ok(summary)
    }

    /// Restores warm state from the state directory. Malformed entries are
    /// skipped (the daemon boots cold for them) rather than failing the
    /// whole boot; the error strings are returned for logging.
    pub fn restore(&mut self) -> (RestoreSummary, Vec<String>) {
        let mut summary = RestoreSummary::default();
        let mut warnings = Vec::new();
        let Some(root) = self.state_dir.clone() else {
            return (summary, warnings);
        };
        let version_path = root.join("VERSION");
        // Claim-at-boot hygiene: a `VERSION.tmp` carrying our own marker is
        // debris from a checkpoint killed before its very first rename.
        // Reject and remove it so it can never be mistaken for a claim.
        let version_tmp = version_path.with_extension("tmp");
        if std::fs::read_to_string(&version_tmp).is_ok_and(|s| s.trim() == STATE_VERSION) {
            match std::fs::remove_file(&version_tmp) {
                Ok(()) => warnings.push(format!(
                    "removed half-written checkpoint debris {}",
                    version_tmp.display()
                )),
                Err(e) => warnings.push(format!("removing {}: {e}", version_tmp.display())),
            }
        }
        let version = std::fs::read_to_string(&version_path).unwrap_or_default();
        if version.trim() != STATE_VERSION {
            if !version.is_empty() {
                warnings.push(format!(
                    "state dir version {:?} != {:?}; booting cold",
                    version.trim(),
                    STATE_VERSION
                ));
            } else if root.join("designs").exists() {
                warnings.push(format!(
                    "{} has a designs/ subtree but no VERSION marker; booting \
                     cold and leaving it untouched",
                    root.display()
                ));
            } else {
                // Fresh directory: claim it now, so files written before the
                // first checkpoint (certificate bundles) land inside an
                // owned tree.
                let claim = std::fs::create_dir_all(&root)
                    .and_then(|_| write_atomic(&root.join("VERSION"), STATE_VERSION.as_bytes()));
                if let Err(e) = claim {
                    warnings.push(format!("claiming {}: {e}", root.display()));
                }
            }
            return (summary, warnings);
        }
        // The tree is ours: clear any `*.tmp` siblings a mid-checkpoint
        // crash left behind, so a half-written file can never shadow the
        // last completed one.
        sweep_tmp_debris(&root, &mut warnings);
        let designs_root = root.join("designs");
        let Ok(dirs) = std::fs::read_dir(&designs_root) else {
            return (summary, warnings);
        };
        let mut paths: Vec<PathBuf> = dirs.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for ddir in paths {
            match self.restore_design(&ddir, &mut summary) {
                Ok(()) => {}
                Err(msg) => warnings.push(format!("{}: {msg}", ddir.display())),
            }
        }
        hh_trace::counter!("serve", "serve.restored_jobs", summary.jobs);
        (summary, warnings)
    }

    fn restore_design(&mut self, ddir: &Path, summary: &mut RestoreSummary) -> Result<(), String> {
        let spec_text =
            std::fs::read_to_string(ddir.join("spec.json")).map_err(|e| e.to_string())?;
        let spec_json = Json::parse(&spec_text).map_err(|e| e.to_string())?;
        let spec = DesignSpec::from_json(&spec_json).map_err(|(_, m)| m)?;
        let design = spec.build().map_err(|(_, m)| m)?;
        let fingerprint = design_fingerprint(&design);
        if let Some(stored) = spec_json.get("fingerprint").and_then(Json::as_str) {
            if stored != format!("{fingerprint:016x}") {
                return Err("stored fingerprint does not match rebuilt design".to_string());
            }
        }
        let mut entry = DesignEntry {
            spec,
            design,
            fingerprint,
            jobs: HashMap::new(),
        };
        summary.designs += 1;
        let jobs_root = ddir.join("jobs");
        if let Ok(dirs) = std::fs::read_dir(&jobs_root) {
            let mut paths: Vec<PathBuf> = dirs.filter_map(|e| e.ok().map(|e| e.path())).collect();
            paths.sort();
            for jdir in paths {
                match restore_job(&entry.design, &jdir, summary) {
                    Ok(job) => {
                        entry.jobs.insert(job.key.id(), job);
                    }
                    Err(msg) => return Err(format!("{}: {msg}", jdir.display())),
                }
            }
        }
        self.designs.insert(entry.spec.name.clone(), entry);
        Ok(())
    }
}

/// Migrates every job of `entry` onto the new design: signature-directed
/// invalidation of memo entries, pool transplant, miter/cache rebuild.
/// Returns the number of invalidated memo entries across all jobs.
fn migrate_entry(
    entry: &mut DesignEntry,
    spec: DesignSpec,
    design: Design,
    fingerprint: u64,
    opts: RunOptions,
) -> usize {
    let scope = ServeState::scope();
    let mut invalidated = 0usize;
    let old_jobs = std::mem::take(&mut entry.jobs);
    let mut new_jobs = HashMap::new();
    for (id, old) in old_jobs {
        let veloct = Veloct::with_config(&design, ServeState::veloct_config(&old.key, opts));
        let mut fresh = JobState::fresh(old.key.clone(), &veloct);
        // Learnt-clause pools are keyed by renaming-invariant signatures:
        // clauses for cone shapes that survived the delta stay valid, the
        // rest are dead keys that are never looked up.
        fresh.cache.seed_pools(&old.cache.dump_pools());
        let old_nl = old.miter.netlist();
        let new_nl = fresh.miter.netlist();
        for (target, premises) in &old.solutions {
            // Remap by state name; a predicate that no longer resolves is
            // invalid by construction.
            let remap = |p: &Predicate| Predicate::from_wire(&p.to_wire(old_nl), new_nl).ok();
            let Some(new_target) = remap(target) else {
                invalidated += 1;
                continue;
            };
            let new_premises: Option<Vec<Predicate>> = premises.iter().map(remap).collect();
            let Some(new_premises) = new_premises else {
                invalidated += 1;
                continue;
            };
            // The decisive check: the target's obligation encoding is
            // unchanged iff its cone signature is.
            let old_sig = old.cache.signature(old_nl, target, scope);
            let new_sig = fresh.cache.signature(new_nl, &new_target, scope);
            if old_sig.key == new_sig.key {
                fresh.solutions.push((new_target, new_premises));
            } else {
                invalidated += 1;
            }
        }
        // The invariant itself is re-derived by the next learn; carrying a
        // stale one across a delta would misreport "proved".
        fresh.invariant = None;
        fresh.num_examples = old.num_examples;
        new_jobs.insert(id, fresh);
    }
    entry.jobs = new_jobs;
    entry.spec = spec;
    entry.design = design;
    entry.fingerprint = fingerprint;
    invalidated
}

fn restore_job(
    design: &Design,
    jdir: &Path,
    summary: &mut RestoreSummary,
) -> Result<JobState, String> {
    let meta_text = std::fs::read_to_string(jdir.join("job.json")).map_err(|e| e.to_string())?;
    let meta = Json::parse(&meta_text).map_err(|e| e.to_string())?;
    let safe_json = meta.get("safe").ok_or("job.json missing safe")?;
    let mut safe = Vec::new();
    for s in safe_json.as_arr().ok_or("safe must be an array")? {
        let name = s.as_str().ok_or("safe entries must be strings")?;
        safe.push(mnemonic_by_name(name).ok_or_else(|| format!("unknown mnemonic {name:?}"))?);
    }
    let key = JobKey {
        safe,
        pairs_per_instr: meta.get("pairs").and_then(Json::as_u64).unwrap_or(1) as usize,
        seed: meta.get("seed").and_then(Json::as_i64).unwrap_or(0) as u64,
        impl_predicates: meta
            .get("impl_predicates")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    };
    let proved = meta.get("proved").and_then(Json::as_bool).unwrap_or(false);
    let opts = RunOptions {
        threads: 1,
        certify: false,
        require_baseline: false,
    };
    let veloct = Veloct::with_config(design, ServeState::veloct_config(&key, opts));
    let mut job = JobState::fresh(key, &veloct);
    job.num_examples = meta.get("num_examples").and_then(Json::as_u64).unwrap_or(0) as usize;
    summary.jobs += 1;

    let nl = job.miter.netlist();
    let sol_text = std::fs::read_to_string(jdir.join("solutions.txt")).unwrap_or_default();
    let mut target: Option<(Predicate, Vec<Predicate>)> = None;
    for line in sol_text.lines() {
        if let Some(rest) = line.strip_prefix("T ") {
            target = Some((Predicate::from_wire(rest, nl)?, Vec::new()));
        } else if let Some(rest) = line.strip_prefix("P ") {
            let t = target.as_mut().ok_or("premise before target")?;
            t.1.push(Predicate::from_wire(rest, nl)?);
        } else if line == "." {
            let t = target.take().ok_or("terminator before target")?;
            job.solutions.push(t);
            summary.solutions += 1;
        } else if !line.trim().is_empty() {
            return Err(format!("bad solutions line {line:?}"));
        }
    }

    if proved {
        let inv_text = std::fs::read_to_string(jdir.join("invariant.txt")).unwrap_or_default();
        let mut preds = Vec::new();
        for line in inv_text.lines().filter(|l| !l.trim().is_empty()) {
            preds.push(Predicate::from_wire(line, nl)?);
        }
        if !preds.is_empty() {
            job.invariant = Some(preds);
        }
    }

    let pool_text = std::fs::read_to_string(jdir.join("pools.txt")).unwrap_or_default();
    let mut dump: Vec<(Vec<u64>, Vec<Vec<Lit>>)> = Vec::new();
    for line in pool_text.lines() {
        if let Some(rest) = line.strip_prefix("K") {
            let key: Result<Vec<u64>, _> = rest
                .split_whitespace()
                .map(|t| u64::from_str_radix(t, 16))
                .collect();
            dump.push((key.map_err(|e| e.to_string())?, Vec::new()));
        } else if let Some(rest) = line.strip_prefix("C") {
            let pool = dump.last_mut().ok_or("clause before pool key")?;
            let clause: Result<Vec<Lit>, _> = rest
                .split_whitespace()
                .map(|t| t.parse::<usize>().map(Lit::from_code))
                .collect();
            pool.1.push(clause.map_err(|e| e.to_string())?);
        } else if !line.trim().is_empty() {
            return Err(format!("bad pools line {line:?}"));
        }
    }
    summary.pool_clauses += job.cache.seed_pools(&dump);
    Ok(job)
}

/// Removes every child directory of `dir` whose (UTF-8) name fails `keep`.
fn prune_dir(dir: &Path, keep: impl Fn(&str) -> bool) -> std::io::Result<()> {
    for e in std::fs::read_dir(dir)? {
        let e = e?;
        let name = e.file_name();
        let kept = name.to_str().is_some_and(&keep);
        if !kept && e.path().is_dir() {
            std::fs::remove_dir_all(e.path())?;
        }
    }
    Ok(())
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Counts down atomic writes and, on the fatal one, stops between the
/// tmp-write and the rename — exactly the on-disk state a process killed
/// mid-[`write_atomic`] leaves behind. `until_crash: None` is a plain
/// pass-through, so the production path pays nothing.
struct WriteFault {
    until_crash: Option<usize>,
}

impl WriteFault {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if let Some(n) = self.until_crash.as_mut() {
            if *n == 0 {
                let tmp = path.with_extension("tmp");
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(bytes)?;
                f.sync_all()?;
                return Err(std::io::Error::other(
                    "injected checkpoint crash (tmp written, rename skipped)",
                ));
            }
            *n -= 1;
        }
        write_atomic(path, bytes)
    }
}

/// Removes `*.tmp` debris that a checkpoint killed between tmp-write and
/// rename leaves behind. Only ever called on a tree this daemon owns (the
/// VERSION marker, or its own half-written marker, is present).
fn sweep_tmp_debris(dir: &Path, warnings: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            sweep_tmp_debris(&path, warnings);
        } else if path.extension().is_some_and(|e| e == "tmp") {
            match std::fs::remove_file(&path) {
                Ok(()) => warnings.push(format!(
                    "removed half-written checkpoint debris {}",
                    path.display()
                )),
                Err(e) => warnings.push(format!("removing {}: {e}", path.display())),
            }
        }
    }
}
