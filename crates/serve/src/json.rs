//! Minimal JSON value, parser, and writer for the serve protocol.
//!
//! The workspace builds with no registry access, so the wire format is
//! implemented here rather than pulled from serde. The subset is exactly
//! what RFC 8259 requires of a receiver: objects, arrays, strings with the
//! standard escapes (including `\uXXXX`, with surrogate pairs), numbers,
//! booleans and null. Numbers are kept as `i64` when they parse exactly
//! (protocol counters are integers; `f64` would silently lose precision
//! above 2^53) and as `f64` otherwise.
//!
//! Writing is canonical enough for tests to compare strings: object keys
//! are emitted in insertion order, no whitespace, and strings escape only
//! what must be escaped.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed exactly as a 64-bit signed integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` gives deterministic iteration (and therefore
    /// deterministic serialization) regardless of insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (accepting exact floats), if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Unsigned integer view of [`Json::as_i64`].
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no Inf/NaN; the protocol never needs them.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; the whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact (no-whitespace) JSON serialization; `Json::to_string()` comes
/// from the blanket [`ToString`] impl.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// A parse failure with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

/// Nesting depth cap: a hostile frame must not be able to blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.err(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control byte in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip(" false "), "false");
        assert_eq!(round_trip("42"), "42");
        assert_eq!(round_trip("-7"), "-7");
        assert_eq!(round_trip("1.5"), "1.5");
        assert_eq!(
            round_trip("\"hi\\n\\\"there\\\"\""),
            "\"hi\\n\\\"there\\\"\""
        );
    }

    #[test]
    fn big_integers_stay_exact() {
        // 2^60 — would corrupt through an f64-only representation.
        let n = 1_152_921_504_606_846_976i64;
        let j = Json::parse(&n.to_string()).unwrap();
        assert_eq!(j.as_i64(), Some(n));
        assert_eq!(j.to_string(), n.to_string());
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"b":[1,2,{"x":null}],"a":"s","c":{"k":true}}"#;
        let j = Json::parse(text).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_str), Some("s"));
        assert_eq!(j.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        // Keys sort on output (BTreeMap) — deterministic regardless of input order.
        assert_eq!(
            j.to_string(),
            r#"{"a":"s","b":[1,2,{"x":null}],"c":{"k":true}}"#
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        let j = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(j.as_str(), Some("é😀"));
        // Raw multi-byte UTF-8 passes through too.
        let j = Json::parse("\"héllo\"").unwrap();
        assert_eq!(j.as_str(), Some("héllo"));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb must be an error, not a stack overflow.
        let bomb = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&bomb).is_err());
    }
}
