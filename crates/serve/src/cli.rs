//! The `veloct` command-line tool: batch safe-set synthesis (the original
//! mode), `veloct serve` (the warm daemon) and `veloct connect` (the
//! client).
//!
//! ```text
//! veloct serve   [--bind 127.0.0.1:7411 | --socket /run/veloct.sock]
//!                [--state-dir DIR] [--threads N] [--checkpoint-every N]
//! veloct connect [addr|socket-path] <op> [op options]   # default 127.0.0.1:7411
//! veloct --builtin rocketlite ...            # batch mode, as before
//! ```
//!
//! See `docs/SERVE.md` for the protocol and `docs/PRODUCTION.md` for
//! deployment guidance.

use crate::client::Client;
use crate::json::Json;
use crate::server::{Bind, Server, ServerConfig};
use hh_netlist::btor2::parse_btor2;
use hh_uarch::boomlite::{boom_lite, BoomVariant};
use hh_uarch::rocketlite::rocket_lite;
use hh_uarch::{Design, MaskRule};
use std::path::PathBuf;
use std::process::ExitCode;
use veloct::{default_candidates, Veloct, VeloctConfig};

/// CLI entry point: dispatches `serve` / `connect` subcommands, otherwise
/// runs the batch pipeline.
pub fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => {
            argv.remove(0);
            serve_main(&argv)
        }
        Some("connect") => {
            argv.remove(0);
            connect_main(&argv)
        }
        _ => batch_main(),
    }
}

// ---------------------------------------------------------------------------
// veloct serve
// ---------------------------------------------------------------------------

fn serve_usage() -> ! {
    eprintln!(
        "usage: veloct serve [--bind HOST:PORT | --socket PATH]\n\
         \x20                  [--state-dir DIR] [--threads N] [--checkpoint-every N]"
    );
    std::process::exit(2);
}

fn serve_main(argv: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = &String>| {
            it.next().cloned().unwrap_or_else(|| serve_usage())
        };
        match a.as_str() {
            "--bind" => config.bind = Bind::Tcp(val(&mut it)),
            "--socket" => config.bind = Bind::Unix(PathBuf::from(val(&mut it))),
            "--state-dir" => config.state_dir = Some(PathBuf::from(val(&mut it))),
            "--threads" => match val(&mut it).parse() {
                Ok(n) => config.threads = n,
                Err(_) => serve_usage(),
            },
            "--checkpoint-every" => match val(&mut it).parse() {
                Ok(n) => config.checkpoint_every = n,
                Err(_) => serve_usage(),
            },
            _ => serve_usage(),
        }
    }
    let tracing = hh_trace::init_from_env();
    let (server, notes) = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for n in &notes {
        eprintln!("serve: {n}");
    }
    if let Some(addr) = server.local_addr() {
        println!("veloct serve: listening on {addr}");
    } else {
        println!("veloct serve: listening");
    }
    let result = server.run();
    if tracing {
        if let Err(e) = hh_trace::finish_to_env() {
            eprintln!("failed to write trace: {e}");
        }
    }
    match result {
        Ok(c) => {
            println!(
                "veloct serve: stopped after {} request(s), {} warm hit(s), {} checkpoint(s)",
                c.requests, c.warm_hits, c.checkpoints
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// veloct connect
// ---------------------------------------------------------------------------

fn connect_usage() -> ! {
    eprintln!(
        "usage: veloct connect [<addr|socket>] <op> [options]\n\
         \x20 default address: 127.0.0.1:7411\n\
         \x20 ops:\n\
         \x20   status | checkpoint | shutdown\n\
         \x20   flush  [--scope memo|all] [--design NAME]\n\
         \x20   learn|verify --name NAME (--builtin KIND | --design FILE.btor2\n\
         \x20       --instr-input NAME --observable S... --secret-reg S...\n\
         \x20       [--mask VALID=FIELD[,FIELD...]]... [--max-latency N])\n\
         \x20       [--xlen N] [--safe alu|default|M1,M2,...] [--pairs N]\n\
         \x20       [--seed N] [--threads N] [--impl-predicates] [--certify]"
    );
    std::process::exit(2);
}

const CONNECT_OPS: [&str; 6] = [
    "learn",
    "verify",
    "status",
    "flush",
    "checkpoint",
    "shutdown",
];

fn connect_main(argv: &[String]) -> ExitCode {
    // The address is optional: when the first argument is already an op
    // name, talk to the default serve address.
    let (addr, op, rest): (&str, &str, &[String]) = match argv.first().map(String::as_str) {
        Some(first) if CONNECT_OPS.contains(&first) => ("127.0.0.1:7411", first, &argv[1..]),
        Some(addr) if argv.len() >= 2 => (addr, argv[1].as_str(), &argv[2..]),
        _ => connect_usage(),
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match op {
        "status" => client.status(),
        "checkpoint" => client.checkpoint(),
        "shutdown" => client.shutdown(),
        "flush" => {
            let mut scope = "memo".to_string();
            let mut design = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scope" => scope = it.next().cloned().unwrap_or_else(|| connect_usage()),
                    "--design" => {
                        design = Some(it.next().cloned().unwrap_or_else(|| connect_usage()))
                    }
                    _ => connect_usage(),
                }
            }
            client.flush(&scope, design.as_deref())
        }
        "learn" | "verify" => match build_learn_request(rest) {
            Ok(fields) => client.request(op, fields),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        _ => connect_usage(),
    };
    match result {
        Ok(resp) => {
            println!("{resp}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the learn/verify request payload from `connect` flags. The design
/// file, if any, is inlined into the request — the daemon never touches the
/// client's filesystem.
fn build_learn_request(argv: &[String]) -> Result<Vec<(&'static str, Json)>, String> {
    let mut name = None;
    let mut builtin = None;
    let mut design_path: Option<String> = None;
    let mut instr_input = None;
    let mut observables = Vec::new();
    let mut secret_regs = Vec::new();
    let mut masks: Vec<Json> = Vec::new();
    let mut xlen: Option<i64> = None;
    let mut max_latency: Option<i64> = None;
    let mut safe: Option<String> = None;
    let mut pairs: Option<i64> = None;
    let mut seed: Option<i64> = None;
    let mut threads: Option<i64> = None;
    let mut impl_predicates = false;
    let mut certify = false;

    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--name" => name = Some(val()?),
            "--builtin" => builtin = Some(val()?),
            "--design" => design_path = Some(val()?),
            "--instr-input" => instr_input = Some(val()?),
            "--observable" => observables.push(Json::Str(val()?)),
            "--secret-reg" => secret_regs.push(Json::Str(val()?)),
            "--mask" => {
                let spec = val()?;
                let (valid, fields) = spec
                    .split_once('=')
                    .ok_or("--mask takes VALID=FIELD[,FIELD...]")?;
                masks.push(Json::Arr(vec![
                    Json::Str(valid.to_string()),
                    Json::Arr(
                        fields
                            .split(',')
                            .map(|f| Json::Str(f.to_string()))
                            .collect(),
                    ),
                ]));
            }
            "--xlen" => xlen = Some(val()?.parse().map_err(|_| "--xlen takes a number")?),
            "--max-latency" => {
                max_latency = Some(val()?.parse().map_err(|_| "--max-latency takes a number")?)
            }
            "--safe" => safe = Some(val()?),
            "--pairs" => pairs = Some(val()?.parse().map_err(|_| "--pairs takes a number")?),
            "--seed" => seed = Some(val()?.parse().map_err(|_| "--seed takes a number")?),
            "--threads" => threads = Some(val()?.parse().map_err(|_| "--threads takes a number")?),
            "--impl-predicates" => impl_predicates = true,
            "--certify" => certify = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    let name = name.ok_or("--name is required")?;
    let mut design = vec![("name", Json::Str(name))];
    if let Some(b) = builtin {
        design.push(("builtin", Json::Str(b)));
    } else if let Some(path) = design_path {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        design.push(("btor2", Json::Str(src)));
        design.push((
            "instr_input",
            Json::Str(instr_input.ok_or("--instr-input is required for a btor2 design")?),
        ));
        design.push(("observables", Json::Arr(observables)));
        design.push(("secret_regs", Json::Arr(secret_regs)));
        design.push(("masks", Json::Arr(masks)));
        if let Some(l) = max_latency {
            design.push(("max_latency", Json::Int(l)));
        }
    } else {
        return Err("either --builtin or --design is required".to_string());
    }
    if let Some(x) = xlen {
        design.push(("xlen", Json::Int(x)));
    }

    let mut fields = vec![("design", Json::obj(design))];
    if let Some(s) = safe {
        let spec = if s == "alu" || s == "default" {
            Json::Str(s)
        } else {
            Json::Arr(s.split(',').map(|m| Json::Str(m.to_string())).collect())
        };
        fields.push(("safe", spec));
    }
    if let Some(p) = pairs {
        fields.push(("pairs", Json::Int(p)));
    }
    if let Some(s) = seed {
        fields.push(("seed", Json::Int(s)));
    }
    if let Some(t) = threads {
        fields.push(("threads", Json::Int(t)));
    }
    if impl_predicates {
        fields.push(("impl_predicates", Json::Bool(true)));
    }
    if certify {
        fields.push(("certify", Json::Bool(true)));
    }
    Ok(fields)
}

// ---------------------------------------------------------------------------
// Batch mode (the original veloct CLI)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct BatchArgs {
    design_path: Option<String>,
    builtin: Option<String>,
    instr_input: Option<String>,
    observables: Vec<String>,
    secret_regs: Vec<String>,
    masks: Vec<(String, Vec<String>)>,
    xlen: u32,
    max_latency: usize,
    threads: usize,
    impl_predicates: bool,
    portfolio: bool,
    certify: Option<String>,
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: veloct --builtin <rocketlite|boom-small|boom-medium|boom-large|boom-mega>\n\
         \x20      | veloct --design <file.btor2> --instr-input <name>\n\
         \x20               --observable <state>... --secret-reg <state>...\n\
         \x20               [--mask <valid>=<field>[,<field>...]]...\n\
         \x20               [--xlen N] [--max-latency N]\n\
         \x20      common: [--threads N] [--impl-predicates] [--portfolio] [--certify <dir>]\n\
         \x20      daemon: veloct serve --help | veloct connect --help"
    );
    std::process::exit(2);
}

fn parse_batch_args() -> BatchArgs {
    let mut args = BatchArgs {
        xlen: 16,
        max_latency: 24,
        threads: 1,
        ..BatchArgs::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| batch_usage());
        match a.as_str() {
            "--design" => args.design_path = Some(val(&mut it)),
            "--builtin" => args.builtin = Some(val(&mut it)),
            "--instr-input" => args.instr_input = Some(val(&mut it)),
            "--observable" => args.observables.push(val(&mut it)),
            "--secret-reg" => args.secret_regs.push(val(&mut it)),
            "--mask" => {
                let spec = val(&mut it);
                let (valid, fields) = spec.split_once('=').unwrap_or_else(|| batch_usage());
                args.masks.push((
                    valid.to_string(),
                    fields.split(',').map(|s| s.to_string()).collect(),
                ));
            }
            "--xlen" => args.xlen = val(&mut it).parse().unwrap_or_else(|_| batch_usage()),
            "--max-latency" => {
                args.max_latency = val(&mut it).parse().unwrap_or_else(|_| batch_usage())
            }
            "--threads" => args.threads = val(&mut it).parse().unwrap_or_else(|_| batch_usage()),
            "--impl-predicates" => args.impl_predicates = true,
            "--portfolio" => args.portfolio = true,
            "--certify" => args.certify = Some(val(&mut it)),
            "--help" | "-h" => batch_usage(),
            other => {
                eprintln!("unknown argument: {other}");
                batch_usage();
            }
        }
    }
    args
}

fn load_design(args: &BatchArgs) -> Result<Design, String> {
    if let Some(name) = &args.builtin {
        return Ok(match name.as_str() {
            "rocketlite" => rocket_lite(args.xlen),
            "boom-small" => boom_lite(BoomVariant::Small, args.xlen),
            "boom-medium" => boom_lite(BoomVariant::Medium, args.xlen),
            "boom-large" => boom_lite(BoomVariant::Large, args.xlen),
            "boom-mega" => boom_lite(BoomVariant::Mega, args.xlen),
            other => return Err(format!("unknown builtin design: {other}")),
        });
    }
    let path = args
        .design_path
        .as_ref()
        .ok_or("missing --design or --builtin")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let netlist = parse_btor2(&text).map_err(|e| e.to_string())?;

    let instr_input = args
        .instr_input
        .clone()
        .ok_or("missing --instr-input for a btor2 design")?;
    if netlist.find_input(&instr_input).is_none() {
        return Err(format!("design has no input named {instr_input}"));
    }
    let find = |name: &str| {
        netlist
            .find_state(name)
            .ok_or_else(|| format!("design has no state named {name}"))
    };
    let mut observable = Vec::new();
    for o in &args.observables {
        observable.push(find(o)?);
    }
    if observable.is_empty() {
        return Err("at least one --observable is required".into());
    }
    let mut secret_regs = Vec::new();
    for s in &args.secret_regs {
        secret_regs.push(find(s)?);
    }
    if secret_regs.is_empty() {
        return Err("at least one --secret-reg is required".into());
    }
    let mut masking = Vec::new();
    for (valid, fields) in &args.masks {
        let valid = find(valid)?;
        let mut fs = Vec::new();
        for f in fields {
            fs.push(find(f)?);
        }
        masking.push(MaskRule { valid, fields: fs });
    }
    let nregs = secret_regs.len() + 1;
    Ok(Design {
        netlist,
        instr_input,
        observable,
        secret_regs,
        masking,
        nregs,
        xlen: args.xlen,
        max_latency: args.max_latency,
        example_depth: args.max_latency.max(8),
    })
}

fn batch_main() -> ExitCode {
    // HH_TRACE=<path.json> captures a Chrome trace of the run; see
    // docs/TRACE_SCHEMA.md for the span/counter vocabulary.
    let tracing = hh_trace::init_from_env();
    let args = parse_batch_args();
    let design = match load_design(&args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "design: {} — {} state bits, {} state elements, {} inputs",
        design.netlist.name(),
        design.state_bits(),
        design.netlist.num_states(),
        design.netlist.num_inputs()
    );

    let mut config = VeloctConfig {
        threads: args.threads,
        pairs_per_instr: 1,
        impl_predicates: args.impl_predicates,
        certify: args.certify.is_some(),
        ..VeloctConfig::default()
    };
    config.engine.abduction.portfolio = args.portfolio;
    let veloct = Veloct::with_config(&design, config);
    let t0 = std::time::Instant::now();
    let report = veloct.classify(&default_candidates());
    let elapsed = t0.elapsed();

    println!(
        "\nverified safe instruction set ({} instructions):",
        report.safe.len()
    );
    let names: Vec<&str> = report.safe.iter().map(|m| m.name()).collect();
    println!("  {}", names.join(", "));
    if !report.rejected.is_empty() {
        println!("excluded:");
        for (m, why) in &report.rejected {
            println!("  {:8} {:?}", m.name(), why);
        }
    }
    let code = match &report.invariant {
        Some(inv) => {
            println!(
                "\ninvariant: {} predicates | {} tasks | {} backtracks | {} SMT queries | {elapsed:.2?}",
                inv.len(),
                report.stats.num_tasks(),
                report.stats.backtracks,
                report.stats.smt_queries
            );
            match &args.certify {
                None => ExitCode::SUCCESS,
                Some(dir) => {
                    let dir = std::path::Path::new(dir);
                    match veloct.emit_certificate(&report.safe, inv, &report.solutions, dir) {
                        Ok(summary) => {
                            println!(
                                "certificate: {} obligations, {} proof lines, {} bytes -> {}",
                                summary.obligations,
                                summary.proof_lines,
                                summary.proof_bytes,
                                dir.display()
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("certificate emission failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        None => {
            println!("\nno invariant learned for any candidate subset");
            ExitCode::FAILURE
        }
    };
    if tracing {
        match hh_trace::finish_to_env() {
            Ok(Some(path)) => println!("trace written to {path}"),
            Ok(None) => {}
            Err(e) => eprintln!("failed to write trace: {e}"),
        }
    }
    code
}
