//! Property-based tests: the CDCL solver is checked against a brute-force
//! enumerator on random small formulas, and core extraction is validated
//! semantically (cores are UNSAT, minimised cores are locally minimal).

use hh_sat::{minimize_core, Config, LimitedResult, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random clause set over `num_vars` variables, as signed var indices.
fn arb_cnf(num_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    let clause = proptest::collection::vec((0..num_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses)
}

fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    assert!(num_vars <= 20);
    'outer: for assignment in 0u32..(1 << num_vars) {
        for clause in clauses {
            let sat = clause
                .iter()
                .any(|&(v, pos)| ((assignment >> v) & 1 == 1) == pos);
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn build_solver(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
    for clause in clauses {
        let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        s.add_clause(&lits);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// CDCL agrees with brute force on satisfiability.
    #[test]
    fn agrees_with_brute_force(clauses in arb_cnf(8, 40)) {
        let expected = brute_force_sat(8, &clauses);
        let mut s = build_solver(8, &clauses);
        let got = s.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected);
    }

    /// A SAT answer comes with a model that satisfies every clause.
    #[test]
    fn models_satisfy_all_clauses(clauses in arb_cnf(10, 50)) {
        let mut s = build_solver(10, &clauses);
        if s.solve() == SolveResult::Sat {
            let vars: Vec<Var> = (0..10).map(Var::from_index).collect();
            for clause in &clauses {
                let sat = clause.iter().any(|&(v, pos)| s.model_value(vars[v].lit(pos)));
                prop_assert!(sat, "model violates clause {:?}", clause);
            }
        }
    }

    /// Assumption solving matches adding the assumptions as unit clauses, and
    /// UNSAT cores are themselves sufficient for unsatisfiability.
    #[test]
    fn assumption_semantics(clauses in arb_cnf(7, 30), pattern in 0u8..128, polarity in 0u8..128) {
        let assumed: Vec<(usize, bool)> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| (i, (polarity >> i) & 1 == 1))
            .collect();

        // Reference: units added as clauses.
        let mut with_units = clauses.clone();
        for &(v, pos) in &assumed {
            with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(7, &with_units);

        let mut s = build_solver(7, &clauses);
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let assumptions: Vec<Lit> = assumed.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        let res = s.solve_with_assumptions(&assumptions);
        prop_assert_eq!(res == SolveResult::Sat, expected);

        if res == SolveResult::Unsat {
            let core = s.unsat_core().to_vec();
            // Core is a subset of the assumptions.
            for l in &core {
                prop_assert!(assumptions.contains(l));
            }
            // The core alone is already unsatisfiable.
            prop_assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
            // And minimisation yields a locally minimal core.
            let min = minimize_core(&mut s, &core);
            prop_assert_eq!(s.solve_with_assumptions(&min), SolveResult::Unsat);
            for &drop in &min {
                let probe: Vec<Lit> = min.iter().copied().filter(|&l| l != drop).collect();
                prop_assert_eq!(s.solve_with_assumptions(&probe), SolveResult::Sat,
                    "core not minimal: {:?} removable", drop);
            }
        }
    }

    /// The solver stays consistent across incremental rounds: solving with
    /// assumptions never changes the formula.
    #[test]
    fn solving_is_stateless(clauses in arb_cnf(6, 25), rounds in 1usize..4) {
        let expected = brute_force_sat(6, &clauses);
        let mut s = build_solver(6, &clauses);
        for _ in 0..rounds {
            prop_assert_eq!(s.solve() == SolveResult::Sat, expected);
        }
    }

    /// `simplify()` (probing, subsumption, strengthening, BVE) preserves
    /// satisfiability on random CNFs.
    #[test]
    fn simplify_preserves_satisfiability(clauses in arb_cnf(8, 40)) {
        let expected = brute_force_sat(8, &clauses);
        let mut s = build_solver(8, &clauses);
        let simplify_ok = s.simplify();
        prop_assert!(simplify_ok || !expected, "simplify derived UNSAT on a SAT formula");
        prop_assert_eq!(s.solve() == SolveResult::Sat, expected);
    }

    /// After BVE, models reconstructed from the elimination stack satisfy
    /// every ORIGINAL clause, not just the resolvent form.
    #[test]
    fn reconstructed_models_satisfy_original_clauses(clauses in arb_cnf(10, 50)) {
        let mut s = build_solver(10, &clauses);
        if !s.simplify() {
            // Simplification proved top-level UNSAT; nothing to check.
            prop_assert_eq!(s.solve(), SolveResult::Unsat);
            return Ok(());
        }
        if s.solve() == SolveResult::Sat {
            let vars: Vec<Var> = (0..10).map(Var::from_index).collect();
            for clause in &clauses {
                let sat = clause.iter().any(|&(v, pos)| s.model_value(vars[v].lit(pos)));
                prop_assert!(sat, "reconstructed model violates original clause {:?}", clause);
            }
        }
    }

    /// Freeze semantics under assumptions: frozen variables survive
    /// simplification, and assumption queries issued after simplify return
    /// the same answers as on an untouched solver.
    #[test]
    fn simplify_is_transparent_to_assumptions(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let assumed: Vec<(usize, bool)> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| (i, (polarity >> i) & 1 == 1))
            .collect();
        let mut with_units = clauses.clone();
        for &(v, pos) in &assumed {
            with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(7, &with_units);

        let mut s = build_solver(7, &clauses);
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        // Freeze the assumption variables up front (the session pattern),
        // then simplify, then query.
        for &(v, _) in &assumed {
            s.freeze(vars[v]);
        }
        let ok = s.simplify();
        for &(v, _) in &assumed {
            prop_assert!(!s.is_eliminated(vars[v]), "frozen var eliminated");
        }
        let assumptions: Vec<Lit> = assumed.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        let res = s.solve_with_assumptions(&assumptions);
        prop_assert_eq!(res == SolveResult::Sat, expected && ok);

        // Interleave: simplify again between queries, then re-check.
        let _ = s.simplify();
        let res2 = s.solve_with_assumptions(&assumptions);
        prop_assert_eq!(res2, res);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Clause transfer soundness: learnt clauses exported from one solver
    /// are implied by its formula, so importing them into a second solver
    /// over the *same* formula must never change any solve outcome — under
    /// any assumption set, including sets the donor never saw.
    #[test]
    fn imported_clauses_never_change_outcomes(
        clauses in arb_cnf(8, 40),
        churn in proptest::collection::vec(
            proptest::collection::vec((0..8usize, any::<bool>()), 0..=4), 1..4),
        probes in proptest::collection::vec(
            proptest::collection::vec((0..8usize, any::<bool>()), 0..=4), 1..4),
    ) {
        let vars: Vec<Var> = (0..8).map(Var::from_index).collect();
        let to_lits = |set: &[(usize, bool)]| -> Vec<Lit> {
            set.iter().map(|&(v, pos)| vars[v].lit(pos)).collect()
        };

        // Donor: accumulate learnt clauses by solving under random
        // assumption sets, then export everything over the shared vars.
        let mut donor = build_solver(8, &clauses);
        for set in &churn {
            let _ = donor.solve_with_assumptions(&to_lits(set));
        }
        let exported = donor.export_learnt(|_| true);

        // Receiver: identical formula plus the imports. Reference: the
        // identical formula untouched.
        let mut receiver = build_solver(8, &clauses);
        receiver.import_clauses(&exported);
        let mut reference = build_solver(8, &clauses);

        for set in &probes {
            let assum = to_lits(set);
            prop_assert_eq!(
                receiver.solve_with_assumptions(&assum),
                reference.solve_with_assumptions(&assum),
                "imports changed an outcome under {:?}", set
            );
        }
        prop_assert_eq!(receiver.solve(), reference.solve());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every heuristic/layout knob in `Config::seed_baseline()` (Luby
    /// restarts, flat DB, no best phases, binaries in the long watch
    /// lists, no blocker checks) is answer-preserving: both configs agree
    /// with brute force under arbitrary assumption sets. Regression test
    /// for the blocker-off propagation tail, which once re-enqueued
    /// already-true literals forever.
    #[test]
    fn seed_baseline_config_agrees_with_brute_force(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let assumed: Vec<(usize, bool)> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| (i, (polarity >> i) & 1 == 1))
            .collect();
        let mut with_units = clauses.clone();
        for &(v, pos) in &assumed {
            with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(7, &with_units);
        let assumptions: Vec<Lit> = assumed.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();

        let mut s = hh_sat::Solver::with_config(hh_sat::Config::seed_baseline());
        for _ in 0..7 {
            s.new_var();
        }
        for clause in &clauses {
            let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
            s.add_clause(&lits);
        }
        prop_assert_eq!(s.solve_with_assumptions(&assumptions) == SolveResult::Sat, expected);
        prop_assert_eq!(s.debug_check_watches(), Ok(()));
    }

    /// Arena garbage compaction is invisible: forcing a full sweep +
    /// compaction between incremental queries never changes an answer, the
    /// two-watched-literal invariant holds after every compaction, and SAT
    /// models still satisfy every original clause.
    #[test]
    fn compaction_preserves_models_and_watches(
        clauses in arb_cnf(8, 40),
        churn in proptest::collection::vec(
            proptest::collection::vec((0..8usize, any::<bool>()), 0..=4), 1..4),
    ) {
        let expected = brute_force_sat(8, &clauses);
        let vars: Vec<Var> = (0..8).map(Var::from_index).collect();
        let mut s = build_solver(8, &clauses);
        for set in &churn {
            let assum: Vec<Lit> = set.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
            let _ = s.solve_with_assumptions(&assum);
            s.debug_force_compact();
            prop_assert_eq!(s.debug_check_watches(), Ok(()));
        }
        prop_assert_eq!(s.solve() == SolveResult::Sat, expected);
        if expected {
            for clause in &clauses {
                let sat = clause.iter().any(|&(v, pos)| s.model_value(vars[v].lit(pos)));
                prop_assert!(sat, "post-compaction model violates clause {:?}", clause);
            }
        }
    }

    /// Tiered database reduction never deletes a clause that is currently a
    /// reason on the trail, and never deletes a core-tier learnt — and the
    /// solver still answers correctly afterwards.
    #[test]
    fn reduce_keeps_core_and_reason_clauses(
        clauses in arb_cnf(8, 40),
        churn in proptest::collection::vec(
            proptest::collection::vec((0..8usize, any::<bool>()), 0..=4), 1..4),
    ) {
        let expected = brute_force_sat(8, &clauses);
        let vars: Vec<Var> = (0..8).map(Var::from_index).collect();
        let mut s = build_solver(8, &clauses);
        for set in &churn {
            let assum: Vec<Lit> = set.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
            let _ = s.solve_with_assumptions(&assum);
        }
        // Clause bodies as sorted literal sets: propagation reorders
        // literals in place, so identity is up to permutation.
        let canon = |c: &[Lit]| {
            let mut v = c.to_vec();
            v.sort();
            v
        };
        let core_before: Vec<Vec<Lit>> = s
            .debug_learnts_with_tiers()
            .iter()
            .filter(|(_, tier)| *tier == 0)
            .map(|(c, _)| canon(c))
            .collect();
        let reasons_before: Vec<Vec<Lit>> =
            s.debug_reason_clauses().iter().map(|c| canon(c)).collect();
        s.debug_force_reduce();
        prop_assert_eq!(s.debug_check_watches(), Ok(()));
        let mut live: Vec<Vec<Lit>> = s
            .debug_learnts_with_tiers()
            .iter()
            .map(|(c, _)| canon(c))
            .collect();
        s.visit_formula_clauses(|c| live.push(canon(c)));
        for c in &core_before {
            prop_assert!(live.contains(c), "reduce dropped core-tier clause {:?}", c);
        }
        for c in &reasons_before {
            prop_assert!(live.contains(c), "reduce dropped a reason clause {:?}", c);
        }
        prop_assert_eq!(s.solve() == SolveResult::Sat, expected);
    }
}

/// `build_solver` with an explicit config.
fn build_solver_with(config: Config, num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> Solver {
    let mut s = Solver::with_config(config);
    let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
    for clause in clauses {
        let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        s.add_clause(&lits);
    }
    s
}

/// Chrono-always: every conflict with any backjump distance above one level
/// takes the chronological path — the most out-of-order trail the solver
/// can produce.
fn chrono_aggressive() -> Config {
    Config {
        chrono: true,
        chrono_threshold: 1,
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Chronological backtracking agrees with brute force and with the
    /// backjumping solver on random CNFs, and its SAT models are real.
    #[test]
    fn chrono_agrees_with_brute_force_and_backjumping(clauses in arb_cnf(8, 40)) {
        let expected = brute_force_sat(8, &clauses);
        let mut chrono = build_solver_with(chrono_aggressive(), 8, &clauses);
        let mut jump = build_solver_with(
            Config { chrono: false, ..Config::default() }, 8, &clauses);
        let rc = chrono.solve();
        prop_assert_eq!(rc == SolveResult::Sat, expected);
        prop_assert_eq!(jump.solve(), rc);
        if rc == SolveResult::Sat {
            let vars: Vec<Var> = (0..8).map(Var::from_index).collect();
            for clause in &clauses {
                let sat = clause.iter().any(|&(v, pos)| chrono.model_value(vars[v].lit(pos)));
                prop_assert!(sat, "chrono model violates clause {:?}", clause);
            }
        }
        prop_assert_eq!(chrono.debug_check_watches(), Ok(()));
    }

    /// Chrono + assumptions: outcomes match the unit-clause semantics, the
    /// core is a genuine subset refutation, and incremental reuse across
    /// assumption sets stays sound with out-of-order trails.
    #[test]
    fn chrono_assumption_semantics(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let assumed: Vec<(usize, bool)> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| (i, (polarity >> i) & 1 == 1))
            .collect();
        let mut with_units = clauses.clone();
        for &(v, pos) in &assumed {
            with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(7, &with_units);
        let assumptions: Vec<Lit> = assumed.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        let mut s = build_solver_with(chrono_aggressive(), 7, &clauses);
        let res = s.solve_with_assumptions(&assumptions);
        prop_assert_eq!(res == SolveResult::Sat, expected);
        if res == SolveResult::Unsat {
            let core = s.unsat_core().to_vec();
            for l in &core {
                prop_assert!(assumptions.contains(l));
            }
            prop_assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
        }
        // Second round on the same solver: learnt clauses from the chrono
        // run must not corrupt later queries.
        prop_assert_eq!(s.solve() == SolveResult::Sat, brute_force_sat(7, &clauses));
    }

    /// Budgeted solving is complete and sound: driving the solver with tiny
    /// `solve_limited` slices until a verdict agrees with brute force, and
    /// the number of Unknown rounds is finite.
    #[test]
    fn budgeted_rounds_agree_with_brute_force(
        clauses in arb_cnf(8, 40),
        slice in 1u64..8,
    ) {
        let expected = brute_force_sat(8, &clauses);
        let mut s = build_solver(8, &clauses);
        let mut verdict = None;
        for _ in 0..10_000 {
            match s.solve_limited(&[], slice) {
                LimitedResult::Unknown => continue,
                LimitedResult::Sat => { verdict = Some(true); break; }
                LimitedResult::Unsat => { verdict = Some(false); break; }
            }
        }
        prop_assert_eq!(verdict, Some(expected), "budgeted rounds diverged");
        if expected {
            let vars: Vec<Var> = (0..8).map(Var::from_index).collect();
            for clause in &clauses {
                let sat = clause.iter().any(|&(v, pos)| s.model_value(vars[v].lit(pos)));
                prop_assert!(sat, "budgeted model violates clause {:?}", clause);
            }
        }
    }

    /// Racing two configurations by budget rounds never changes the verdict
    /// either arm would reach alone — the portfolio-soundness property at
    /// the raw solver level, driven on the diversified arm's config too.
    #[test]
    fn budget_racing_matches_either_arm_alone(
        clauses in arb_cnf(7, 30),
        slice in 1u64..16,
    ) {
        let expected = brute_force_sat(7, &clauses);
        let mut primary = build_solver(7, &clauses);
        let mut diversified = build_solver_with(
            Config {
                restart_mode: hh_sat::RestartMode::Luby,
                save_best_phases: false,
                ..Config::default()
            },
            7,
            &clauses,
        );
        let mut verdict = None;
        'race: for round in 0..10_000u64 {
            let budget = slice << round.min(10);
            for arm in [&mut primary, &mut diversified] {
                match arm.solve_limited(&[], budget) {
                    LimitedResult::Unknown => {}
                    LimitedResult::Sat => { verdict = Some(true); break 'race; }
                    LimitedResult::Unsat => { verdict = Some(false); break 'race; }
                }
            }
        }
        prop_assert_eq!(verdict, Some(expected), "race verdict diverged from brute force");
    }
}

#[test]
fn dimacs_roundtrip_through_solver() {
    let text = "p cnf 4 4\n1 2 0\n-1 3 0\n-2 4 0\n-3 -4 0\n";
    let cnf = hh_sat::dimacs::parse_dimacs(text).unwrap();
    let mut s = hh_sat::dimacs::load_into_solver(&cnf);
    assert_eq!(s.solve(), SolveResult::Sat);
}

/// Vivification-heavy config: an unbounded propagation budget so every long
/// clause is probed in every simplify round.
fn vivify_heavy() -> Config {
    Config {
        vivify: true,
        vivify_budget: u64::MAX,
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Vivified formulas are equisatisfiable with the original: explicit
    /// heavy vivification passes never flip the brute-force verdict, in
    /// both watch layouts, including a second (fixpoint) pass.
    #[test]
    fn vivified_formula_is_equisatisfiable(clauses in arb_cnf(8, 40)) {
        let expected = brute_force_sat(8, &clauses);
        for flat in [true, false] {
            let cfg = Config { flat_watches: flat, ..vivify_heavy() };
            let mut s = build_solver_with(cfg, 8, &clauses);
            let ok = s.simplify();
            prop_assert!(ok || !expected, "vivify derived UNSAT on a SAT formula");
            prop_assert_eq!(s.solve() == SolveResult::Sat, expected, "flat={}", flat);
            let ok2 = s.simplify();
            prop_assert!(ok2 || !expected);
            prop_assert_eq!(s.solve() == SolveResult::Sat, expected, "flat={} pass 2", flat);
        }
    }

    /// Vivification under assumptions with frozen indicator variables:
    /// frozen vars are never eliminated, assumption queries still agree
    /// with the reference semantics, and vivify rounds interleaved between
    /// queries change no verdict.
    #[test]
    fn vivify_respects_frozen_indicators(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let assumed: Vec<(usize, bool)> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| (i, (polarity >> i) & 1 == 1))
            .collect();
        let mut with_units = clauses.clone();
        for &(v, pos) in &assumed {
            with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(7, &with_units);

        let mut s = build_solver_with(vivify_heavy(), 7, &clauses);
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        for &(v, _) in &assumed {
            s.freeze(vars[v]);
        }
        let ok = s.simplify();
        for &(v, _) in &assumed {
            prop_assert!(!s.is_eliminated(vars[v]), "frozen indicator eliminated");
        }
        let assumptions: Vec<Lit> = assumed.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        let res = s.solve_with_assumptions(&assumptions);
        prop_assert_eq!(res == SolveResult::Sat, expected && ok);

        // Vivify again between queries, then re-check both the assumption
        // query and the assumption-free formula.
        let ok2 = s.simplify();
        prop_assert!(ok2 || !brute_force_sat(7, &clauses));
        prop_assert_eq!(s.solve_with_assumptions(&assumptions), res);
        prop_assert_eq!(
            s.solve() == SolveResult::Sat,
            brute_force_sat(7, &clauses) && ok2
        );
    }
}
