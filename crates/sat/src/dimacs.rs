//! Minimal DIMACS CNF reader/writer.
//!
//! Useful for debugging the bit-blaster (dump a query, inspect it with an
//! external solver) and for loading standard benchmark instances into
//! [`crate::Solver`] in tests.

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use std::fmt::Write as _;

/// A parsed CNF formula: the number of variables and the clause list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (DIMACS header value).
    pub num_vars: usize,
    /// Clauses over literals `1..=num_vars` encoded as [`Lit`]s.
    pub clauses: Vec<Vec<Lit>>,
}

/// Errors produced by [`parse_dimacs`]. Every variant carries the 1-based
/// line number the problem was found on (0 when the input ended before the
/// expected content appeared, e.g. a missing header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader {
        /// 1-based line of the offending header, or 0 if it never appeared.
        line: usize,
        /// The offending header text.
        text: String,
    },
    /// A token was not an integer literal.
    BadToken {
        /// 1-based line containing the token.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A literal refers to a variable beyond the header's variable count.
    VarOutOfRange {
        /// 1-based line containing the literal.
        line: usize,
        /// The out-of-range literal as written.
        literal: i64,
    },
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDimacsError::BadHeader { line: 0, text } => {
                write!(f, "bad DIMACS header: {text}")
            }
            ParseDimacsError::BadHeader { line, text } => {
                write!(f, "line {line}: bad DIMACS header: {text}")
            }
            ParseDimacsError::BadToken { line, token } => {
                write!(f, "line {line}: bad DIMACS token: {token}")
            }
            ParseDimacsError::VarOutOfRange { line, literal } => {
                write!(f, "line {line}: variable out of range: {literal}")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// Comment lines (`c ...`) are skipped wherever they appear — including
/// interleaved inside a clause body, which some generators emit. The clause
/// count in the header is not enforced (many real files get it wrong).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens or
/// out-of-range variables; every error reports the 1-based line number.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1; // 1-based for error reporting
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseDimacsError::BadHeader {
                    line: lineno,
                    text: line.to_string(),
                });
            }
            num_vars = Some(parts[2].parse().map_err(|_| ParseDimacsError::BadHeader {
                line: lineno,
                text: line.to_string(),
            })?);
            continue;
        }
        let nv = num_vars.ok_or(ParseDimacsError::BadHeader {
            line: lineno,
            text: "clause before header".into(),
        })?;
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError::BadToken {
                line: lineno,
                token: tok.to_string(),
            })?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = n.unsigned_abs() as usize;
                if v > nv {
                    return Err(ParseDimacsError::VarOutOfRange {
                        line: lineno,
                        literal: n,
                    });
                }
                current.push(Var::from_index(v - 1).lit(n > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.ok_or(ParseDimacsError::BadHeader {
            line: 0,
            text: "missing".into(),
        })?,
        clauses,
    })
}

/// Renders a CNF in DIMACS format.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for &l in clause {
            let n = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Loads a CNF into a fresh solver (creating `num_vars` variables).
pub fn load_into_solver(cnf: &Cnf) -> Solver {
    let mut s = Solver::new();
    for _ in 0..cnf.num_vars {
        s.new_var();
    }
    for clause in &cnf.clauses {
        s.add_clause(clause);
    }
    s
}

/// Captures a solver's current formula as a CNF.
///
/// [`Solver::add_clause`] simplifies clauses as they land: unit clauses
/// vanish into the level-0 trail, falsified literals are stripped, satisfied
/// clauses are dropped. A naive dump of the clause database would therefore
/// *not* round-trip — in particular every input unit would be missing. This
/// dump re-materialises the level-0 units as unit clauses (first, in trail
/// order) followed by the live non-learnt clauses, which is exactly the
/// formula a DRAT proof stream from this solver refutes. Must be called at
/// decision level 0.
pub fn from_solver(s: &Solver) -> Cnf {
    Cnf {
        num_vars: s.num_vars(),
        clauses: s.formula_clauses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let re = parse_dimacs(&to_dimacs(&cnf)).unwrap();
        assert_eq!(cnf, re);
    }

    #[test]
    fn solve_parsed_instance() {
        let text = "p cnf 2 3\n1 2 0\n-1 2 0\n-2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let mut s = load_into_solver(&cnf);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_dimacs("p dnf 1 1\n1 0\n"),
            Err(ParseDimacsError::BadHeader { line: 1, .. })
        ));
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(ParseDimacsError::BadHeader { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_var() {
        assert!(matches!(
            parse_dimacs("p cnf 1 1\n2 0\n"),
            Err(ParseDimacsError::VarOutOfRange {
                line: 2,
                literal: 2
            })
        ));
    }

    #[test]
    fn clause_without_trailing_zero() {
        let cnf = parse_dimacs("p cnf 2 1\n1 -2").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn comments_interleaved_inside_clause_bodies() {
        // A clause split across lines with comments in the middle must
        // parse as one clause.
        let text = "c top\np cnf 3 2\n1 -2\nc interrupting comment\n3 0\nc another\n-1\n2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 3);
        assert_eq!(cnf.clauses[1].len(), 2);
        let mut s = load_into_solver(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn solver_dump_preserves_level0_units() {
        // Units are simplified into the trail by `add_clause`; the dump must
        // re-materialise them so writer -> parser -> loader round-trips to
        // an equivalent (indeed, identical) formula.
        let text = "p cnf 4 4\n1 0\n-1 2 3 0\n-3 0\n2 4 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let s = load_into_solver(&cnf);
        let dumped = from_solver(&s);
        assert_eq!(dumped.num_vars, 4);
        // The unit [1] fixed var 1 and propagation of [-1 2 3] with [-3]
        // fixed var 2; both units must reappear in the dump.
        let units: Vec<&Vec<Lit>> = dumped.clauses.iter().filter(|c| c.len() == 1).collect();
        assert!(units.contains(&&vec![Var::from_index(0).positive()]));
        assert!(units.contains(&&vec![Var::from_index(2).negative()]));
        assert!(units.contains(&&vec![Var::from_index(1).positive()]));
        // Round-trip through text and back is stable.
        let re = parse_dimacs(&to_dimacs(&dumped)).unwrap();
        assert_eq!(dumped, re);
        let re2 = from_solver(&load_into_solver(&re));
        assert_eq!(re.num_vars, re2.num_vars);
        // A second trip may drop clauses the units already satisfy, but
        // never invents clauses and never loses a unit.
        let set1: std::collections::HashSet<Vec<Lit>> = re.clauses.iter().cloned().collect();
        let set2: std::collections::HashSet<Vec<Lit>> = re2.clauses.iter().cloned().collect();
        assert!(set2.is_subset(&set1));
        for c in &set1 {
            if c.len() == 1 {
                assert!(set2.contains(c), "unit {c:?} lost in round-trip");
            }
        }
    }

    #[test]
    fn errors_report_one_based_line_numbers() {
        // Comments and blank lines still advance the line counter.
        let text = "c one\n\np cnf 2 2\nc three-ish\n1 frog 0\n";
        match parse_dimacs(text) {
            Err(ParseDimacsError::BadToken { line, token }) => {
                assert_eq!(line, 5);
                assert_eq!(token, "frog");
            }
            other => panic!("expected BadToken, got {other:?}"),
        }
        let text = "p cnf 1 1\nc pad\nc pad\n-9 0\n";
        match parse_dimacs(text) {
            Err(ParseDimacsError::VarOutOfRange { line, literal }) => {
                assert_eq!(line, 4);
                assert_eq!(literal, -9);
            }
            other => panic!("expected VarOutOfRange, got {other:?}"),
        }
        let err = parse_dimacs("p cnf\n").unwrap_err();
        assert!(err.to_string().starts_with("line 1:"), "{err}");
        // A file with no header at all reports line 0 ("never appeared").
        let err = parse_dimacs("c only comments\n").unwrap_err();
        assert!(matches!(err, ParseDimacsError::BadHeader { line: 0, .. }));
    }
}
