//! Minimal DIMACS CNF reader/writer.
//!
//! Useful for debugging the bit-blaster (dump a query, inspect it with an
//! external solver) and for loading standard benchmark instances into
//! [`crate::Solver`] in tests.

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use std::fmt::Write as _;

/// A parsed CNF formula: the number of variables and the clause list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (DIMACS header value).
    pub num_vars: usize,
    /// Clauses over literals `1..=num_vars` encoded as [`Lit`]s.
    pub clauses: Vec<Vec<Lit>>,
}

/// Errors produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token was not an integer literal.
    BadToken(String),
    /// A literal refers to a variable beyond the header's variable count.
    VarOutOfRange(i64),
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDimacsError::BadHeader(s) => write!(f, "bad DIMACS header: {s}"),
            ParseDimacsError::BadToken(s) => write!(f, "bad DIMACS token: {s}"),
            ParseDimacsError::VarOutOfRange(v) => write!(f, "variable out of range: {v}"),
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// Comment lines (`c ...`) are skipped; the clause count in the header is not
/// enforced (many real files get it wrong).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens or
/// out-of-range variables.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(ParseDimacsError::BadHeader(line.to_string()));
            }
            num_vars = Some(
                parts[2]
                    .parse()
                    .map_err(|_| ParseDimacsError::BadHeader(line.to_string()))?,
            );
            continue;
        }
        let nv = num_vars.ok_or_else(|| ParseDimacsError::BadHeader("missing".into()))?;
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::BadToken(tok.to_string()))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = n.unsigned_abs() as usize;
                if v > nv {
                    return Err(ParseDimacsError::VarOutOfRange(n));
                }
                current.push(Var::from_index(v - 1).lit(n > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.ok_or_else(|| ParseDimacsError::BadHeader("missing".into()))?,
        clauses,
    })
}

/// Renders a CNF in DIMACS format.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for &l in clause {
            let n = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Loads a CNF into a fresh solver (creating `num_vars` variables).
pub fn load_into_solver(cnf: &Cnf) -> Solver {
    let mut s = Solver::new();
    for _ in 0..cnf.num_vars {
        s.new_var();
    }
    for clause in &cnf.clauses {
        s.add_clause(clause);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let re = parse_dimacs(&to_dimacs(&cnf)).unwrap();
        assert_eq!(cnf, re);
    }

    #[test]
    fn solve_parsed_instance() {
        let text = "p cnf 2 3\n1 2 0\n-1 2 0\n-2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let mut s = load_into_solver(&cnf);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_dimacs("p dnf 1 1\n1 0\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_var() {
        assert!(matches!(
            parse_dimacs("p cnf 1 1\n2 0\n"),
            Err(ParseDimacsError::VarOutOfRange(2))
        ));
    }

    #[test]
    fn clause_without_trailing_zero() {
        let cnf = parse_dimacs("p cnf 2 1\n1 -2").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }
}
