//! Deletion-based UNSAT-core minimisation.
//!
//! The abduction oracle of H-Houdini (§3.2.3 of the paper) wants *weakest*
//! (smallest) abducts. cvc5 provides `minimal-unsat-cores`, which guarantees
//! locally-minimal cores; we reproduce the same guarantee with the classic
//! deletion algorithm: drop each core member in turn and re-solve — if the
//! remainder is still UNSAT the member was redundant.

use crate::solver::{SolveResult, Solver};
use crate::Lit;

/// Shrinks an UNSAT core to a *locally minimal* one: no single literal can be
/// removed while keeping the remaining assumptions unsatisfiable.
///
/// `core` must be a set of assumptions under which `solver` answers UNSAT
/// (e.g. the result of [`Solver::unsat_core`]). Returns the minimised core.
/// Each removal probe costs one incremental solve; the solver's learnt
/// clauses accumulate across probes, so later probes are typically cheap.
///
/// # Examples
///
/// ```
/// use hh_sat::{Solver, SolveResult, minimize_core};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// let c = s.new_var().positive();
/// s.add_clause(&[!a, !b]);
/// assert_eq!(s.solve_with_assumptions(&[a, b, c]), SolveResult::Unsat);
/// let core = s.unsat_core().to_vec();
/// let min = minimize_core(&mut s, &core);
/// assert_eq!(min.len(), 2); // {a, b}
/// ```
pub fn minimize_core(solver: &mut Solver, core: &[Lit]) -> Vec<Lit> {
    let mut current: Vec<Lit> = core.to_vec();
    let mut i = 0;
    while i < current.len() {
        let candidate = current[i];
        let probe: Vec<Lit> = current
            .iter()
            .copied()
            .filter(|&l| l != candidate)
            .collect();
        match solver.solve_with_assumptions(&probe) {
            SolveResult::Unsat => {
                // The candidate was not needed. Adopt the (possibly even
                // smaller) refreshed core from this probe.
                let refreshed = solver.unsat_core().to_vec();
                // Keep the ordering of `current` for determinism.
                current = current
                    .iter()
                    .copied()
                    .filter(|l| refreshed.contains(l))
                    .collect();
                // Do not advance `i`: position i now holds an untested lit.
            }
            SolveResult::Sat => {
                // The candidate is essential; keep it and move on.
                i += 1;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn drops_redundant_assumptions() {
        let mut s = Solver::new();
        let lits: Vec<Lit> = (0..6).map(|_| s.new_var().positive()).collect();
        // Only lits[0] & lits[1] conflict.
        s.add_clause(&[!lits[0], !lits[1]]);
        assert_eq!(s.solve_with_assumptions(&lits), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        let min = minimize_core(&mut s, &core);
        assert_eq!(min.len(), 2);
        assert!(min.contains(&lits[0]) && min.contains(&lits[1]));
    }

    #[test]
    fn minimal_core_is_fixed_point() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve_with_assumptions(&[a, b]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        let min1 = minimize_core(&mut s, &core);
        let min2 = minimize_core(&mut s, &min1);
        assert_eq!(min1, min2);
    }

    #[test]
    fn overlapping_reasons() {
        // a -> x, b -> x, c -> !x: {a,c} and {b,c} are both minimal cores of
        // {a,b,c}. Minimisation must return one of them (size 2).
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        let x = s.new_var().positive();
        s.add_clause(&[!a, x]);
        s.add_clause(&[!b, x]);
        s.add_clause(&[!c, !x]);
        assert_eq!(s.solve_with_assumptions(&[a, b, c]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        let min = minimize_core(&mut s, &core);
        assert_eq!(min.len(), 2);
        assert!(min.contains(&c));
        assert!(min.contains(&a) || min.contains(&b));
        // Verify minimality: removing any member yields SAT.
        for &l in &min {
            let rest: Vec<Lit> = min.iter().copied().filter(|&m| m != l).collect();
            assert_eq!(s.solve_with_assumptions(&rest), SolveResult::Sat);
        }
    }

    #[test]
    fn empty_core_stays_empty() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        s.add_clause(&[a]);
        s.add_clause(&[!a]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(minimize_core(&mut s, &[]).is_empty());
    }
}
