//! Failed-literal probing at decision level 0.
//!
//! For each unassigned variable, both polarities are assumed in turn at a
//! throwaway decision level and unit-propagated. A polarity whose
//! propagation hits a conflict is a *failed literal*: its negation is
//! implied by the formula and can be asserted at the top level, fixing the
//! variable for good. If both polarities fail the formula is
//! unsatisfiable.
//!
//! Probing runs first in a simplify round — it is the only phase that uses
//! the (still valid) watch lists, and the units it finds make every later
//! occurrence-index phase cheaper.

use crate::lit::{LBool, Var};
use crate::solver::Solver;

/// Maximum probes (assumed literals) per simplify round; keeps the cost of
/// a round bounded on large bit-blasted instances while staying
/// deterministic (variables are probed in index order).
const PROBE_BUDGET: usize = 8192;

impl Solver {
    /// Probes literals at level 0, asserting the negation of every failed
    /// literal. Returns `false` if a top-level conflict was derived.
    pub(crate) fn probe_failed_literals(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let mut budget = PROBE_BUDGET;
        for idx in 0..self.num_vars() {
            if budget == 0 {
                break;
            }
            if self.eliminated[idx] {
                continue;
            }
            let v = Var::from_index(idx);
            for positive in [true, false] {
                if self.assigns[idx] != LBool::Undef || budget == 0 {
                    break;
                }
                budget -= 1;
                let p = v.lit(positive);
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(p, None);
                let failed = self.propagate().is_some();
                self.cancel_until(0);
                if failed {
                    self.stats.probed_units += 1;
                    // The failed-literal unit is RUP by construction: the
                    // probe *was* the reverse unit propagation.
                    self.proof_add(&[!p]);
                    self.unchecked_enqueue(!p, None);
                    if self.propagate().is_some() {
                        self.ok = false;
                        self.proof_empty();
                        return false;
                    }
                }
            }
        }
        true
    }
}
