//! Watch-list storage for the two-watched-literal scheme.
//!
//! Two layouts behind one accessor API, selected by
//! [`crate::solver::Config::flat_watches`]:
//!
//! * **Flat** (the default): every watcher of every literal lives in one
//!   contiguous `Vec<Watcher>` arena, with a per-literal `(offset, len,
//!   cap)` header. Propagation walks one cache-linear slice per literal
//!   instead of chasing a separate heap allocation per literal. A list
//!   that outgrows its capacity is relocated to the end of the arena with
//!   amortized doubling; the abandoned region becomes a lazy hole counted
//!   in `garbage`. Holes are reclaimed by [`WatchStore::compact`]
//!   (rebuild-in-place, order preserving) or by [`WatchStore::reset`],
//!   which the solver piggybacks on the clause-arena GC — right before a
//!   full watch rebuild the arena is dropped to empty, so reattachment
//!   repacks it from scratch.
//! * **Nested** (the seed layout, kept for the perf-gate baseline): the
//!   classic `Vec<Vec<Watcher>>`, one heap allocation per literal.
//!
//! The accessor methods take and return [`Watcher`] by value and index
//! lists by literal code, so the solver can interleave them with clause
//! arena borrows without fighting the borrow checker, in either mode.

use crate::clause::ClauseRef;
use crate::lit::Lit;

/// One watch-list entry: the clause and a cached "blocker" literal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    /// The watched clause.
    pub cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause needs no work (MiniSat's "blocker"). For binary
    /// clauses the blocker is the *whole* other half of the clause, so the
    /// fast path never loads the arena.
    pub blocker: Lit,
}

/// Placeholder entry for unused capacity inside a flat region. Never read:
/// every access is bounded by the header's `len`, not its `cap`.
const HOLE: Watcher = Watcher {
    cref: ClauseRef(u32::MAX),
    blocker: Lit(u32::MAX),
};

/// Per-literal header of the flat layout: the list occupies
/// `data[off .. off + len]` inside its reserved region
/// `data[off .. off + cap]`.
#[derive(Debug, Clone, Copy, Default)]
struct Head {
    off: u32,
    len: u32,
    cap: u32,
}

/// Minimum region capacity handed to a list on its first relocation.
const MIN_CAP: u32 = 4;

/// Watch lists for all literals, in the flat or nested layout.
#[derive(Debug)]
pub(crate) struct WatchStore {
    flat: bool,
    /// Nested layout (empty when `flat`).
    nested: Vec<Vec<Watcher>>,
    /// Flat arena (empty when `!flat`).
    data: Vec<Watcher>,
    heads: Vec<Head>,
    /// Arena slots orphaned by list relocation (whole abandoned regions).
    garbage: usize,
}

impl WatchStore {
    pub(crate) fn new(flat: bool) -> WatchStore {
        WatchStore {
            flat,
            nested: Vec::new(),
            data: Vec::new(),
            heads: Vec::new(),
            garbage: 0,
        }
    }

    /// Registers one more literal code (two calls per new variable).
    pub(crate) fn add_lit(&mut self) {
        if self.flat {
            self.heads.push(Head::default());
        } else {
            self.nested.push(Vec::new());
        }
    }

    /// Number of literal codes registered.
    pub(crate) fn num_codes(&self) -> usize {
        if self.flat {
            self.heads.len()
        } else {
            self.nested.len()
        }
    }

    /// Length of the watch list of literal code `code`.
    #[inline]
    pub(crate) fn len(&self, code: usize) -> usize {
        if self.flat {
            self.heads[code].len as usize
        } else {
            self.nested[code].len()
        }
    }

    /// The `i`-th watcher of `code`.
    #[inline]
    pub(crate) fn get(&self, code: usize, i: usize) -> Watcher {
        if self.flat {
            let h = self.heads[code];
            debug_assert!((i as u32) < h.len);
            self.data[h.off as usize + i]
        } else {
            self.nested[code][i]
        }
    }

    /// Overwrites the `i`-th watcher of `code`.
    #[inline]
    pub(crate) fn set(&mut self, code: usize, i: usize, w: Watcher) {
        if self.flat {
            let h = self.heads[code];
            debug_assert!((i as u32) < h.len);
            self.data[h.off as usize + i] = w;
        } else {
            self.nested[code][i] = w;
        }
    }

    /// Appends a watcher to `code`'s list, relocating the list to the end
    /// of the arena with doubled capacity when it is full (flat mode).
    #[inline]
    pub(crate) fn push(&mut self, code: usize, w: Watcher) {
        if !self.flat {
            self.nested[code].push(w);
            return;
        }
        let h = self.heads[code];
        if h.len < h.cap {
            self.data[(h.off + h.len) as usize] = w;
            self.heads[code].len = h.len + 1;
            return;
        }
        self.relocate_and_push(code, w);
    }

    /// Cold path of [`WatchStore::push`]: move `code`'s full region to the
    /// arena end with `max(MIN_CAP, 2 * cap)` capacity, leaving the old
    /// region as a lazy hole.
    #[cold]
    fn relocate_and_push(&mut self, code: usize, w: Watcher) {
        let h = self.heads[code];
        let new_cap = (h.cap * 2).max(MIN_CAP);
        let new_off = self.data.len() as u32;
        self.data.reserve(new_cap as usize);
        for i in 0..h.len {
            let x = self.data[(h.off + i) as usize];
            self.data.push(x);
        }
        self.data.push(w);
        // Physically own the whole region so later relocations of other
        // lists append past it, never into it.
        for _ in (h.len + 1)..new_cap {
            self.data.push(HOLE);
        }
        self.garbage += h.cap as usize;
        self.heads[code] = Head {
            off: new_off,
            len: h.len + 1,
            cap: new_cap,
        };
    }

    /// Shrinks `code`'s list to `new_len` (the freed slots stay inside the
    /// region's capacity and are reused by later pushes).
    #[inline]
    pub(crate) fn truncate(&mut self, code: usize, new_len: usize) {
        if self.flat {
            debug_assert!(new_len as u32 <= self.heads[code].len);
            self.heads[code].len = new_len as u32;
        } else {
            self.nested[code].truncate(new_len);
        }
    }

    /// Removes the first watcher of `code` that watches `cref`, preserving
    /// the order of the rest (propagation visit order is part of the
    /// solver's determinism contract). Returns whether one was found.
    pub(crate) fn remove_first(&mut self, code: usize, cref: ClauseRef) -> bool {
        let n = self.len(code);
        for i in 0..n {
            if self.get(code, i).cref == cref {
                for j in i..n - 1 {
                    let w = self.get(code, j + 1);
                    self.set(code, j, w);
                }
                self.truncate(code, n - 1);
                return true;
            }
        }
        false
    }

    /// The current watch list of `code` as a slice (checks and tests).
    pub(crate) fn slice(&self, code: usize) -> &[Watcher] {
        if self.flat {
            let h = self.heads[code];
            &self.data[h.off as usize..(h.off + h.len) as usize]
        } else {
            &self.nested[code]
        }
    }

    /// Empties every list but keeps the flat regions in place, so a rebuild
    /// that reattaches roughly the same clauses refills them without
    /// relocations.
    pub(crate) fn clear(&mut self) {
        if self.flat {
            for h in &mut self.heads {
                h.len = 0;
            }
        } else {
            for l in &mut self.nested {
                l.clear();
            }
        }
    }

    /// Drops every watcher failing `keep`, preserving order.
    pub(crate) fn retain<F: Fn(&Watcher) -> bool>(&mut self, keep: F) {
        if self.flat {
            for code in 0..self.heads.len() {
                let h = self.heads[code];
                let (off, len) = (h.off as usize, h.len as usize);
                let mut j = 0;
                for i in 0..len {
                    let w = self.data[off + i];
                    if keep(&w) {
                        self.data[off + j] = w;
                        j += 1;
                    }
                }
                self.heads[code].len = j as u32;
            }
        } else {
            for l in &mut self.nested {
                l.retain(|w| keep(w));
            }
        }
    }

    /// Visits every live watcher mutably (clause-arena compaction remaps
    /// the stored [`ClauseRef`]s through this).
    pub(crate) fn for_each_mut<F: FnMut(&mut Watcher)>(&mut self, mut f: F) {
        if self.flat {
            for code in 0..self.heads.len() {
                let h = self.heads[code];
                for i in 0..h.len as usize {
                    f(&mut self.data[h.off as usize + i]);
                }
            }
        } else {
            for l in &mut self.nested {
                for w in l.iter_mut() {
                    f(w);
                }
            }
        }
    }

    /// Whether relocation holes dominate the flat arena enough to justify an
    /// in-place compaction (never true in nested mode).
    pub(crate) fn should_compact(&self) -> bool {
        self.flat && self.data.len() >= 1024 && self.garbage * 2 > self.data.len()
    }

    /// Rebuilds the flat arena tightly in place, preserving per-list order
    /// and granting each list a power-of-two region so post-compaction
    /// pushes amortize as before. No-op in nested mode.
    pub(crate) fn compact(&mut self) {
        if !self.flat {
            return;
        }
        let mut packed: Vec<Watcher> = Vec::with_capacity(self.data.len() - self.garbage);
        for code in 0..self.heads.len() {
            let h = self.heads[code];
            let new_off = packed.len() as u32;
            let new_cap = if h.len == 0 {
                0
            } else {
                h.len.next_power_of_two().max(MIN_CAP)
            };
            for i in 0..h.len {
                packed.push(self.data[(h.off + i) as usize]);
            }
            packed.extend(std::iter::repeat_n(HOLE, (new_cap - h.len) as usize));
            self.heads[code] = Head {
                off: new_off,
                len: h.len,
                cap: new_cap,
            };
        }
        self.data = packed;
        self.garbage = 0;
    }

    /// Heap bytes currently held by the watch structures — the
    /// `sat.watch_bytes` gauge.
    pub(crate) fn bytes(&self) -> u64 {
        let w = std::mem::size_of::<Watcher>();
        if self.flat {
            (self.data.capacity() * w + self.heads.capacity() * std::mem::size_of::<Head>()) as u64
        } else {
            let inner: usize = self.nested.iter().map(|l| l.capacity() * w).sum();
            (inner + self.nested.capacity() * std::mem::size_of::<Vec<Watcher>>()) as u64
        }
    }
}

/// Bounded verification harness for flat-arena compaction under a
/// BVE-style workload: arbitrary interleavings of pushes (forcing
/// relocations, which orphan regions) and `remove_first` detachments (what
/// bounded variable elimination does to a dying clause's watchers), then a
/// compaction. The live watcher lists must survive byte-for-byte, in
/// order, with the arena usable afterwards. Proved by Kani under
/// `cargo kani`; compiled and concretely executed under `kani-harness`.
#[cfg(any(kani, feature = "kani-harness"))]
#[allow(dead_code)]
mod verification {
    use super::{WatchStore, Watcher};
    use crate::clause::ClauseRef;
    use crate::lit::Lit;

    #[cfg(kani)]
    fn arb_below(bound: usize) -> usize {
        let x: usize = kani::any();
        kani::assume(x < bound);
        x
    }

    #[cfg(not(kani))]
    fn arb_below(bound: usize) -> usize {
        use std::cell::Cell;
        thread_local! {
            static STATE: Cell<u64> = const { Cell::new(0xda3e_39cb_94b9_5bdb) };
        }
        STATE.with(|s| {
            let next = s
                .get()
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.set(next);
            (next >> 33) as usize % bound.max(1)
        })
    }

    #[cfg_attr(kani, kani::proof, kani::unwind(24))]
    pub fn compaction_preserves_live_watchers_in_order() {
        const CODES: usize = 2;
        const OPS: usize = 6;
        let mut store = WatchStore::new(true);
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); CODES];
        for _ in 0..CODES {
            store.add_lit();
        }
        let mut next_cref = 0u32;
        for _ in 0..OPS {
            let code = arb_below(CODES);
            if arb_below(4) == 0 && !model[code].is_empty() {
                // BVE detaches a dying clause's watcher.
                let victim = model[code][arb_below(model[code].len())];
                assert!(store.remove_first(code, ClauseRef(victim)));
                let pos = model[code].iter().position(|&c| c == victim).unwrap();
                model[code].remove(pos);
            } else {
                store.push(
                    code,
                    Watcher {
                        cref: ClauseRef(next_cref),
                        blocker: Lit(0),
                    },
                );
                model[code].push(next_cref);
                next_cref += 1;
            }
        }
        store.compact();
        assert_eq!(store.garbage, 0, "compaction reclaims every hole");
        for (code, want) in model.iter().enumerate() {
            let got: Vec<u32> = store.slice(code).iter().map(|w| w.cref.0).collect();
            assert_eq!(&got, want, "list {code} must survive compaction in order");
        }
        // The arena stays writable: a post-compaction push lands normally.
        store.push(
            0,
            Watcher {
                cref: ClauseRef(next_cref),
                blocker: Lit(0),
            },
        );
        assert_eq!(
            store.slice(0).last().map(|w| w.cref.0),
            Some(next_cref),
            "post-compaction push must append"
        );
    }

    #[cfg(all(test, not(kani)))]
    mod exec {
        #[test]
        fn harness_runs_concretely() {
            for _ in 0..128 {
                super::compaction_preserves_live_watchers_in_order();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(c: u32) -> Watcher {
        Watcher {
            cref: ClauseRef(c),
            blocker: Lit(0),
        }
    }

    fn contents(s: &WatchStore, code: usize) -> Vec<u32> {
        s.slice(code).iter().map(|x| x.cref.0).collect()
    }

    #[test]
    fn flat_push_grow_and_order() {
        let mut s = WatchStore::new(true);
        for _ in 0..4 {
            s.add_lit();
        }
        // Interleave pushes so lists relocate around each other.
        for i in 0..20u32 {
            s.push((i % 4) as usize, w(i));
        }
        for code in 0..4 {
            let got = contents(&s, code);
            let want: Vec<u32> = (0..20).filter(|i| (i % 4) as usize == code).collect();
            assert_eq!(got, want, "list {code} lost order");
        }
    }

    #[test]
    fn flat_compact_reclaims_holes_and_preserves_order() {
        let mut s = WatchStore::new(true);
        for _ in 0..3 {
            s.add_lit();
        }
        for i in 0..300u32 {
            s.push((i % 3) as usize, w(i));
        }
        assert!(s.garbage > 0, "relocations must leave holes");
        let before: Vec<Vec<u32>> = (0..3).map(|c| contents(&s, c)).collect();
        s.compact();
        assert_eq!(s.garbage, 0);
        let after: Vec<Vec<u32>> = (0..3).map(|c| contents(&s, c)).collect();
        assert_eq!(before, after);
        // Lists keep working after compaction.
        s.push(1, w(999));
        assert_eq!(*contents(&s, 1).last().unwrap(), 999);
    }

    #[test]
    fn flat_remove_first_preserves_rest() {
        let mut s = WatchStore::new(true);
        s.add_lit();
        for i in [7u32, 8, 9, 8, 10] {
            s.push(0, w(i));
        }
        assert!(s.remove_first(0, ClauseRef(8)));
        assert_eq!(contents(&s, 0), vec![7, 9, 8, 10]);
        assert!(!s.remove_first(0, ClauseRef(42)));
    }

    #[test]
    fn modes_agree_under_mixed_workload() {
        let mut flat = WatchStore::new(true);
        let mut nested = WatchStore::new(false);
        for _ in 0..6 {
            flat.add_lit();
            nested.add_lit();
        }
        let mut x = 0x12345678u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let op = rng() % 4;
            let code = (rng() % 6) as usize;
            match op {
                0 | 1 => {
                    let c = (rng() % 50) as u32;
                    flat.push(code, w(c));
                    nested.push(code, w(c));
                }
                2 => {
                    let c = ClauseRef((rng() % 50) as u32);
                    assert_eq!(flat.remove_first(code, c), nested.remove_first(code, c));
                }
                _ => {
                    if flat.len(code) > 0 {
                        let n = (rng() as usize) % flat.len(code);
                        flat.truncate(code, n);
                        nested.truncate(code, n);
                    }
                }
            }
            if flat.should_compact() {
                flat.compact();
            }
        }
        for code in 0..6 {
            assert_eq!(contents(&flat, code), contents(&nested, code));
        }
        flat.retain(|w| w.cref.0 % 2 == 0);
        nested.retain(|w| w.cref.0 % 2 == 0);
        for code in 0..6 {
            assert_eq!(contents(&flat, code), contents(&nested, code));
        }
    }
}
