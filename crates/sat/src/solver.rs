//! The CDCL solver.
//!
//! A conflict-driven clause-learning solver built around a flat clause
//! arena (see [`crate::clause`]) with:
//!
//! * two-literal watching with blocker literals, plus a binary-clause fast
//!   path that resolves two-literal clauses entirely from the watcher entry
//!   (no arena load),
//! * first-UIP conflict analysis with basic clause minimisation and
//!   on-the-fly LBD refresh of reason clauses,
//! * VSIDS decision ordering with phase saving, extended with best-trail
//!   phase targeting reset on restarts,
//! * Luby-sequence or glucose-style adaptive restarts (recent-LBD EMA vs.
//!   the global mean, with trail-size restart blocking), selected by
//!   [`Config::restart_mode`],
//! * a three-tier learnt-clause database (core/mid/local by LBD) where only
//!   the local tier is reduced and idle mid-tier clauses are demoted,
//! * in-place garbage compaction of the clause arena instead of
//!   rebuild-from-scratch reductions,
//! * incremental solving under assumptions with UNSAT-core extraction.
//!
//! The solver is the decision engine behind every query made by the
//! H-Houdini abduction oracle, where the assumptions are predicate indicator
//! literals and the UNSAT core *is* the abduct.

use crate::clause::{ClauseDb, ClauseRef, Tier};
use crate::heap::VarOrderHeap;
use crate::lit::{LBool, Lit, Var};
use crate::proof::ProofSink;
use crate::watch::{WatchStore, Watcher};

/// Truth value of `l` under `assigns`, as a free function so propagation can
/// hold a mutable borrow of the clause arena at the same time.
#[inline]
fn val(assigns: &[LBool], l: Lit) -> LBool {
    assigns[l.var().index()].of_lit(l)
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; the
    /// involved assumptions are available from [`Solver::unsat_core`].
    Unsat,
}

/// Outcome of a [`Solver::solve_limited`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitedResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; the
    /// involved assumptions are available from [`Solver::unsat_core`].
    Unsat,
    /// The conflict budget was exhausted before a verdict. The search state
    /// (learnt clauses, activities, phases) persists, so a later
    /// [`Solver::solve_limited`] or [`Solver::solve_with_assumptions`] call
    /// resumes from the accumulated knowledge.
    Unknown,
}

/// Restart strategy selector (see [`Config::restart_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// Fixed-schedule restarts: the Luby sequence scaled by
    /// [`Config::restart_base`].
    Luby,
    /// Glucose-style adaptive restarts: restart when the recent-LBD EMA
    /// exceeds [`Config::restart_margin`] times the global LBD mean, with
    /// trail-size-based restart blocking (a conflict reached with a trail
    /// much deeper than average suppresses a pending restart, because the
    /// current assignment looks close to a model).
    Glucose,
}

/// Tunable solver parameters.
///
/// The defaults select the modern heuristics (adaptive restarts, tiered
/// learnt DB, best-phase targeting); [`Config::seed_baseline`] approximates
/// the original fixed-schedule solver on the same arena backend, which is
/// what the perf gates compare against.
#[derive(Debug, Clone)]
pub struct Config {
    /// Multiplicative decay applied to variable activities per conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities per conflict.
    pub clause_decay: f64,
    /// Conflicts in the base restart interval (scaled by the Luby sequence;
    /// used only in [`RestartMode::Luby`]).
    pub restart_base: u64,
    /// Initial cap on reducible (local-tier) learnt clauses before database
    /// reduction, as a fraction of live clauses.
    pub learnt_size_factor: f64,
    /// Growth of the learnt-clause cap after each reduction.
    pub learnt_size_inc: f64,
    /// Conflicts between automatic [`Solver::simplify`] runs at the start of
    /// a solve call. `0` disables automatic inprocessing; explicit
    /// `simplify()` calls still work. The cadence is keyed to the cumulative
    /// conflict counter, which is a pure function of the query history, so
    /// identical query sequences simplify identically (determinism).
    pub simplify_interval: u64,
    /// Restart strategy.
    pub restart_mode: RestartMode,
    /// EMA smoothing factor for the recent-LBD average
    /// ([`RestartMode::Glucose`] only).
    pub restart_ema_alpha: f64,
    /// Adaptive restart trigger: restart when `recent_lbd_ema >
    /// restart_margin * global_lbd_mean`.
    pub restart_margin: f64,
    /// Minimum conflicts between adaptive restarts (also the warmup before
    /// the LBD averages are trusted).
    pub restart_min_interval: u64,
    /// Restart blocking: a conflict whose trail is deeper than
    /// `restart_block_margin * trail_ema` resets the recent-LBD EMA to the
    /// global mean, deferring the restart.
    pub restart_block_margin: f64,
    /// Learnt clauses with LBD at or below this are core tier: kept forever.
    pub core_lbd: u32,
    /// Learnt clauses with LBD at or below this (and above
    /// [`Config::core_lbd`]) start in the mid tier: they survive reductions
    /// while used, and are demoted to the local tier after an idle round.
    pub tier2_lbd: u32,
    /// Track the deepest trail seen in the current solve and reset decision
    /// phases to it on every restart (best-phase targeting).
    pub save_best_phases: bool,
    /// Fraction of eligible local-tier clauses deleted per reduction.
    pub reduce_fraction: f64,
    /// Garbage-compact the clause arena when at least this fraction of it
    /// is dead words.
    pub compact_garbage_frac: f64,
    /// Keep two-literal clauses in the dedicated binary watch lists, where
    /// the watcher's blocker *is* the implied literal and propagation never
    /// loads the clause arena. When off, binaries are watched like any
    /// other clause (the seed solver's behaviour).
    pub inline_binaries: bool,
    /// Check the watcher's blocker literal before loading a clause from the
    /// arena during propagation. When off, every visited watcher pays the
    /// arena load (the seed solver's behaviour).
    pub use_blockers: bool,
    /// Chronological backtracking (Nadel/Ryvchin): a conflict whose backjump
    /// would discard more than [`Config::chrono_threshold`] decision levels
    /// backtracks a single level instead, keeping the (still consistent)
    /// deeper partial assignment. The asserting literal is then assigned at
    /// its true assertion level, which leaves out-of-order entries on the
    /// trail; `Solver::cancel_until`, conflict analysis and UNSAT-core
    /// extraction all account for them. When off, every conflict backjumps
    /// (the seed solver's behaviour).
    pub chrono: bool,
    /// Backjump distance (in decision levels) above which chronological
    /// backtracking engages. Only read when [`Config::chrono`] is on.
    ///
    /// The default is deliberately high: chrono pays off on deep monolithic
    /// solves (it is what makes the HOUDINI/SORCAR baselines tractable at
    /// scale) but adds re-derivation churn on the short assumption-heavy
    /// cone queries the hierarchical engine issues, so it should engage only
    /// when a conflict would throw away a genuinely long trail.
    pub chrono_threshold: u32,
    /// Store all watch lists in one flat contiguous arena with per-literal
    /// `(offset, len, cap)` headers instead of a `Vec` per literal, so the
    /// propagation hot loop walks cache-linear slices. Relocation holes are
    /// compacted periodically, piggybacked on the clause-arena GC. When off,
    /// the seed solver's nested `Vec<Vec<_>>` layout is used.
    pub flat_watches: bool,
    /// Vivify long clauses during [`Solver::simplify`]: propagate each
    /// candidate clause's negated literals at level 0 and use the resulting
    /// implications/conflicts to delete satisfied-by-implication clauses and
    /// strengthen the rest in place. All rewrites are DRAT-logged
    /// (strengthened clause added before the original is deleted), so proof
    /// streams stay independently checkable. When off, simplify performs no
    /// vivification (the seed solver's behaviour).
    pub vivify: bool,
    /// Propagation budget per vivification pass: once a pass has spent this
    /// many propagations, no further candidate clauses are started. The
    /// budget is counted in propagations (not wall-clock), so identical
    /// query sequences vivify identically (determinism).
    pub vivify_budget: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            learnt_size_factor: 1.0 / 3.0,
            learnt_size_inc: 1.1,
            simplify_interval: 2000,
            restart_mode: RestartMode::Glucose,
            restart_ema_alpha: 1.0 / 32.0,
            restart_margin: 1.25,
            restart_min_interval: 50,
            restart_block_margin: 1.4,
            core_lbd: 2,
            tier2_lbd: 6,
            save_best_phases: true,
            reduce_fraction: 0.5,
            compact_garbage_frac: 0.25,
            inline_binaries: true,
            use_blockers: true,
            chrono: true,
            chrono_threshold: 500,
            flat_watches: true,
            vivify: true,
            vivify_budget: 10_000,
        }
    }
}

impl Config {
    /// The seed solver's behaviour on the arena backend: Luby restarts, no
    /// best-phase targeting, a flat learnt DB (an empty mid tier, so
    /// everything above glue is reducible by activity, as the pre-arena
    /// reduce did), binaries watched like ordinary clauses, no blocker
    /// short-circuit, nested per-literal watch `Vec`s, and no vivification.
    /// The perf-gate baseline: comparing `Config::default()` against this
    /// measures the raw-speed PRs' features on identical workloads, with the
    /// shared flat clause-arena layout as a conservative floor (the real
    /// seed paid an extra pointer chase per clause on top).
    pub fn seed_baseline() -> Config {
        Config {
            restart_mode: RestartMode::Luby,
            tier2_lbd: 2,
            save_best_phases: false,
            inline_binaries: false,
            use_blockers: false,
            chrono: false,
            flat_watches: false,
            vivify: false,
            ..Config::default()
        }
    }

    /// Checks the knobs for internal consistency, returning the first
    /// violated rule. The 22 knobs otherwise accept silent nonsense
    /// combinations (a core tier wider than the mid tier, decays outside
    /// `(0, 1)`, zero restart intervals); [`Solver::with_config`]
    /// debug-asserts this so misconfigurations fail loudly in tests rather
    /// than degenerating quietly in production runs.
    pub fn validate(&self) -> Result<(), String> {
        fn open_unit(name: &str, v: f64) -> Result<(), String> {
            if v > 0.0 && v < 1.0 {
                Ok(())
            } else {
                Err(format!("{name} must lie in (0, 1), got {v}"))
            }
        }
        open_unit("var_decay", self.var_decay)?;
        open_unit("clause_decay", self.clause_decay)?;
        open_unit("restart_ema_alpha", self.restart_ema_alpha)?;
        if self.restart_base == 0 {
            return Err("restart_base must be nonzero".into());
        }
        if self.learnt_size_factor <= 0.0 {
            return Err(format!(
                "learnt_size_factor must be positive, got {}",
                self.learnt_size_factor
            ));
        }
        if self.learnt_size_inc < 1.0 {
            return Err(format!(
                "learnt_size_inc below 1.0 shrinks the learnt cap, got {}",
                self.learnt_size_inc
            ));
        }
        if self.restart_margin < 1.0 {
            return Err(format!(
                "restart_margin below 1.0 restarts on every conflict, got {}",
                self.restart_margin
            ));
        }
        if self.restart_block_margin < 1.0 {
            return Err(format!(
                "restart_block_margin below 1.0 blocks every restart, got {}",
                self.restart_block_margin
            ));
        }
        if self.restart_min_interval == 0 {
            return Err("restart_min_interval must be nonzero".into());
        }
        if self.core_lbd == 0 {
            return Err("core_lbd must be nonzero (learnt LBDs start at 1)".into());
        }
        if self.core_lbd > self.tier2_lbd {
            return Err(format!(
                "core_lbd ({}) must not exceed tier2_lbd ({})",
                self.core_lbd, self.tier2_lbd
            ));
        }
        if !(0.0..=1.0).contains(&self.reduce_fraction) {
            return Err(format!(
                "reduce_fraction must lie in [0, 1], got {}",
                self.reduce_fraction
            ));
        }
        if !(self.compact_garbage_frac > 0.0 && self.compact_garbage_frac <= 1.0) {
            return Err(format!(
                "compact_garbage_frac must lie in (0, 1], got {}",
                self.compact_garbage_frac
            ));
        }
        if self.chrono_threshold == 0 {
            return Err("chrono_threshold must be nonzero".into());
        }
        if self.vivify && self.vivify_budget == 0 {
            return Err("vivify_budget must be nonzero while vivify is on".into());
        }
        Ok(())
    }
}

/// Cumulative counters, exposed for the paper's Figure 4 style breakdowns.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Number of `solve`/`solve_with_assumptions` calls.
    pub solves: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// [`Solver::simplify`] runs (explicit or cadence-triggered).
    pub simplifies: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Eliminated variables re-introduced because a later clause or
    /// assumption referenced them.
    pub restored_vars: u64,
    /// Clauses deleted by backward subsumption.
    pub subsumed_clauses: u64,
    /// Literals removed by self-subsuming resolution (strengthening).
    pub strengthened_lits: u64,
    /// Unit literals derived by failed-literal probing.
    pub probed_units: u64,
    /// Learnt-database reductions performed.
    pub reduces: u64,
    /// Adaptive restarts suppressed by the trail-size blocking rule.
    pub restart_blocks: u64,
    /// In-place garbage compactions of the clause arena.
    pub compactions: u64,
    /// Cumulative wall-clock microseconds spent in database reduction
    /// (including watcher scrubbing and compaction it triggers).
    pub reduce_time_us: u64,
    /// Current clause-arena size in bytes — a gauge refreshed after every
    /// solve and reduction, not a monotone counter.
    pub arena_bytes: u64,
    /// Conflicts resolved by chronological (single-level) backtracking
    /// instead of a full backjump (see [`Config::chrono`]).
    pub chrono_backtracks: u64,
    /// [`Solver::solve_limited`] calls — each is one budgeted round of a
    /// portfolio race (or any other caller-paced solve).
    pub budget_rounds: u64,
    /// Literals removed from clauses by vivification (see
    /// [`Config::vivify`]).
    pub vivified_lits: u64,
    /// Clauses deleted outright by vivification (satisfied by implication at
    /// level 0 or collapsed to a unit).
    pub vivified_deleted: u64,
    /// Current heap footprint of the watch lists in bytes — a gauge
    /// refreshed after every solve, not a monotone counter.
    pub watch_bytes: u64,
}

/// EMA smoothing for the average trail size at conflicts (restart
/// blocking). Fixed: the trail average only gates a heuristic.
const TRAIL_EMA_ALPHA: f64 = 1.0 / 256.0;

/// Outcome of one [`Solver::search`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchOutcome {
    /// A definitive verdict was reached.
    Done(SolveResult),
    /// The caller's conflict ceiling was reached; the solve suspends.
    Budget,
    /// The restart policy fired; the driver loop restarts the search.
    Restart,
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use hh_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[!a.positive()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert!(s.model_value(b.positive()));
/// ```
#[derive(Debug)]
pub struct Solver {
    pub(crate) config: Config,
    pub(crate) db: ClauseDb,
    /// Watch lists for clauses of three or more literals, indexed by literal
    /// code: list `p` holds clauses that must be inspected when `p` becomes
    /// true (they watch `!p`). Flat-arena or nested layout per
    /// [`Config::flat_watches`] (see [`crate::watch`]).
    watches: WatchStore,
    /// Watch lists for binary clauses, processed before `watches`: the
    /// watcher's blocker is the implied literal, so the fast path needs no
    /// arena access at all.
    bin_watches: WatchStore,
    pub(crate) assigns: Vec<LBool>,
    /// Saved phase per variable, used as the decision polarity.
    pub(crate) phase: Vec<bool>,
    /// Phases captured at the deepest trail of the current solve; restarts
    /// reset `phase` to this when [`Config::save_best_phases`] is on.
    pub(crate) best_phase: Vec<bool>,
    /// Trail depth at which `best_phase` was captured (per solve).
    pub(crate) best_trail: usize,
    pub(crate) activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f32,
    pub(crate) order: VarOrderHeap,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    pub(crate) level: Vec<u32>,
    /// Scratch flags for conflict analysis, indexed by variable.
    seen: Vec<bool>,
    /// False iff a top-level conflict has been derived (formula is UNSAT
    /// regardless of assumptions).
    pub(crate) ok: bool,
    /// An input clause falsified outright by the level-0 trail at
    /// [`Solver::add_clause`] time. The clause database never stores it, but
    /// [`Solver::formula_clauses`] must include it — without it the
    /// snapshot would lose the input-level contradiction and no proof
    /// stream could refute it.
    input_conflict: Option<Vec<Lit>>,
    pub(crate) model: Vec<LBool>,
    core: Vec<Lit>,
    max_learnts: f64,
    pub(crate) stats: SolverStats,
    /// Frozen variables are never eliminated by inprocessing; assumption
    /// variables are frozen automatically, external code can use
    /// [`Solver::freeze`] for variables it will reference later.
    pub(crate) frozen: Vec<bool>,
    /// Variables currently removed by bounded variable elimination.
    pub(crate) eliminated: Vec<bool>,
    /// Elimination record in elimination order: each entry holds the
    /// eliminated variable and every original clause it occurred in, used
    /// for model reconstruction and for restoring the variable on demand.
    pub(crate) elim_stack: Vec<(Var, Vec<Vec<Lit>>)>,
    /// Value of `stats.conflicts` at the last simplify run (cadence anchor).
    last_simplify_conflicts: u64,
    /// Per-level stamps for O(clause) LBD computation: a level is counted
    /// once per `lbd_stamp` generation.
    lbd_levels: Vec<u64>,
    lbd_stamp: u64,
    /// Recent-LBD EMA (glucose restarts).
    lbd_fast: f64,
    /// Sum and count of all learnt-clause LBDs (global mean).
    lbd_sum: f64,
    lbd_count: u64,
    /// EMA of the trail size at conflicts (restart blocking).
    trail_ema: f64,
    /// Optional DRAT proof stream (see [`crate::proof::ProofSink`]).
    proof: Option<Box<dyn ProofSink>>,
    /// Whether the permanent empty clause has been logged (the formula
    /// itself, not just an assumption set, was refuted). Keeps the stream
    /// free of duplicate empty clauses across repeated solve calls.
    proof_done: bool,
    /// Optional budget-round observer (see [`BudgetProbe`]).
    budget_probe: Option<Box<dyn BudgetProbe>>,
}

/// Observer of budgeted solve rounds: [`Solver::solve_limited`] invokes
/// [`BudgetProbe::on_round`] at the start of every round, before any
/// search. Budget rounds are the solver's deterministic unit of progress
/// (the portfolio driver races arms in rounds, not wall-clock), so they
/// are the natural boundary for simulation tooling — hh-vopr's fault
/// injector uses this hook to align events like proof-sink detach with an
/// exact round, reproducibly from a seed.
pub trait BudgetProbe: std::fmt::Debug + Send {
    /// Called with the 1-based cumulative round number (the value
    /// [`SolverStats::budget_rounds`] was just incremented to).
    fn on_round(&mut self, round: u64);
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default [`Config`].
    pub fn new() -> Solver {
        Solver::with_config(Config::default())
    }

    /// Creates an empty solver with the given configuration.
    ///
    /// In debug builds the configuration is checked with
    /// [`Config::validate`] and an invalid one panics.
    pub fn with_config(config: Config) -> Solver {
        #[cfg(debug_assertions)]
        if let Err(msg) = config.validate() {
            panic!("invalid hh-sat Config: {msg}");
        }
        let flat = config.flat_watches;
        Solver {
            config,
            db: ClauseDb::new(),
            watches: WatchStore::new(flat),
            bin_watches: WatchStore::new(flat),
            assigns: Vec::new(),
            phase: Vec::new(),
            best_phase: Vec::new(),
            best_trail: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarOrderHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: Vec::new(),
            level: Vec::new(),
            seen: Vec::new(),
            ok: true,
            input_conflict: None,
            model: Vec::new(),
            core: Vec::new(),
            max_learnts: 0.0,
            stats: SolverStats::default(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            last_simplify_conflicts: 0,
            lbd_levels: vec![0],
            lbd_stamp: 0,
            lbd_fast: 0.0,
            lbd_sum: 0.0,
            lbd_count: 0,
            trail_ema: 0.0,
            proof: None,
            proof_done: false,
            budget_probe: None,
        }
    }

    // ------------------------------------------------------------------
    // Proof logging
    // ------------------------------------------------------------------

    /// Attaches a DRAT proof sink. From this point on every learnt clause,
    /// inprocessing rewrite and clause deletion is streamed to `sink` (see
    /// the [`crate::proof`] module for the exact conventions). For a
    /// checkable proof the sink should be attached before the first solve
    /// call, and the checker should be given the formula as captured by
    /// [`Solver::formula_clauses`].
    ///
    /// Attaching a sink disables [`Solver::import_clauses`]: externally
    /// imported clauses are not derivable from this solver's own stream.
    pub fn set_proof_sink(&mut self, sink: Box<dyn ProofSink>) {
        self.proof = Some(sink);
    }

    /// Detaches and returns the proof sink, if any.
    pub fn take_proof_sink(&mut self) -> Option<Box<dyn ProofSink>> {
        self.proof.take()
    }

    /// Attaches a [`BudgetProbe`] fired at every future budget-round
    /// boundary ([`Solver::solve_limited`]). Observation only — the probe
    /// cannot alter the search, so attaching one never changes a verdict.
    pub fn set_budget_probe(&mut self, probe: Box<dyn BudgetProbe>) {
        self.budget_probe = Some(probe);
    }

    /// Detaches and returns the budget probe, if any.
    pub fn take_budget_probe(&mut self) -> Option<Box<dyn BudgetProbe>> {
        self.budget_probe.take()
    }

    /// Whether a proof sink is currently attached. This is the exact branch
    /// every logging site pays when proof logging is off, so it doubles as
    /// the probe for overhead measurements.
    #[inline]
    pub fn proof_active(&self) -> bool {
        self.proof.is_some()
    }

    /// Visits the current formula as seen by a proof checker: the level-0
    /// implied units (as one-literal slices) followed by every live
    /// non-learnt clause, borrowed straight from the clause arena — no
    /// per-clause allocation.
    ///
    /// Taken right after clause loading (before any solve call) this is the
    /// input formula a DRAT stream from this solver refutes. Must be called
    /// at decision level 0.
    pub fn visit_formula_clauses<F: FnMut(&[Lit])>(&self, mut visit: F) {
        debug_assert_eq!(self.decision_level(), 0);
        let bound = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &l in &self.trail[..bound] {
            visit(std::slice::from_ref(&l));
        }
        for cref in self.db.live_refs() {
            if !self.db.is_learnt(cref) {
                visit(self.db.lits(cref));
            }
        }
        if let Some(c) = &self.input_conflict {
            visit(c);
        }
    }

    /// [`Solver::visit_formula_clauses`] collected into owned clauses, for
    /// callers that need to keep the snapshot.
    pub fn formula_clauses(&self) -> Vec<Vec<Lit>> {
        let mut out = Vec::new();
        self.visit_formula_clauses(|c| out.push(c.to_vec()));
        out
    }

    /// Logs a derived clause to the proof stream, if one is attached.
    #[inline]
    pub(crate) fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(sink) = &mut self.proof {
            sink.add_clause(lits);
        }
    }

    /// Logs a clause deletion to the proof stream, if one is attached.
    #[inline]
    pub(crate) fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(sink) = &mut self.proof {
            sink.delete_clause(lits);
        }
    }

    /// Logs the permanent empty clause (idempotent). Called at every site
    /// that sets `ok = false`: once the formula is refuted the stream is
    /// complete and further lines would be noise.
    #[inline]
    pub(crate) fn proof_empty(&mut self) {
        if self.proof.is_some() && !self.proof_done {
            self.proof_done = true;
            self.proof_add(&[]);
        }
    }

    /// Deletes `cref` from the clause database, logging the deletion.
    /// Deletion in the arena is a lazy mark, so the literals can be streamed
    /// to the proof sink directly from the (still readable) slot — no clone.
    pub(crate) fn delete_clause_logged(&mut self, cref: ClauseRef) {
        if let Some(sink) = self.proof.as_mut() {
            sink.delete_clause(self.db.lits(cref));
        }
        self.db.delete(cref);
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses currently stored (including learnt ones).
    pub fn num_clauses(&self) -> usize {
        self.db.num_clauses()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.best_phase.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.add_lit();
        self.watches.add_lit();
        self.bin_watches.add_lit();
        self.bin_watches.add_lit();
        self.lbd_levels.push(0);
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Adds a clause (a disjunction of literals) to the formula.
    ///
    /// Returns `false` if the formula is now known to be unsatisfiable at the
    /// top level (e.g. after adding an empty or immediately-conflicting
    /// clause). Duplicated literals are removed and tautological clauses are
    /// silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if any literal refers to a variable that was not created with
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        for l in &c {
            assert!(l.var().index() < self.num_vars(), "literal out of range");
        }
        c.sort_unstable();
        c.dedup();
        // Filter literal values at level 0 first: a satisfied literal drops
        // the whole clause, a falsified one is removed. Only then scan the
        // survivors for tautology — the sort order is preserved by the
        // filter, so `l` and `!l` are still adjacent if both remain.
        let mut filtered = Vec::with_capacity(c.len());
        for &l in &c {
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        for w in filtered.windows(2) {
            if w[1] == !w[0] {
                return true; // tautology: contains both l and !l
            }
        }
        // If the clause mentions variables removed by variable elimination,
        // bring them (and, transitively, anything their defining clauses
        // mention) back before constraining them further: the eliminated
        // form of the formula says nothing about such variables, so adding
        // this clause as-is would be unsound. Restoring may propagate new
        // top-level units, so re-filter afterwards.
        if filtered.iter().any(|l| self.eliminated[l.var().index()]) {
            let vars: Vec<Var> = filtered.iter().map(|l| l.var()).collect();
            for v in vars {
                if self.eliminated[v.index()] && !self.restore_var(v) {
                    return false;
                }
            }
            let unfiltered = std::mem::take(&mut filtered);
            for l in unfiltered {
                match self.lit_value(l) {
                    LBool::True => return true,
                    LBool::False => {}
                    LBool::Undef => filtered.push(l),
                }
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                if self.input_conflict.is_none() {
                    self.input_conflict = Some(c);
                }
                self.proof_empty();
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.proof_empty();
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&filtered, false, 0, Tier::Core);
                self.attach(cref);
                true
            }
        }
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::unsat_core`] returns the subset
    /// of `assumptions` involved in the refutation. The solver remains usable
    /// afterwards (incremental interface): more variables, clauses and solve
    /// calls may follow.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_traced(assumptions, None)
            .expect("an unbudgeted solve always concludes")
    }

    /// Solves under assumptions with a conflict budget.
    ///
    /// Runs the exact CDCL loop of [`Solver::solve_with_assumptions`], but
    /// suspends and returns [`LimitedResult::Unknown`] once `conflict_budget`
    /// conflicts have been analysed within this call without reaching a
    /// verdict. Suspension is lossless — learnt clauses, activities and
    /// saved phases persist — so a later `solve_limited` (or an unbudgeted
    /// solve) resumes from the accumulated knowledge, and a call whose
    /// budget is never hit behaves bit-identically to
    /// [`Solver::solve_with_assumptions`]. This is the primitive the
    /// portfolio driver in `hh-smt` uses to race solver configurations in
    /// deterministic budget rounds instead of wall-clock time.
    pub fn solve_limited(&mut self, assumptions: &[Lit], conflict_budget: u64) -> LimitedResult {
        self.stats.budget_rounds += 1;
        if let Some(probe) = self.budget_probe.as_mut() {
            probe.on_round(self.stats.budget_rounds);
        }
        match self.solve_traced(assumptions, Some(conflict_budget)) {
            Some(SolveResult::Sat) => LimitedResult::Sat,
            Some(SolveResult::Unsat) => LimitedResult::Unsat,
            None => LimitedResult::Unknown,
        }
    }

    /// Shared trace wrapper for the solve entry points: spans the call and
    /// emits per-call counter deltas (split out so the early returns share
    /// one recording point).
    fn solve_traced(&mut self, assumptions: &[Lit], budget: Option<u64>) -> Option<SolveResult> {
        let _span = hh_trace::span!("sat", "sat.solve");
        let before = (
            self.stats.propagations,
            self.stats.conflicts,
            self.stats.restarts,
            self.stats.reduces,
            self.stats.arena_bytes,
            self.stats.chrono_backtracks,
            self.stats.vivified_lits,
            self.stats.vivified_deleted,
            self.stats.watch_bytes,
        );
        let result = self.solve_internal(assumptions, budget);
        self.stats.arena_bytes = (self.db.arena_words() * 4) as u64;
        self.stats.watch_bytes = self.watches.bytes() + self.bin_watches.bytes();
        if hh_trace::enabled() {
            hh_trace::counter!(
                "sat",
                "sat.propagations",
                self.stats.propagations - before.0
            );
            hh_trace::counter!("sat", "sat.conflicts", self.stats.conflicts - before.1);
            hh_trace::counter!("sat", "sat.restarts", self.stats.restarts - before.2);
            hh_trace::counter!("sat", "sat.reduce", self.stats.reduces - before.3);
            // Arena size is a gauge: emit the signed delta so the trace
            // total tracks the live arena footprint across solves.
            hh_trace::counter!(
                "sat",
                "sat.arena_bytes",
                self.stats.arena_bytes as i64 - before.4 as i64
            );
            hh_trace::counter!(
                "sat",
                "sat.chrono_backtracks",
                self.stats.chrono_backtracks - before.5
            );
            hh_trace::counter!(
                "sat",
                "sat.vivified_lits",
                self.stats.vivified_lits - before.6
            );
            hh_trace::counter!(
                "sat",
                "sat.vivified_deleted",
                self.stats.vivified_deleted - before.7
            );
            // Like the arena size, the watch footprint is a gauge: the
            // signed delta keeps the trace total equal to the live value.
            hh_trace::counter!(
                "sat",
                "sat.watch_bytes",
                self.stats.watch_bytes as i64 - before.8 as i64
            );
            if budget.is_some() {
                hh_trace::counter!("sat", "sat.budget_rounds", 1u64);
            }
        }
        result
    }

    /// The CDCL driver loop. `budget` is a per-call conflict allowance:
    /// `None` runs to a verdict, `Some(n)` suspends (returning `None`) once
    /// `n` conflicts have been analysed in this call, always at decision
    /// level 0 with all conflict handling complete, so the suspended state
    /// is exactly a restart point.
    fn solve_internal(&mut self, assumptions: &[Lit], budget: Option<u64>) -> Option<SolveResult> {
        self.stats.solves += 1;
        self.model.clear();
        self.core.clear();
        if !self.ok {
            self.proof_empty();
            return Some(SolveResult::Unsat);
        }
        self.cancel_until(0);
        // Assumption variables must survive inprocessing: freeze them, and
        // restore any that an earlier simplify round already eliminated.
        for a in assumptions {
            let v = a.var();
            self.frozen[v.index()] = true;
            if self.eliminated[v.index()] && !self.restore_var(v) {
                return Some(SolveResult::Unsat);
            }
        }
        if self.config.simplify_interval > 0
            && self.stats.conflicts - self.last_simplify_conflicts >= self.config.simplify_interval
            && !self.simplify()
        {
            return Some(SolveResult::Unsat);
        }
        self.max_learnts = (self.db.num_clauses() as f64) * self.config.learnt_size_factor + 1000.0;
        if self.config.save_best_phases {
            // Seed the best-phase snapshot from the saved phases so a restart
            // before any record never installs stale polarities.
            self.best_phase.clone_from(&self.phase);
            self.best_trail = 0;
        }
        // The budget is relative to this call: turn it into an absolute
        // ceiling on the cumulative conflict counter.
        let ceiling = budget.map(|b| self.stats.conflicts.saturating_add(b));
        let mut restarts: u64 = 0;
        loop {
            let restart_budget = luby(restarts) * self.config.restart_base;
            match self.search(restart_budget, ceiling, assumptions) {
                SearchOutcome::Done(result) => {
                    self.cancel_until(0);
                    if result == SolveResult::Sat {
                        self.extend_model();
                    } else if self.ok && self.proof.is_some() {
                        // Assumption-based UNSAT: the standard DRAT wrapper
                        // trick. The final-core literals are logged as unit
                        // additions followed by the empty clause; a checker
                        // treating the core as part of the input formula
                        // (see `hh-proof`) then verifies the whole stream by
                        // plain RUP. The formula itself is not refuted, so
                        // `proof_done` stays clear.
                        let core = self.core.clone();
                        for &a in &core {
                            self.proof_add(&[a]);
                        }
                        self.proof_add(&[]);
                    }
                    return Some(result);
                }
                SearchOutcome::Budget => {
                    self.cancel_until(0);
                    return None;
                }
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    if self.config.save_best_phases && self.best_trail > 0 {
                        // Best-phase targeting: restart the search aimed at
                        // the deepest partial assignment seen so far.
                        self.phase.clone_from(&self.best_phase);
                    }
                }
            }
        }
    }

    /// Value of `lit` in the most recent satisfying assignment.
    ///
    /// # Panics
    ///
    /// Panics if the last solve call did not return [`SolveResult::Sat`].
    pub fn model_value(&self, lit: Lit) -> bool {
        assert!(!self.model.is_empty(), "no model available");
        match self.model[lit.var().index()].of_lit(lit) {
            LBool::True => true,
            LBool::False => false,
            // Variables never touched by search keep their saved phase; the
            // model vector is fully concrete by construction.
            LBool::Undef => unreachable!("model is total"),
        }
    }

    /// The subset of the assumption literals used to derive unsatisfiability
    /// in the most recent UNSAT answer.
    ///
    /// If the formula is unsatisfiable even without assumptions the core is
    /// empty.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    // ------------------------------------------------------------------
    // Learned-clause export / import
    // ------------------------------------------------------------------

    /// Exports the solver's conflict knowledge over a chosen variable set:
    /// every learnt clause (and every level-0 implied unit) whose literals
    /// all satisfy `keep` and mention no eliminated variable.
    ///
    /// Soundness: learnt clauses and level-0 units are logical consequences
    /// of the clauses added so far, so any subset of them is implied by the
    /// formula and may be replayed into any solver holding an equisatisfiable
    /// superset of that formula over the same variables (in particular, an
    /// isomorphic encoding of the same cone) without changing any solve
    /// outcome. Callers restrict `keep` to shared base variables so clauses
    /// over caller-private variables (e.g. activation indicators) never leak.
    ///
    /// Must be called at decision level 0 (i.e. outside a solve; every
    /// `solve_with_assumptions` call backtracks to level 0 before returning).
    /// The export order — trail units first, then learnt clauses in
    /// allocation order — is deterministic for a deterministic query history.
    pub fn export_learnt<F: FnMut(Var) -> bool>(&self, keep: F) -> Vec<Vec<Lit>> {
        let mut out = Vec::new();
        self.export_learnt_with(keep, |c| out.push(c.to_vec()));
        out
    }

    /// Visit-callback form of [`Solver::export_learnt`]: each exported
    /// clause is handed to `emit` as a slice borrowed from the trail or the
    /// clause arena, so callers that only iterate (clause pools, filters)
    /// pay no per-clause allocation. Emission order is identical to
    /// `export_learnt`.
    pub fn export_learnt_with<K, F>(&self, mut keep: K, mut emit: F)
    where
        K: FnMut(Var) -> bool,
        F: FnMut(&[Lit]),
    {
        debug_assert_eq!(self.decision_level(), 0);
        // Level-0 trail prefix: units the solver has proved outright.
        let bound = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for l in &self.trail[..bound] {
            let v = l.var();
            if keep(v) && !self.eliminated[v.index()] {
                emit(std::slice::from_ref(l));
            }
        }
        for cref in self.db.learnt_refs() {
            // `learnt_refs` filters lazily-deleted slots, but keep an
            // explicit guard: vivification and database reduction delete
            // learnt clauses mid-session, and a stale ref slipping through
            // here would leak a retracted clause into a shared pool. A
            // *strengthened* clause is exported in its current (shorter)
            // form, which is strictly more general — still implied.
            if self.db.is_deleted(cref) {
                continue;
            }
            let lits = self.db.lits(cref);
            if lits
                .iter()
                .all(|l| keep(l.var()) && !self.eliminated[l.var().index()])
            {
                emit(lits);
            }
        }
    }

    /// Imports clauses previously produced by [`Solver::export_learnt`] on an
    /// isomorphic solver (same variable numbering for the shared prefix).
    ///
    /// Each clause must be logically implied by this solver's formula — the
    /// caller guarantees this by only transferring between sessions whose
    /// base encodings are structurally identical. The clauses are added as
    /// ordinary (non-learnt) clauses so they survive clause-database
    /// reduction and are never re-exported as fresh knowledge. Returns the
    /// number of clauses actually added (tautologies and already-satisfied
    /// clauses are filtered by [`Solver::add_clause`]).
    pub fn import_clauses(&mut self, clauses: &[Vec<Lit>]) -> usize {
        // Imported clauses are implied by the peer's formula, not derivable
        // from this solver's own inference stream, so they would make an
        // attached DRAT proof uncheckable. Imports are best-effort redundant
        // knowledge; under proof logging we simply decline them.
        if self.proof.is_some() {
            return 0;
        }
        let mut added = 0;
        for cl in clauses {
            // A clause over a variable this solver has eliminated would force
            // `add_clause` to restore the variable (and transitively its
            // defining clauses) purely to accommodate optional knowledge,
            // perturbing the receiver's clause database and its elimination
            // record. Imports are free to be dropped, so skip such clauses.
            if cl.iter().any(|l| self.eliminated[l.var().index()]) {
                continue;
            }
            let before = self.db.num_clauses() + self.trail.len();
            if !self.add_clause(cl) {
                // An implied clause can still expose unsatisfiability that
                // this solver simply had not derived yet; record it and stop.
                return added;
            }
            if self.db.num_clauses() + self.trail.len() > before {
                added += 1;
            }
        }
        added
    }

    // ------------------------------------------------------------------
    // Inprocessing
    // ------------------------------------------------------------------

    /// Marks `v` as frozen: inprocessing will never eliminate it, so its
    /// literals remain valid in future clauses and assumptions.
    ///
    /// If `v` was already eliminated by an earlier [`Solver::simplify`] run
    /// it is restored first. Returns `false` if restoring exposed a
    /// top-level conflict (the formula is unsatisfiable).
    pub fn freeze(&mut self, v: Var) -> bool {
        self.frozen[v.index()] = true;
        if self.eliminated[v.index()] {
            self.restore_var(v)
        } else {
            self.ok
        }
    }

    /// Whether `v` is currently frozen (protected from elimination).
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// Whether `v` is currently eliminated by inprocessing.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Number of live (non-deleted) clauses, including learnt ones.
    pub fn num_live_clauses(&self) -> usize {
        self.db.live_refs().count()
    }

    /// Number of variables that are neither fixed at the top level nor
    /// eliminated — the effective search space.
    pub fn num_free_vars(&self) -> usize {
        (0..self.num_vars())
            .filter(|&i| self.assigns[i] == LBool::Undef && !self.eliminated[i])
            .count()
    }

    /// Runs one round of SatELite-style simplification: top-level
    /// propagation, failed-literal probing, backward subsumption,
    /// self-subsuming resolution and bounded variable elimination with
    /// model reconstruction.
    ///
    /// Must be called at decision level 0 (i.e. outside of a solve call).
    /// Frozen variables are never eliminated; clauses of eliminated
    /// variables are stored so [`Solver::model_value`] stays correct and
    /// the variables can be restored if referenced again. Returns `false`
    /// if simplification derived a top-level conflict.
    pub fn simplify(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let _span = hh_trace::span!("sat", "sat.simplify");
        self.stats.simplifies += 1;
        self.last_simplify_conflicts = self.stats.conflicts;
        if self.propagate().is_some() {
            self.ok = false;
            self.proof_empty();
            return false;
        }
        // Top-level assignments need no reason clauses for conflict
        // analysis; dropping them unlocks their antecedents for deletion.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        if !self.probe_failed_literals() {
            return false;
        }
        if !self.simplify_with_occurrences() {
            return false;
        }
        // The occurrence phases mutate clauses in place, so every watch
        // list is stale: scrub all clauses against the (possibly larger)
        // top-level assignment, then rebuild watches from scratch.
        if !self.final_cleanup() {
            return false;
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        // Inprocessing deletes and shrinks many clauses; compact the arena
        // while the watch lists are about to be rebuilt anyway (reasons were
        // just cleared, so nothing else holds a ClauseRef).
        self.db.sweep_lists();
        if self.db.garbage_frac() >= self.config.compact_garbage_frac {
            self.clear_watches();
            self.compact_arena();
        }
        self.rebuild_watches();
        self.qhead = self.trail.len();
        // Vivification runs last: it needs consistent watch lists (it
        // propagates) and a clause set already scrubbed by the cheaper
        // phases above, so its propagation budget is spent on clauses the
        // other techniques could not touch.
        if self.config.vivify {
            if !self.vivify_clauses() {
                return false;
            }
            // Vivified clauses shrink in place and deleted ones become
            // arena garbage; if enough accumulated, compact again while
            // only the (rebuilt-below) watch lists hold ClauseRefs.
            if self.db.garbage_frac() >= self.config.compact_garbage_frac {
                self.clear_watches();
                self.compact_arena();
                self.rebuild_watches();
            }
            self.qhead = self.trail.len();
        }
        true
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Runs CDCL until the restart policy fires, the caller's conflict
    /// ceiling is reached, or a definitive result is found.
    /// `conflict_budget` is the Luby restart budget (glucose mode ignores it
    /// and watches the LBD EMAs); `ceiling` is the absolute
    /// `stats.conflicts` value at which a budgeted solve suspends, checked
    /// only between fully-handled conflicts so suspension never splits a
    /// conflict's bookkeeping.
    fn search(
        &mut self,
        conflict_budget: u64,
        ceiling: Option<u64>,
        assumptions: &[Lit],
    ) -> SearchOutcome {
        let mut conflicts: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                self.stats.conflicts += 1;
                // Under chronological backtracking the conflict can lie
                // entirely below the current decision level (an asserting
                // literal placed at a lower level falsified an old clause):
                // fall back to the conflict's own level first so analysis
                // sees the conflicting clause at its "current" level.
                if self.config.chrono {
                    let c_lvl = self.conflict_level(confl);
                    if c_lvl == 0 {
                        self.ok = false;
                        self.proof_empty();
                        return SearchOutcome::Done(SolveResult::Unsat);
                    }
                    if c_lvl < self.decision_level() {
                        self.cancel_until(c_lvl);
                    }
                } else if self.decision_level() == 0 {
                    self.ok = false;
                    self.proof_empty();
                    return SearchOutcome::Done(SolveResult::Unsat);
                }
                let trail_depth = self.trail.len() as f64;
                let (learnt, backtrack_level) = self.analyze(confl);
                // Chronological backtracking: when the backjump would throw
                // away many levels of (possibly still useful) assignment,
                // step back a single level instead. The learnt clause stays
                // asserting because its literal is enqueued at its true
                // assertion level (`backtrack_level`), leaving an
                // out-of-order trail entry.
                let target = if self.config.chrono
                    && self.decision_level() - backtrack_level > self.config.chrono_threshold
                {
                    self.stats.chrono_backtracks += 1;
                    self.decision_level() - 1
                } else {
                    backtrack_level
                };
                self.cancel_until(target);
                let lbd = self.record_learnt(learnt, backtrack_level);
                self.decay_activities();
                // Restart bookkeeping: fold this conflict's LBD into the
                // recent EMA and the global mean, and its (pre-backtrack)
                // trail depth into the blocking EMA.
                self.lbd_count += 1;
                self.lbd_sum += lbd as f64;
                self.lbd_fast += (lbd as f64 - self.lbd_fast) * self.config.restart_ema_alpha;
                self.trail_ema += (trail_depth - self.trail_ema) * TRAIL_EMA_ALPHA;
                if self.config.restart_mode == RestartMode::Glucose
                    && self.lbd_count >= self.config.restart_min_interval
                    && trail_depth > self.config.restart_block_margin * self.trail_ema
                    && self.restart_pending(conflicts)
                {
                    // Blocking: the assignment is unusually deep, so a
                    // restart would throw away likely progress towards a
                    // model. Pull the EMA back to the mean to defer it.
                    self.lbd_fast = self.lbd_sum / self.lbd_count as f64;
                    self.stats.restart_blocks += 1;
                }
            } else {
                if ceiling.is_some_and(|c| self.stats.conflicts >= c) {
                    return SearchOutcome::Budget;
                }
                let restart = match self.config.restart_mode {
                    RestartMode::Luby => conflicts >= conflict_budget,
                    RestartMode::Glucose => self.restart_pending(conflicts),
                };
                if restart {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.db.num_local() as f64 >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= self.config.learnt_size_inc;
                }
                // Place assumptions as pseudo-decisions, one per level.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already satisfied: open a dummy level so the
                            // level/assumption indices stay aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(p);
                            return SearchOutcome::Done(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(p) => p,
                        None => {
                            // All variables assigned: model found.
                            self.model = self.assigns.clone();
                            return SearchOutcome::Done(SolveResult::Sat);
                        }
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    /// Whether the glucose restart condition currently holds: past the
    /// minimum interval, with the recent-LBD EMA above the margin over the
    /// global mean (high recent glue = the search has gone stale).
    fn restart_pending(&self, conflicts_this_round: u64) -> bool {
        conflicts_this_round >= self.config.restart_min_interval
            && self.lbd_count > 0
            && self.lbd_fast > self.config.restart_margin * (self.lbd_sum / self.lbd_count as f64)
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop_max(&self.activity)?;
            if self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()] {
                return Some(v.lit(self.phase[v.index()]));
            }
        }
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let use_blockers = self.config.use_blockers;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let pc = p.code();

            // Binary fast path: the watcher's blocker *is* the implied
            // literal, so every two-literal clause is resolved without
            // touching the clause arena. Enqueueing never mutates the list
            // being walked, so plain index iteration is safe.
            let mut bi = 0;
            while bi < self.bin_watches.len(pc) {
                let w = self.bin_watches.get(pc, bi);
                bi += 1;
                match val(&self.assigns, w.blocker) {
                    LBool::True => {}
                    LBool::Undef => self.unchecked_enqueue(w.blocker, Some(w.cref)),
                    LBool::False => {
                        self.qhead = self.trail.len();
                        return Some(w.cref);
                    }
                }
            }

            // Long-clause walk, compacting kept watchers in place with an
            // i/j index pair. A relocated watcher is only ever pushed to a
            // *different* literal's list (the new watch is non-false, `!p`
            // is false), so the list being walked never grows underneath
            // the snapshot length.
            let mut conflict = None;
            let n = self.watches.len(pc);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < n {
                let w = self.watches.get(pc, i);
                i += 1;
                // Blocker check before any arena load: if some other
                // literal of the clause is already true, keep the watcher.
                if use_blockers && val(&self.assigns, w.blocker) == LBool::True {
                    self.watches.set(pc, j, w);
                    j += 1;
                    continue;
                }
                let false_lit = !p;
                let cref = w.cref;
                // One arena dereference for the whole clause body.
                let lits = self.db.lits_mut(cref);
                // Normalise so the falsified watched literal is at index 1.
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if first != w.blocker && val(&self.assigns, first) == LBool::True {
                    self.watches.set(
                        pc,
                        j,
                        Watcher {
                            cref,
                            blocker: first,
                        },
                    );
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch = None;
                for k in 2..lits.len() {
                    if val(&self.assigns, lits[k]) != LBool::False {
                        lits.swap(1, k);
                        new_watch = Some(lits[1]);
                        break;
                    }
                }
                if let Some(nw) = new_watch {
                    self.watches.push(
                        (!nw).code(),
                        Watcher {
                            cref,
                            blocker: first,
                        },
                    );
                    continue 'watchers;
                }
                // Clause is satisfied by `first`, unit, or conflicting.
                self.watches.set(
                    pc,
                    j,
                    Watcher {
                        cref,
                        blocker: first,
                    },
                );
                j += 1;
                match val(&self.assigns, first) {
                    // Reachable only with `use_blockers` off (the pre-load
                    // check would have kept the watcher): nothing to do,
                    // and re-enqueueing a true literal would grow the trail
                    // forever.
                    LBool::True => {}
                    LBool::Undef => self.unchecked_enqueue(first, Some(cref)),
                    LBool::False => {
                        conflict = Some(cref);
                        self.qhead = self.trail.len();
                        // Copy remaining watchers back.
                        while i < n {
                            let w = self.watches.get(pc, i);
                            self.watches.set(pc, j, w);
                            j += 1;
                            i += 1;
                        }
                    }
                }
            }
            self.watches.truncate(pc, j);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    #[inline]
    pub(crate) fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].of_lit(l)
    }

    pub(crate) fn unchecked_enqueue(&mut self, p: Lit, from: Option<ClauseRef>) {
        let lvl = self.decision_level();
        self.unchecked_enqueue_at(p, from, lvl);
    }

    /// Enqueues `p` with an explicit assignment level, which may lie below
    /// the current decision level (chronological backtracking assigns a
    /// learnt clause's asserting literal at its true assertion level even
    /// though the trail is deeper). The entry is appended to the trail
    /// wherever search currently is — an "out-of-order" entry that
    /// [`Solver::cancel_until`] keeps alive when unwinding past it.
    fn unchecked_enqueue_at(&mut self, p: Lit, from: Option<ClauseRef>, lvl: u32) {
        debug_assert_eq!(self.lit_value(p), LBool::Undef);
        debug_assert!(lvl <= self.decision_level());
        let v = p.var().index();
        self.assigns[v] = LBool::from_bool(p.is_positive());
        self.reason[v] = from;
        self.level[v] = lvl;
        self.trail.push(p);
    }

    /// Highest decision level among the literals of `confl`. With
    /// chronological backtracking a conflicting clause can sit entirely
    /// below the current decision level; search backtracks to this level
    /// before analysing it.
    fn conflict_level(&self, confl: ClauseRef) -> u32 {
        self.db
            .lits(confl)
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0)
    }

    #[inline]
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        if self.config.save_best_phases && self.trail.len() > self.best_trail {
            // Deepest trail of this solve so far: snapshot its polarities
            // as the best-phase target before unwinding it.
            self.best_trail = self.trail.len();
            for &p in &self.trail {
                self.best_phase[p.var().index()] = p.is_positive();
            }
        }
        let bound = self.trail_lim[target_level as usize];
        if self.config.chrono {
            // Chronological backtracking leaves out-of-order entries on the
            // trail: assignments above `bound` whose level is at or below
            // the target. Those survive the unwind — compact them down in
            // trail order and re-propagate from `bound` so their watch
            // lists are revisited at the new level.
            let mut j = bound;
            for i in bound..self.trail.len() {
                let p = self.trail[i];
                let v = p.var().index();
                if self.level[v] <= target_level {
                    self.trail[j] = p;
                    j += 1;
                } else {
                    self.phase[v] = p.is_positive();
                    self.assigns[v] = LBool::Undef;
                    self.reason[v] = None;
                    self.order.insert(p.var(), &self.activity);
                }
            }
            self.trail.truncate(j);
        } else {
            for i in (bound..self.trail.len()).rev() {
                let p = self.trail[i];
                let v = p.var().index();
                self.phase[v] = p.is_positive();
                self.assigns[v] = LBool::Undef;
                self.reason[v] = None;
                self.order.insert(p.var(), &self.activity);
            }
            self.trail.truncate(bound);
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = bound;
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            {
                self.bump_reason_clause(confl);
                // Skip the resolved-on variable rather than a fixed index:
                // binary reasons keep their arena order, so the implied
                // literal is not guaranteed to sit at index 0.
                for k in 0..self.db.size(confl) {
                    let q = self.db.lits(confl)[k];
                    if let Some(pl) = p {
                        if q.var() == pl.var() {
                            continue;
                        }
                    }
                    let v = q.var().index();
                    if !self.seen[v] && self.level[v] > 0 {
                        self.bump_var(q.var());
                        self.seen[v] = true;
                        if self.level[v] >= self.decision_level() {
                            path_count += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Select the next clause to look at: the deepest seen literal
            // *of the current decision level*. Out-of-order trail entries
            // (chronological backtracking) can put seen lower-level literals
            // above current-level ones; those are finished clause literals,
            // not resolution candidates, so they are skipped.
            loop {
                index -= 1;
                let v = self.trail[index].var().index();
                if self.seen[v] && self.level[v] >= self.decision_level() {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                p = Some(pl);
                break;
            }
            confl = self.reason[pl.var().index()]
                .expect("non-decision implied literal must have a reason");
            p = Some(pl);
        }
        learnt[0] = !p.unwrap();

        // Basic clause minimisation: drop literals whose reason clause is
        // entirely marked seen (they are implied by the rest of the clause).
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_redundant(l))
            .collect();
        let minimized: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&l, _)| l)
            .collect();
        // Clear seen flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let learnt = minimized;

        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            // Find the literal with the second-highest level and move it to
            // index 1 (it becomes the second watched literal).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            let mut learnt = learnt;
            learnt.swap(1, max_i);
            let bl = self.level[learnt[1].var().index()];
            return (learnt, bl);
        };
        (learnt, backtrack_level)
    }

    /// `true` if `l` (a non-asserting learnt literal) is implied by the other
    /// literals of the learnt clause, i.e. every antecedent in its reason is
    /// already marked seen or at level 0.
    fn literal_redundant(&self, l: Lit) -> bool {
        match self.reason[l.var().index()] {
            None => false,
            Some(r) => self.db.lits(r).iter().all(|&q| {
                q.var() == l.var() || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    /// Computes the UNSAT core when assumption `p` is falsified: walks the
    /// implication graph from `!p` back to the assumption pseudo-decisions.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                None => {
                    // Decision within assumption levels: `x` is an assumption.
                    debug_assert!(self.level[v] > 0);
                    self.core.push(x);
                }
                Some(r) => {
                    for k in 0..self.db.size(r) {
                        let q = self.db.lits(r)[k];
                        if q.var() != x.var() && self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        self.core.sort_unstable();
        self.core.dedup();
    }

    /// Installs a learnt clause and returns its LBD (1 for units). The
    /// asserting literal is enqueued at `assert_level` — the level of the
    /// clause's second-highest literal — which equals the current decision
    /// level after a backjump but lies below it after a chronological
    /// backtrack (producing an out-of-order trail entry).
    fn record_learnt(&mut self, learnt: Vec<Lit>, assert_level: u32) -> u32 {
        match learnt.len() {
            0 => {
                self.ok = false;
                self.proof_empty();
                0
            }
            1 => {
                self.proof_add(&learnt);
                self.unchecked_enqueue_at(learnt[0], None, 0);
                1
            }
            _ => {
                self.proof_add(&learnt);
                let lbd = self.compute_lbd(&learnt);
                let tier = self.tier_for_lbd(lbd);
                let asserting = learnt[0];
                let cref = self.db.alloc(&learnt, true, lbd, tier);
                self.attach(cref);
                self.bump_clause_activity(cref);
                self.db.set_used(cref);
                self.unchecked_enqueue_at(asserting, Some(cref), assert_level);
                lbd
            }
        }
    }

    fn tier_for_lbd(&self, lbd: u32) -> Tier {
        if lbd <= self.config.core_lbd {
            Tier::Core
        } else if lbd <= self.config.tier2_lbd {
            Tier::Mid
        } else {
            Tier::Local
        }
    }

    /// Number of distinct decision levels among `lits`, via per-level
    /// stamps: O(clause length), no sort, no allocation.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        lbd_of(&self.level, &mut self.lbd_levels, &mut self.lbd_stamp, lits)
    }

    pub(crate) fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1, binary) = (lits[0], lits[1], lits.len() == 2);
        if binary && self.config.inline_binaries {
            self.bin_watches
                .push((!l0).code(), Watcher { cref, blocker: l1 });
            self.bin_watches
                .push((!l1).code(), Watcher { cref, blocker: l0 });
        } else {
            self.watches
                .push((!l0).code(), Watcher { cref, blocker: l1 });
            self.watches
                .push((!l1).code(), Watcher { cref, blocker: l0 });
        }
    }

    /// Removes a long clause's two watchers from the main watch lists
    /// (vivification detaches a candidate before probing it so its own
    /// watchers cannot propagate it against itself). The clause must be
    /// live, of size ≥ 3, and currently attached — its watched literals are
    /// `lits[0]` and `lits[1]` by the propagation invariant.
    pub(crate) fn detach_long(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        let r0 = self.watches.remove_first((!l0).code(), cref);
        let r1 = self.watches.remove_first((!l1).code(), cref);
        debug_assert!(r0 && r1, "detach of unattached clause {cref:?}");
    }

    // ------------------------------------------------------------------
    // Activities and database reduction
    // ------------------------------------------------------------------

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.decrease_key(v, &self.activity);
    }

    fn bump_clause_activity(&mut self, cref: ClauseRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        let a = self.db.activity(cref) + self.clause_inc;
        self.db.set_activity(cref, a);
        if a > 1e20 {
            self.db.rescale_activities(1e-20);
            self.clause_inc *= 1e-20;
        }
    }

    /// Bookkeeping for a learnt clause that served as an antecedent during
    /// conflict analysis: bump its activity, mark it used (protecting it
    /// from the next reduction round), and refresh its LBD — clauses whose
    /// glue improves get promoted toward longer-lived tiers.
    fn bump_reason_clause(&mut self, cref: ClauseRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        self.bump_clause_activity(cref);
        self.db.set_used(cref);
        let old = self.db.lbd(cref);
        if old > self.config.core_lbd {
            let new = lbd_of(
                &self.level,
                &mut self.lbd_levels,
                &mut self.lbd_stamp,
                self.db.lits(cref),
            );
            if new < old {
                self.db.set_lbd(cref, new);
                if new <= self.config.core_lbd {
                    self.db.set_tier(cref, Tier::Core);
                } else if new <= self.config.tier2_lbd && self.db.tier(cref) == Tier::Local {
                    self.db.set_tier(cref, Tier::Mid);
                }
            }
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.clause_inc /= self.config.clause_decay as f32;
    }

    /// Reduces the local tier of the learnt database: deletes the worst
    /// `reduce_fraction` of local-tier clauses (high LBD first, low activity
    /// first among equals), skipping locked and recently-used ones. Mid-tier
    /// clauses that went unused since the last reduction are demoted to
    /// local; used bits are cleared so protection lasts exactly one round.
    /// Core-tier clauses are never touched. Compacts the arena when enough
    /// garbage has accumulated.
    fn reduce_db(&mut self) {
        let start = std::time::Instant::now();
        self.stats.reduces += 1;
        let learnts = self.db.learnt_refs();
        let mut cands: Vec<ClauseRef> = learnts
            .iter()
            .copied()
            .filter(|&c| {
                self.db.tier(c) == Tier::Local && !self.db.is_used(c) && !self.is_locked(c)
            })
            .collect();
        cands.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then_with(|| {
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        });
        let target = (cands.len() as f64 * self.config.reduce_fraction) as usize;
        for &cref in cands.iter().take(target) {
            self.delete_clause_logged(cref);
            self.stats.deleted_clauses += 1;
        }
        // Demotion pass: mid-tier clauses that were not used as reasons since
        // the previous reduction slide down to local; every surviving clause
        // starts the next round unprotected.
        for &cref in &learnts {
            if self.db.is_deleted(cref) {
                continue;
            }
            if self.db.tier(cref) == Tier::Mid && !self.db.is_used(cref) {
                self.db.set_tier(cref, Tier::Local);
            }
            self.db.clear_used(cref);
        }
        if target > 0 {
            self.db.sweep_lists();
            self.scrub_watches();
            if self.db.garbage_frac() >= self.config.compact_garbage_frac {
                self.clear_watches();
                self.compact_arena();
                self.rebuild_watches();
            }
        }
        self.stats.reduce_time_us += start.elapsed().as_micros() as u64;
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.lits(cref)[0];
        self.reason[first.var().index()] == Some(cref) && self.lit_value(first) == LBool::True
    }

    fn clear_watches(&mut self) {
        self.watches.clear();
        self.bin_watches.clear();
    }

    /// Drops watchers that point at deleted clauses, leaving live watchers
    /// in place. Cheaper than a full rebuild after a reduction round. In
    /// flat mode, compacts a watch arena whose relocation holes have come
    /// to dominate it — piggybacked here because this is the clause-GC
    /// call site where the lists are already being rewritten.
    fn scrub_watches(&mut self) {
        let db = &self.db;
        self.watches.retain(|x| !db.is_deleted(x.cref));
        self.bin_watches.retain(|x| !db.is_deleted(x.cref));
        if self.watches.should_compact() {
            self.watches.compact();
        }
        if self.bin_watches.should_compact() {
            self.bin_watches.compact();
        }
    }

    /// Compacts the clause arena in place and remaps every stored
    /// [`ClauseRef`] (reasons and watchers) through the move table.
    fn compact_arena(&mut self) {
        let remap = self.db.compact();
        self.stats.compactions += 1;
        for cref in self.reason.iter_mut().flatten() {
            *cref = ClauseDb::remap_ref(&remap, *cref);
        }
        self.watches
            .for_each_mut(|x| x.cref = ClauseDb::remap_ref(&remap, x.cref));
        self.bin_watches
            .for_each_mut(|x| x.cref = ClauseDb::remap_ref(&remap, x.cref));
    }

    pub(crate) fn rebuild_watches(&mut self) {
        self.clear_watches();
        let refs: Vec<ClauseRef> = self.db.live_refs().collect();
        for cref in refs {
            self.attach(cref);
        }
        // A full rebuild repopulates the same lists, so the flat regions are
        // mostly reused; compact only if relocation holes still dominate.
        if self.watches.should_compact() {
            self.watches.compact();
        }
        if self.bin_watches.should_compact() {
            self.bin_watches.compact();
        }
    }

    // ------------------------------------------------------------------
    // Debug hooks (test-only entry points into internal machinery)
    // ------------------------------------------------------------------

    /// Forces a learnt-database reduction round, regardless of triggers.
    /// Test hook; not part of the stable API.
    #[doc(hidden)]
    pub fn debug_force_reduce(&mut self) {
        self.reduce_db();
    }

    /// Forces an arena compaction (sweep, scrub, compact, rebuild).
    /// Test hook; not part of the stable API.
    #[doc(hidden)]
    pub fn debug_force_compact(&mut self) {
        self.db.sweep_lists();
        self.clear_watches();
        self.compact_arena();
        self.rebuild_watches();
    }

    /// Fraction of the arena occupied by dead words. Test hook.
    #[doc(hidden)]
    pub fn debug_garbage_frac(&self) -> f64 {
        self.db.garbage_frac()
    }

    /// Number of live learnt clauses. Test hook.
    #[doc(hidden)]
    pub fn debug_num_learnts(&self) -> usize {
        self.db.num_learnts()
    }

    /// Literals of every live learnt clause together with its tier
    /// (0 = core, 1 = mid, 2 = local), in learn order. Test hook.
    #[doc(hidden)]
    pub fn debug_learnts_with_tiers(&self) -> Vec<(Vec<Lit>, u8)> {
        self.db
            .learnt_refs()
            .into_iter()
            .map(|c| (self.db.lits(c).to_vec(), self.db.tier(c) as u8))
            .collect()
    }

    /// Literals of every clause currently serving as the reason for an
    /// assignment on the trail. Test hook.
    #[doc(hidden)]
    pub fn debug_reason_clauses(&self) -> Vec<Vec<Lit>> {
        self.trail
            .iter()
            .filter_map(|p| self.reason[p.var().index()])
            .map(|c| self.db.lits(c).to_vec())
            .collect()
    }

    /// Checks the two-watched-literal invariant: every live clause of size
    /// ≥ 2 is watched exactly twice, on the complements of two of its own
    /// literals (binary clauses in the binary lists when
    /// [`Config::inline_binaries`] is on, longer clauses in the main
    /// lists), and no watcher points at a deleted clause. Test hook.
    #[doc(hidden)]
    pub fn debug_check_watches(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut count: HashMap<u32, Vec<Lit>> = HashMap::new();
        for code in 0..self.watches.num_codes() {
            for w in self.watches.slice(code) {
                if self.db.is_deleted(w.cref) {
                    return Err(format!("watcher on deleted clause {:?}", w.cref));
                }
                if self.config.inline_binaries && self.db.size(w.cref) == 2 {
                    return Err(format!("binary clause {:?} in long watch list", w.cref));
                }
                count
                    .entry(w.cref.0)
                    .or_default()
                    .push(!Lit::from_code(code));
            }
        }
        for code in 0..self.bin_watches.num_codes() {
            for w in self.bin_watches.slice(code) {
                if self.db.is_deleted(w.cref) {
                    return Err(format!("bin watcher on deleted clause {:?}", w.cref));
                }
                if self.db.size(w.cref) != 2 {
                    return Err(format!(
                        "non-binary clause {:?} in binary watch list",
                        w.cref
                    ));
                }
                count
                    .entry(w.cref.0)
                    .or_default()
                    .push(!Lit::from_code(code));
            }
        }
        for cref in self.db.live_refs() {
            let lits = self.db.lits(cref);
            let watched = count.get(&cref.0).cloned().unwrap_or_default();
            if watched.len() != 2 {
                return Err(format!(
                    "clause {:?} watched {} times (expected 2)",
                    cref,
                    watched.len()
                ));
            }
            for w in &watched {
                if !lits.contains(w) {
                    return Err(format!(
                        "clause {:?} watched on {} which it does not contain",
                        cref, w
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Stamp-based LBD: counts distinct decision levels among `lits` in one
/// pass using a per-level generation table. Free function over disjoint
/// solver fields so callers can hold an arena borrow at the same time.
fn lbd_of(level: &[u32], lbd_levels: &mut [u64], lbd_stamp: &mut u64, lits: &[Lit]) -> u32 {
    *lbd_stamp += 1;
    let stamp = *lbd_stamp;
    let mut lbd = 0u32;
    for l in lits {
        let lvl = level[l.var().index()] as usize;
        if lbd_levels[lvl] != stamp {
            lbd_levels[lvl] = stamp;
            lbd += 1;
        }
    }
    lbd
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence that contains index `i`, then the position
    // of `i` within it (standard MiniSat formulation).
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) >> 1;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(a.positive()));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert!(!s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vs: Vec<_> = (0..5).map(|_| s.new_var()).collect();
        for w in vs.windows(2) {
            s.add_clause(&[!w[0].positive(), w[1].positive()]);
        }
        s.add_clause(&[vs[0].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in &vs {
            assert!(s.model_value(v.positive()));
        }
    }

    #[test]
    fn xor_like_sat() {
        // (a | b) & (!a | !b): exactly one of a, b.
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, b]);
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_ne!(s.model_value(a), s.model_value(b));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes. p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Lit(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var().positive();
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                for j in 0..2 {
                    s.add_clause(&[!p[i][j], !p[k][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_and_core() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        // a & b -> contradiction; c irrelevant.
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve_with_assumptions(&[a, b, c]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a));
        assert!(core.contains(&b));
        assert!(!core.contains(&c));
        // Still solvable without the clashing assumptions.
        assert_eq!(s.solve_with_assumptions(&[a, c]), SolveResult::Sat);
        assert!(s.model_value(a));
        assert!(s.model_value(c));
        assert!(!s.model_value(b));
    }

    #[test]
    fn core_requires_propagation() {
        // Assumptions that conflict only after a propagation chain.
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        let d = s.new_var().positive();
        s.add_clause(&[!a, c]); // a -> c
        s.add_clause(&[!b, d]); // b -> d
        s.add_clause(&[!c, !d]); // !(c & d)
        assert_eq!(s.solve_with_assumptions(&[a, b]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a) && core.contains(&b));
    }

    #[test]
    fn incremental_reuse() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
        let b = s.new_var().positive();
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve_with_assumptions(&[a, b]), SolveResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[b]), SolveResult::Sat);
        assert!(!s.model_value(a));
    }

    #[test]
    fn top_level_unsat_gives_empty_core() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a]);
        s.add_clause(&[!a]);
        assert_eq!(s.solve_with_assumptions(&[b]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        assert!(s.add_clause(&[a, a, b]));
        assert!(s.add_clause(&[a, !a])); // tautology, dropped
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn falsified_literals_filtered_before_tautology_scan() {
        // After `a` is fixed false at level 0, the clause [a, !a, b] must
        // still be recognised as a tautology (or equivalently satisfied by
        // !a) and dropped without constraining `b`; the clause [a, b] must
        // shrink to the unit [b].
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        assert!(s.add_clause(&[!a])); // fixes a = false at level 0
        assert!(s.add_clause(&[a, !a, b])); // tautology despite a being false
        assert_eq!(s.solve(), SolveResult::Sat);
        // b is unconstrained so far: force it through a filtered clause.
        assert!(s.add_clause(&[a, b])); // a false -> unit b
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn clause_falsified_at_level_zero_reports_unsat() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        assert!(s.add_clause(&[!a]));
        assert!(s.add_clause(&[!b]));
        // Every literal already false at level 0: empty after filtering.
        assert!(!s.add_clause(&[a, b]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn satisfied_literal_drops_clause_regardless_of_position() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        assert!(s.add_clause(&[a]));
        // Satisfied at level 0 by `a`; must not create a unit on b.
        assert!(s.add_clause(&[b, a]));
        assert_eq!(s.solve_with_assumptions(&[!b]), SolveResult::Sat);
        assert!(!s.model_value(b));
    }

    /// A chain a -> b -> c -> d where the middle variables are BVE fodder.
    fn chain_solver() -> (Solver, Vec<Lit>) {
        let mut s = Solver::new();
        let vs: Vec<Lit> = (0..4).map(|_| s.new_var().positive()).collect();
        for w in vs.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        (s, vs)
    }

    #[test]
    fn simplify_eliminates_and_reconstructs_model() {
        let (mut s, vs) = chain_solver();
        s.freeze(vs[0].var());
        s.freeze(vs[3].var());
        assert!(s.simplify());
        let eliminated: Vec<bool> = (0..4)
            .map(|i| s.is_eliminated(Var::from_index(i)))
            .collect();
        assert!(!eliminated[0] && !eliminated[3], "frozen vars kept");
        assert!(
            eliminated[1] && eliminated[2],
            "chain interior should be eliminated, got {eliminated:?}"
        );
        // The implication a -> d must survive as a resolvent...
        assert_eq!(
            s.solve_with_assumptions(&[vs[0], !vs[3]]),
            SolveResult::Unsat
        );
        // ...and a model must extend to the eliminated middle variables in
        // a way that satisfies the original chain clauses.
        assert_eq!(s.solve_with_assumptions(&[vs[0]]), SolveResult::Sat);
        for i in 0..3 {
            assert!(
                !s.model_value(vs[i]) || s.model_value(vs[i + 1]),
                "original clause {} -> {} violated",
                i,
                i + 1
            );
        }
        assert!(s.model_value(vs[0]));
    }

    #[test]
    fn adding_clause_on_eliminated_var_restores_it() {
        let (mut s, vs) = chain_solver();
        s.freeze(vs[0].var());
        s.freeze(vs[3].var());
        assert!(s.simplify());
        assert!(s.is_eliminated(vs[1].var()));
        // New clause referencing the eliminated b: must restore b's
        // defining clauses, not silently constrain a free variable.
        assert!(s.add_clause(&[!vs[1]]));
        assert!(!s.is_eliminated(vs[1].var()));
        // b false and a -> b force a false.
        assert_eq!(s.solve_with_assumptions(&[vs[0]]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_value(vs[0]));
    }

    #[test]
    fn assumption_on_eliminated_var_restores_it() {
        let (mut s, vs) = chain_solver();
        s.freeze(vs[0].var());
        s.freeze(vs[3].var());
        assert!(s.simplify());
        assert!(s.is_eliminated(vs[1].var()));
        // Assuming b directly must see the original semantics: b -> c -> d.
        assert_eq!(
            s.solve_with_assumptions(&[vs[1], !vs[3]]),
            SolveResult::Unsat
        );
        assert!(!s.is_eliminated(vs[1].var()));
        assert!(s.is_frozen(vs[1].var()), "assumption vars are auto-frozen");
    }

    #[test]
    fn freeze_protects_from_elimination_under_assumptions() {
        let (mut s, vs) = chain_solver();
        for v in &vs {
            s.freeze(v.var());
        }
        assert!(s.simplify());
        for v in &vs {
            assert!(!s.is_eliminated(v.var()));
        }
        // Frozen vars keep answering assumption queries exactly.
        assert_eq!(
            s.solve_with_assumptions(&[vs[1], !vs[2]]),
            SolveResult::Unsat
        );
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&vs[1]) && core.contains(&!vs[2]));
    }

    #[test]
    fn import_over_eliminated_var_is_skipped() {
        let (mut s, vs) = chain_solver();
        s.freeze(vs[0].var());
        s.freeze(vs[3].var());
        assert!(s.simplify());
        assert!(s.is_eliminated(vs[1].var()));
        // An import touching eliminated b must be dropped (imports are
        // optional knowledge; restoring b just to hold one would perturb
        // the clause database), while the clause over live vars lands.
        let added = s.import_clauses(&[vec![vs[1], vs[3]], vec![vs[0], vs[3]]]);
        assert_eq!(added, 1);
        assert!(
            s.is_eliminated(vs[1].var()),
            "import must not restore an eliminated variable"
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// (is_delete, literals) in emission order.
    type ProofEvents = std::sync::Arc<std::sync::Mutex<Vec<(bool, Vec<Lit>)>>>;

    /// A test sink recording every event through a shared handle.
    #[derive(Debug, Clone, Default)]
    struct RecordingSink {
        events: ProofEvents,
    }

    impl crate::proof::ProofSink for RecordingSink {
        fn add_clause(&mut self, lits: &[Lit]) {
            self.events.lock().unwrap().push((false, lits.to_vec()));
        }
        fn delete_clause(&mut self, lits: &[Lit]) {
            self.events.lock().unwrap().push((true, lits.to_vec()));
        }
    }

    #[test]
    fn proof_sink_logs_refutation_ending_in_empty_clause() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, b]);
        s.add_clause(&[a, !b]);
        s.add_clause(&[!a, b]);
        s.add_clause(&[!a, !b]);
        let sink = RecordingSink::default();
        let events = sink.events.clone();
        s.set_proof_sink(Box::new(sink));
        assert_eq!(s.solve(), SolveResult::Unsat);
        let ev = events.lock().unwrap();
        let adds: Vec<&Vec<Lit>> = ev.iter().filter(|(d, _)| !d).map(|(_, c)| c).collect();
        assert!(!adds.is_empty(), "an UNSAT run must log derivations");
        assert!(
            adds.last().unwrap().is_empty(),
            "the proof must end with the empty clause, got {adds:?}"
        );
    }

    #[test]
    fn proof_sink_logs_assumption_core_as_units() {
        // SAT formula, UNSAT only under assumptions: the wrapper trick must
        // log the negated final core as units followed by the empty clause,
        // certifying formula ∧ assumptions ⊢ ⊥.
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        s.add_clause(&[!a, c]);
        s.add_clause(&[!b, !c]);
        let sink = RecordingSink::default();
        let events = sink.events.clone();
        s.set_proof_sink(Box::new(sink));
        assert_eq!(s.solve_with_assumptions(&[a, b]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        let ev = events.lock().unwrap();
        let adds: Vec<&Vec<Lit>> = ev.iter().filter(|(d, _)| !d).map(|(_, c)| c).collect();
        assert!(adds.last().unwrap().is_empty());
        for l in &core {
            assert!(
                adds.iter().any(|cl| cl.as_slice() == [*l]),
                "core literal {l:?} must be logged as a unit"
            );
        }
    }

    #[test]
    fn import_clauses_declines_under_proof_logging() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, b]);
        s.set_proof_sink(Box::new(crate::proof::CountingSink::default()));
        // Imports carry no derivation, so they would punch holes in the
        // DRAT stream; under logging they must be declined wholesale.
        assert_eq!(s.import_clauses(&[vec![a, !b]]), 0);
        assert!(s.take_proof_sink().is_some());
        assert_eq!(s.import_clauses(&[vec![a, !b]]), 1);
    }

    #[test]
    fn simplify_subsumption_and_strengthening() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        let d = s.new_var().positive();
        for v in [a, b, c, d] {
            s.freeze(v.var());
        }
        s.add_clause(&[a, b]);
        s.add_clause(&[a, b, c]); // subsumed by [a, b]
        s.add_clause(&[!a, b, d]); // self-subsumed by [a, b] to [b, d]
        assert!(s.simplify());
        let st = s.stats();
        assert!(st.subsumed_clauses >= 1, "stats: {st:?}");
        assert!(st.strengthened_lits >= 1, "stats: {st:?}");
        assert_eq!(s.solve_with_assumptions(&[!b, !d]), SolveResult::Unsat);
    }

    #[test]
    fn probing_finds_forced_units() {
        // !a leads to a conflict via two chains, so probing should fix a.
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let c = s.new_var().positive();
        for v in [a, b, c] {
            s.freeze(v.var());
        }
        s.add_clause(&[a, b]);
        s.add_clause(&[a, c]);
        s.add_clause(&[a, !b, !c]);
        assert!(s.simplify());
        assert!(s.stats().probed_units >= 1);
        assert_eq!(s.solve_with_assumptions(&[!a]), SolveResult::Unsat);
        assert!(s.unsat_core().contains(&!a));
    }

    #[test]
    fn config_validate_accepts_shipped_presets() {
        assert_eq!(Config::default().validate(), Ok(()));
        assert_eq!(Config::seed_baseline().validate(), Ok(()));
    }

    #[test]
    fn config_validate_rejects_nonsense() {
        let bad = [
            Config {
                var_decay: 1.0,
                ..Config::default()
            },
            Config {
                clause_decay: 0.0,
                ..Config::default()
            },
            Config {
                restart_base: 0,
                ..Config::default()
            },
            Config {
                core_lbd: 7,
                tier2_lbd: 6,
                ..Config::default()
            },
            Config {
                core_lbd: 0,
                ..Config::default()
            },
            Config {
                restart_min_interval: 0,
                ..Config::default()
            },
            Config {
                reduce_fraction: 1.5,
                ..Config::default()
            },
            Config {
                compact_garbage_frac: 0.0,
                ..Config::default()
            },
            Config {
                learnt_size_inc: 0.9,
                ..Config::default()
            },
            Config {
                restart_margin: 0.5,
                ..Config::default()
            },
            Config {
                chrono_threshold: 0,
                ..Config::default()
            },
            Config {
                vivify: true,
                vivify_budget: 0,
                ..Config::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "accepted nonsense config: {c:?}");
        }
    }

    #[test]
    fn seed_baseline_round_trips_the_seed_solver_shape() {
        // The baseline must recreate the pre-raw-speed-PRs solver: nested
        // per-literal watch Vecs and no vivification (plus the restart/DB
        // shape asserted alongside), and it must stay a valid config.
        let base = Config::seed_baseline();
        assert_eq!(base.validate(), Ok(()));
        assert!(!base.flat_watches);
        assert!(!base.vivify);
        assert!(!base.inline_binaries);
        assert!(!base.use_blockers);
        assert!(!base.chrono);
        assert!(!base.save_best_phases);
        assert_eq!(base.restart_mode, RestartMode::Luby);
        assert_eq!(base.tier2_lbd, base.core_lbd);
        // Every knob the baseline does not pin matches the modern default,
        // so A/B runs differ only in the features under test.
        let modern = Config::default();
        assert!(modern.flat_watches && modern.vivify);
        assert_eq!(base.vivify_budget, modern.vivify_budget);
        assert_eq!(base.simplify_interval, modern.simplify_interval);
        assert_eq!(base.compact_garbage_frac, modern.compact_garbage_frac);
        // And a baseline solver actually solves.
        let mut s = Solver::with_config(base);
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[a, b]);
        s.add_clause(&[!a, b]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn vivify_strengthens_via_propagation() {
        // Candidate (c ∨ a ∨ b) with chain c ∨ d, ¬d ∨ a: assuming ¬c
        // propagates d then a, so scanning hits a true literal and the
        // candidate strengthens to (c ∨ a). Variables are created in
        // sorted-candidate order (add_clause sorts) and all frozen so BVE
        // cannot pre-empt the vivifier by resolving d away.
        let mut s = Solver::new();
        let c = s.new_var().positive();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let d = s.new_var().positive();
        for v in [a, b, c, d] {
            s.freeze(v.var());
        }
        s.add_clause(&[c, a, b]);
        s.add_clause(&[c, d]);
        s.add_clause(&[!d, a]);
        assert!(s.simplify());
        let st = s.stats();
        assert!(st.vivified_lits >= 1, "stats: {st:?}");
        // The strengthened clause is binding: ¬c ∧ ¬a is now two falsified
        // literals of a binary clause.
        assert_eq!(s.solve_with_assumptions(&[!c, !a]), SolveResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[!c, !d]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn vivify_off_leaves_clauses_alone() {
        let cfg = Config {
            vivify: false,
            ..Config::default()
        };
        let mut s = Solver::with_config(cfg);
        let c = s.new_var().positive();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let d = s.new_var().positive();
        for v in [a, b, c, d] {
            s.freeze(v.var());
        }
        s.add_clause(&[c, a, b]);
        s.add_clause(&[c, d]);
        s.add_clause(&[!d, a]);
        assert!(s.simplify());
        assert_eq!(s.stats().vivified_lits, 0);
        assert_eq!(s.stats().vivified_deleted, 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn vivify_logs_checkable_rewrites() {
        // Same instance as `vivify_strengthens_via_propagation`, with a
        // recording sink: the strengthened clause must be added before the
        // original is deleted (the DRAT order hh-proof checks).
        let events = ProofEvents::default();
        let mut s = Solver::new();
        s.set_proof_sink(Box::new(RecordingSink {
            events: events.clone(),
        }));
        let c = s.new_var().positive();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let d = s.new_var().positive();
        for v in [a, b, c, d] {
            s.freeze(v.var());
        }
        s.add_clause(&[c, a, b]);
        s.add_clause(&[c, d]);
        s.add_clause(&[!d, a]);
        assert!(s.simplify());
        assert!(s.stats().vivified_lits >= 1);
        let log = events.lock().unwrap().clone();
        let add_pos = log
            .iter()
            .position(|(is_delete, lits)| !*is_delete && lits.as_slice() == [c, a])
            .expect("strengthened clause was logged");
        let del_pos = log
            .iter()
            .position(|(is_delete, lits)| *is_delete && lits.as_slice() == [c, a, b])
            .expect("original clause deletion was logged");
        assert!(add_pos < del_pos, "add must precede delete: {log:?}");
    }

    #[test]
    fn export_after_vivify_and_compaction_stays_sound() {
        // Learn clauses, let vivification/compaction rewrite the learnt DB,
        // then export: nothing exported may reference a deleted slot, and
        // replaying the export into a twin must not change any verdict.
        let clauses = random_3cnf(50, 205, 0xE1);
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..50).map(|_| s.new_var()).collect();
        for v in &vars {
            s.freeze(*v);
        }
        for cl in &clauses {
            s.add_clause(cl);
        }
        let expected = s.solve();
        assert!(s.simplify(), "formula stayed satisfiable at top level");
        s.debug_force_compact();
        let exported = s.export_learnt(|_| true);
        for cl in &exported {
            assert!(!cl.is_empty(), "deleted slot leaked into export");
        }
        let mut twin = Solver::new();
        for _ in 0..50 {
            twin.new_var();
        }
        for cl in &clauses {
            twin.add_clause(cl);
        }
        twin.import_clauses(&exported);
        assert_eq!(twin.solve(), expected);
        for v in vars.iter().take(8) {
            let a = [v.positive()];
            assert_eq!(
                s.solve_with_assumptions(&a),
                twin.solve_with_assumptions(&a)
            );
        }
    }

    #[test]
    fn flat_and_nested_watches_agree_on_random_3cnf() {
        for seed in [3u64, 17, 99] {
            let clauses = random_3cnf(60, 240, seed);
            let mut flat = Solver::new();
            let mut nested = Solver::with_config(Config {
                flat_watches: false,
                ..Config::default()
            });
            for _ in 0..60 {
                flat.new_var();
                nested.new_var();
            }
            for cl in &clauses {
                flat.add_clause(cl);
                nested.add_clause(cl);
            }
            // The layout is invisible to the search: identical verdicts and
            // identical conflict counts (the propagation order is the same).
            let rf = flat.solve();
            let rn = nested.solve();
            assert_eq!(rf, rn, "seed {seed}");
            assert_eq!(
                flat.stats().conflicts,
                nested.stats().conflicts,
                "seed {seed}"
            );
            flat.debug_check_watches().unwrap();
            nested.debug_check_watches().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "invalid hh-sat Config")]
    #[cfg(debug_assertions)]
    fn with_config_panics_on_invalid_config_in_debug() {
        let _ = Solver::with_config(Config {
            core_lbd: 9,
            tier2_lbd: 3,
            ..Config::default()
        });
    }

    /// A fixed random 3-CNF for the chrono/budget tests (same xorshift64*
    /// stream as the bench workloads).
    fn random_3cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Vec<Vec<Lit>> {
        let mut state = seed;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut clauses = Vec::with_capacity(num_clauses);
        for _ in 0..num_clauses {
            let mut c: Vec<Lit> = Vec::with_capacity(3);
            while c.len() < 3 {
                let v = Var::from_index((next() % num_vars as u64) as usize);
                if c.iter().any(|l| l.var() == v) {
                    continue;
                }
                c.push(v.lit(next() & 1 == 0));
            }
            clauses.push(c);
        }
        clauses
    }

    fn solver_with(config: Config, num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
        let mut s = Solver::with_config(config);
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(c);
        }
        s
    }

    #[test]
    fn chrono_agrees_with_backjumping_on_random_formulas() {
        for seed in 1..=20u64 {
            let clauses = random_3cnf(40, 170, seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut chrono = solver_with(
                Config {
                    chrono: true,
                    chrono_threshold: 1,
                    ..Config::default()
                },
                40,
                &clauses,
            );
            let mut jump = solver_with(
                Config {
                    chrono: false,
                    ..Config::default()
                },
                40,
                &clauses,
            );
            let r1 = chrono.solve();
            let r2 = jump.solve();
            assert_eq!(r1, r2, "seed {seed}: chrono and backjump disagree");
            if r1 == SolveResult::Sat {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|&l| chrono.model_value(l)),
                        "seed {seed}: chrono model violates {cl:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn chrono_threshold_one_engages_chrono_backtracks() {
        // An aggressive threshold over a hard-enough formula must actually
        // exercise the chronological path, otherwise the agreement test
        // above tests nothing.
        let mut total = 0;
        for seed in 1..=20u64 {
            let clauses = random_3cnf(40, 170, seed.wrapping_mul(0x9E3779B97F4A7C15));
            let mut s = solver_with(
                Config {
                    chrono: true,
                    chrono_threshold: 1,
                    ..Config::default()
                },
                40,
                &clauses,
            );
            s.solve();
            total += s.stats().chrono_backtracks;
        }
        assert!(
            total > 0,
            "chrono threshold 1 never took a chrono backtrack"
        );
    }

    #[test]
    fn solve_limited_suspends_and_resumes_losslessly() {
        // Pigeonhole 5-into-4 needs plenty of conflicts: a tiny budget must
        // suspend, and repeated budget rounds must still conclude UNSAT.
        let mut s = Solver::new();
        let n = 5;
        let m = 4;
        let mut p = vec![vec![Lit(0); m]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var().positive();
            }
        }
        for row in &p {
            s.add_clause(row);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_k in p.iter().skip(i + 1) {
                for (&a, &b) in row_i.iter().zip(row_k.iter()) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        assert_eq!(
            s.solve_limited(&[], 1),
            LimitedResult::Unknown,
            "one conflict cannot refute php(5,4)"
        );
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 10_000, "budgeted rounds failed to converge");
            match s.solve_limited(&[], 50) {
                LimitedResult::Unknown => continue,
                verdict => {
                    assert_eq!(verdict, LimitedResult::Unsat);
                    break;
                }
            }
        }
        assert!(s.stats().budget_rounds >= rounds);
    }

    #[test]
    fn solve_limited_with_unhit_budget_matches_unbudgeted_solve() {
        for seed in 1..=10u64 {
            let clauses = random_3cnf(30, 126, seed.wrapping_mul(0xD1B54A32D192ED03));
            let mut a = solver_with(Config::default(), 30, &clauses);
            let mut b = solver_with(Config::default(), 30, &clauses);
            let ra = a.solve();
            let rb = b.solve_limited(&[], u64::MAX);
            match ra {
                SolveResult::Sat => {
                    assert_eq!(rb, LimitedResult::Sat);
                    for v in 0..30 {
                        let l = Var::from_index(v).positive();
                        assert_eq!(
                            a.model_value(l),
                            b.model_value(l),
                            "seed {seed}: unhit budget changed the trajectory"
                        );
                    }
                }
                SolveResult::Unsat => assert_eq!(rb, LimitedResult::Unsat),
            }
            assert_eq!(a.stats().conflicts, b.stats().conflicts);
            assert_eq!(a.stats().decisions, b.stats().decisions);
        }
    }

    #[test]
    fn solve_limited_respects_assumptions_and_cores() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve_limited(&[a, b], 100), LimitedResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a) && core.contains(&b));
        assert_eq!(s.solve_limited(&[a], 100), LimitedResult::Sat);
        assert!(s.model_value(a));
        assert!(!s.model_value(b));
    }

    #[test]
    fn chrono_proof_stream_ends_with_empty_clause() {
        for seed in 1..=20u64 {
            let clauses = random_3cnf(25, 115, seed.wrapping_mul(0xA0761D6478BD642F));
            let mut s = solver_with(
                Config {
                    chrono: true,
                    chrono_threshold: 1,
                    ..Config::default()
                },
                25,
                &clauses,
            );
            let sink = RecordingSink::default();
            let events = sink.events.clone();
            s.set_proof_sink(Box::new(sink));
            if s.solve() == SolveResult::Unsat {
                let ev = events.lock().unwrap();
                let adds: Vec<&Vec<Lit>> = ev.iter().filter(|(d, _)| !d).map(|(_, c)| c).collect();
                assert!(
                    adds.last().is_some_and(|c| c.is_empty()),
                    "seed {seed}: chrono UNSAT proof must end with the empty clause"
                );
            }
        }
    }

    #[test]
    fn simplify_keeps_solver_incremental() {
        let (mut s, vs) = chain_solver();
        assert!(s.simplify());
        // Grow the formula after simplification: new vars and clauses over
        // old (possibly eliminated) variables must still work.
        let e = s.new_var().positive();
        s.add_clause(&[!vs[3], e]);
        assert_eq!(s.solve_with_assumptions(&[vs[0], !e]), SolveResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[vs[0], e]), SolveResult::Sat);
        assert!(s.model_value(vs[3]));
    }
}
