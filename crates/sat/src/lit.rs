//! Boolean variables and literals.
//!
//! A [`Var`] is an index into the solver's variable table; a [`Lit`] is a
//! variable together with a polarity, packed into a single `u32` so the two
//! literals of variable `v` occupy codes `2v` (positive) and `2v + 1`
//! (negative). The packing lets literal-indexed tables (watch lists, seen
//! flags) be flat vectors.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
///
/// Variables are created by [`crate::Solver::new_var`] and are densely
/// numbered from zero.
///
/// ```
/// use hh_sat::Solver;
/// let mut s = Solver::new();
/// let v = s.new_var();
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Constructs a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity
    /// (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a [`Var`] with a polarity.
///
/// The `repr(transparent)` layout guarantee lets the clause arena store
/// literals as raw `u32` codes and hand out `&[Lit]` views of the same
/// memory without copying.
///
/// ```
/// use hh_sat::{Solver, Lit};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let p = v.positive();
/// assert_eq!(!p, v.negative());
/// assert_eq!((!p).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is the positive occurrence of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The packed code (`2 * var + sign`), usable as a table index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.0 >> 1)
        } else {
            write!(f, "!x{}", self.0 >> 1)
        }
    }
}

/// Three-valued assignment: true, false or unassigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    /// Truth value of a literal given the value of its variable.
    #[inline]
    pub(crate) fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_positive()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }

    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrips() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().code(), 14);
        assert_eq!(v.negative().code(), 15);
        assert_eq!(Lit::from_code(14), v.positive());
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
    }

    #[test]
    fn negation_is_involutive() {
        let v = Var::from_index(3);
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(!v.positive(), v.negative());
    }

    #[test]
    fn lit_constructor_respects_polarity() {
        let v = Var::from_index(2);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var::from_index(0);
        assert_eq!(LBool::True.of_lit(v.positive()), LBool::True);
        assert_eq!(LBool::True.of_lit(v.negative()), LBool::False);
        assert_eq!(LBool::False.of_lit(v.positive()), LBool::False);
        assert_eq!(LBool::False.of_lit(v.negative()), LBool::True);
        assert_eq!(LBool::Undef.of_lit(v.positive()), LBool::Undef);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(4);
        assert_eq!(v.to_string(), "x4");
        assert_eq!(v.positive().to_string(), "x4");
        assert_eq!(v.negative().to_string(), "!x4");
    }
}
