//! DRAT proof logging interface.
//!
//! The solver can stream its clausal inferences to a [`ProofSink`]: every
//! learnt clause, every inprocessing rewrite (expressed as an addition of the
//! new clause followed by a deletion of the old one) and every clause-database
//! deletion. Together with the original input formula this stream forms a
//! DRAT proof that an independent checker (the `hh-proof` crate) can verify
//! without trusting any of the solver's reasoning.
//!
//! Two deliberate deviations from a byte-exact solver trace keep the stream
//! checkable under this solver's *assumption-safe* inprocessing:
//!
//! * Clauses removed by bounded variable elimination are **not** logged as
//!   deletions. The solver may later restore an eliminated variable (when a
//!   caller re-mentions it) by re-adding the stored clauses, and those
//!   re-additions are only justified if the checker never dropped the
//!   originals. Keeping them merely weakens the deletion information, which
//!   is always sound for a forward checker.
//! * Assumption-based UNSAT answers are certified with the standard wrapper
//!   trick: the final-core literals are appended as unit additions followed
//!   by the empty clause. The resulting stream is a valid DRAT refutation of
//!   `formula ∧ core`.
//!
//! Clause storage details never leak into the stream. Deletion in the flat
//! clause arena is lazy (a header bit; the words are reclaimed by a later
//! in-place compaction), but the deletion *event* is logged exactly once, at
//! the moment database reduction marks the clause — the checker's view
//! matches the solver's logical database, not its memory. Compaction itself
//! moves clauses without changing the clause set and emits nothing.

use crate::lit::Lit;

/// A consumer of DRAT proof events emitted by [`crate::Solver`].
///
/// Implementations must be [`Send`] so a solver carrying a sink can still be
/// moved across worker threads, and [`std::fmt::Debug`] because the solver
/// derives `Debug`.
pub trait ProofSink: std::fmt::Debug + Send {
    /// A clause was derived (or introduced by an inprocessing rewrite). The
    /// clause is redundant with respect to everything previously in the
    /// formula: it is RUP (reverse unit propagation) checkable. An empty
    /// slice is the empty clause, i.e. the refutation is complete.
    fn add_clause(&mut self, lits: &[Lit]);

    /// A clause was removed from the solver's database. Deletions are hints:
    /// a checker may ignore them (this only makes its propagation stronger).
    fn delete_clause(&mut self, lits: &[Lit]);
}

/// A sink that counts events and bytes but stores nothing. Useful for
/// measuring proof-logging overhead without I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Number of `add_clause` events seen.
    pub adds: u64,
    /// Number of `delete_clause` events seen.
    pub deletes: u64,
    /// Total literal count across all events.
    pub lits: u64,
}

impl ProofSink for CountingSink {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.adds += 1;
        self.lits += lits.len() as u64;
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.deletes += 1;
        self.lits += lits.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        let a = crate::lit::Var::from_index(0).positive();
        s.add_clause(&[a, !a]);
        s.delete_clause(&[a]);
        s.add_clause(&[]);
        assert_eq!(s.adds, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.lits, 3);
    }
}
