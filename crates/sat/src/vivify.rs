//! Clause vivification (distillation) at decision level 0.
//!
//! For each long clause `C = l1 ∨ … ∨ ln`, the negations of its literals
//! are assumed one at a time at a throwaway decision level and
//! unit-propagated (with `C` itself detached so it cannot propagate
//! against itself). The propagation outcome after assuming
//! `¬l1, …, ¬lk` decides the clause's fate:
//!
//! * some `li` was already **true at level 0** — `C` is satisfied outright
//!   and deleted;
//! * `li` became **true under the probe** — `¬l1 ∧ … ∧ ¬l(i-1) ⊢ li`, so
//!   the prefix `l1 ∨ … ∨ li` is implied by the rest of the formula and
//!   replaces `C` (the dropped tail is the strengthening);
//! * `li` became **false** — `li` is redundant in `C` (resolving on it
//!   stays within `C`'s other literals), so it is dropped and probing
//!   continues;
//! * propagation hit a **conflict** — the assumed prefix is contradictory,
//!   so the prefix clause `l1 ∨ … ∨ lk` replaces `C`.
//!
//! Every kept prefix is derivable by reverse unit propagation from the
//! formula (with `C` still present for the redundant-literal case), so
//! each rewrite is DRAT-logged as *add strengthened, then delete
//! original* — the order the independent checker needs. The pass runs at
//! the end of [`Solver::simplify`], after the occurrence-based phases
//! have already scrubbed the clause set and the watch lists have been
//! rebuilt, and is bounded by [`crate::Config::vivify_budget`]
//! propagations so its cost stays proportional on huge instances while
//! remaining a pure function of the query history (determinism).

use crate::clause::ClauseRef;
use crate::lit::{LBool, Lit};
use crate::solver::Solver;

/// What probing one candidate clause concluded.
enum Fate {
    /// A literal was true at level 0: the clause is permanently satisfied.
    Satisfied,
    /// The clause survives with this (possibly shorter) literal set.
    Keep(Vec<Lit>),
}

impl Solver {
    /// Runs one budgeted vivification pass over the long live clauses.
    /// Expects consistent watch lists and a fully propagated level-0 trail;
    /// leaves both in the same state. Returns `false` if a top-level
    /// conflict was derived (the formula is unsatisfiable).
    pub(crate) fn vivify_clauses(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let mut budget = self.config.vivify_budget;
        // Probing assumes and unwinds thousands of literals, and every
        // unwind writes the probe polarity into the saved phases (and may
        // snapshot a deep probe trail as the best-phase target). Those
        // polarities are search state, not probe state — losing them makes
        // the next incremental query re-derive its warm start from scratch —
        // so the pass restores them wholesale when it finishes.
        let saved_phase = self.phase.clone();
        let saved_best_phase = self.best_phase.clone();
        let saved_best_trail = self.best_trail;
        // Snapshot the candidates: rewrites allocate nothing, so refs stay
        // stable until a compaction, which only happens after the pass.
        // Longest clauses first: they carry the most redundant literals, so
        // the budget strengthens more before it runs out.
        let mut cands: Vec<ClauseRef> = self
            .db
            .live_refs()
            .filter(|&c| self.db.size(c) >= 3)
            .collect();
        cands.sort_by_key(|&c| std::cmp::Reverse(self.db.size(c)));
        for cref in cands {
            if budget == 0 {
                break;
            }
            // A unit derived from an earlier candidate may have deleted or
            // shrunk this one via propagation bookkeeping; re-check.
            if self.db.is_deleted(cref) || self.db.size(cref) < 3 {
                continue;
            }
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            // Detach so the candidate cannot propagate against itself while
            // its own negated literals are assumed.
            self.detach_long(cref);
            let before = self.stats.propagations;
            let fate = self.probe_clause(&lits);
            budget = budget.saturating_sub(self.stats.propagations - before + 1);
            match fate {
                Fate::Satisfied => {
                    self.stats.vivified_deleted += 1;
                    self.delete_clause_logged(cref);
                }
                Fate::Keep(kept) => {
                    if !self.apply_rewrite(cref, &lits, kept) {
                        return false;
                    }
                }
            }
        }
        // Vivification units propagate at level 0 and record their
        // antecedents as reasons; top-level assignments need none, and the
        // compaction that may follow must not have to remap a clause a
        // later candidate deleted.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        self.phase = saved_phase;
        self.best_phase = saved_best_phase;
        self.best_trail = saved_best_trail;
        true
    }

    /// Assumes the negation of each literal in turn at a throwaway level,
    /// classifying the clause per the module rules. The clause itself must
    /// be detached. Restores level 0 before returning.
    fn probe_clause(&mut self, lits: &[Lit]) -> Fate {
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut satisfied = false;
        self.trail_lim.push(self.trail.len());
        for &l in lits {
            match self.lit_value(l) {
                LBool::True if self.level[l.var().index()] == 0 => {
                    satisfied = true;
                    break;
                }
                LBool::True => {
                    // ¬(kept so far) propagated l: the prefix ending at l
                    // is implied without the clause — drop the tail.
                    kept.push(l);
                    break;
                }
                LBool::False => {
                    // l is falsified by the assumed prefix alone, so it is
                    // redundant (RUP with the clause still present).
                }
                LBool::Undef => {
                    kept.push(l);
                    self.unchecked_enqueue(!l, None);
                    if self.propagate().is_some() {
                        // The assumed prefix is contradictory: it alone is
                        // a valid (RUP) replacement clause.
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        if satisfied {
            Fate::Satisfied
        } else {
            Fate::Keep(kept)
        }
    }

    /// Installs the probing verdict for a detached candidate: reattach if
    /// unchanged, otherwise log add-then-delete and shrink in place (or
    /// assert the unit / refute the formula for degenerate sizes). Returns
    /// `false` on a derived top-level conflict.
    fn apply_rewrite(&mut self, cref: ClauseRef, old: &[Lit], kept: Vec<Lit>) -> bool {
        if kept.len() == old.len() {
            // Nothing learned; kept == old because drops and early breaks
            // both shorten the prefix.
            self.attach(cref);
            return true;
        }
        self.stats.vivified_lits += (old.len() - kept.len()) as u64;
        match kept.len() {
            0 => {
                // Every literal was false at level 0: the formula is
                // unsatisfiable outright.
                self.ok = false;
                self.proof_empty();
                false
            }
            1 => {
                self.stats.vivified_deleted += 1;
                self.proof_add(&kept);
                self.delete_clause_logged(cref);
                // `kept[0]` cannot be assigned: a true value would have
                // satisfied the probe, a false one would have emptied it.
                self.unchecked_enqueue(kept[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.proof_empty();
                    return false;
                }
                true
            }
            _ => {
                self.proof_add(&kept);
                self.proof_delete(old);
                self.db.shrink_clause(cref, &kept);
                // All kept literals are unassigned at level 0 (assigned
                // ones end the probe), so watching the first two is valid.
                // A clause shrunk to binary routes to the binary lists
                // through `attach`'s own size check.
                self.attach(cref);
                true
            }
        }
    }
}
