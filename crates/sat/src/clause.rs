//! Flat clause arena.
//!
//! Clauses live contiguously in one `Vec<u32>` store and are addressed by
//! [`ClauseRef`], a 32-bit word offset into that store. Each clause occupies
//! `2 + size` words:
//!
//! ```text
//! word 0: header — size (20 bits) | LBD (7 bits, capped) | learnt (1 bit)
//!                  | tier (2 bits) | used (1 bit) | deleted (1 bit)
//! word 1: activity as f32 bits
//! word 2..: literal codes
//! ```
//!
//! The propagation loop therefore touches cache-linear memory: loading a
//! clause is one offset addition, and its literals sit right behind the
//! header. `Lit` is `repr(transparent)` over `u32`, so literal slices are
//! zero-copy views of the arena.
//!
//! Deletion marks the header and counts the clause's footprint as garbage;
//! the slot stays valid (for watcher scrubbing and proof logging) until
//! [`ClauseDb::compact`] slides the live clauses down in place and returns
//! an old→new offset table for the solver to remap its reasons and
//! watchers. Shrinking a clause in place (inprocessing strengthening) turns
//! the freed tail into garbage the same way.
//!
//! Learnt clauses carry a three-tier classification (`core`/`mid`/`local`)
//! driven by LBD; the solver's database reduction deletes only from the
//! local tier and demotes unused mid-tier clauses, so glue clauses are never
//! lost (see [`crate::Solver`]).

use crate::lit::Lit;

/// Reference to a clause inside a [`ClauseDb`]: the word offset of its
/// header in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// Words occupied by the header (flags + activity) before the literals.
const HEADER_WORDS: usize = 2;

const SIZE_BITS: u32 = 20;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
const LBD_SHIFT: u32 = 20;
/// LBDs are stored saturated at this value; ordering above the cap does not
/// matter because such clauses are all deep in the local tier anyway.
pub(crate) const LBD_CAP: u32 = 0x7F;
const LEARNT_BIT: u32 = 1 << 27;
const TIER_SHIFT: u32 = 28;
const TIER_MASK: u32 = 0b11;
const USED_BIT: u32 = 1 << 30;
const DELETED_BIT: u32 = 1 << 31;

/// Learnt-clause tier, packed into two header bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Tier {
    /// Glue clauses (LBD ≤ core threshold): kept forever.
    Core = 0,
    /// Medium-LBD clauses: survive reductions while they keep being used,
    /// demoted to [`Tier::Local`] after an idle round.
    Mid = 1,
    /// Everything else: the only tier database reduction deletes from.
    Local = 2,
}

impl Tier {
    fn from_bits(bits: u32) -> Tier {
        match bits & TIER_MASK {
            0 => Tier::Core,
            1 => Tier::Mid,
            _ => Tier::Local,
        }
    }
}

/// Arena of clauses.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    /// The flat store: headers, activities and literal codes.
    data: Vec<u32>,
    /// Live + not-yet-swept original clauses, in insertion order.
    clause_list: Vec<ClauseRef>,
    /// Live + not-yet-swept learnt clauses, in insertion (= learn) order.
    /// Insertion order is what makes learnt export deterministic.
    learnt_list: Vec<ClauseRef>,
    /// Live original clauses.
    num_orig: usize,
    /// Live learnt clauses.
    num_learnts: usize,
    /// Live learnt clauses currently in [`Tier::Local`].
    num_local: usize,
    /// Arena words occupied by deleted clauses or shrunk-away tails.
    garbage: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.data[cref.0 as usize]
    }

    /// Allocates a clause and returns its ref. Unit/empty clauses are never
    /// stored (they live on the trail / in `ok`).
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32, tier: Tier) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        debug_assert!(
            lits.len() <= SIZE_MASK as usize,
            "clause too long for header"
        );
        let off = self.data.len();
        assert!(
            off + HEADER_WORDS + lits.len() <= u32::MAX as usize,
            "clause arena exceeds 32-bit addressing"
        );
        let mut header = lits.len() as u32;
        header |= lbd.min(LBD_CAP) << LBD_SHIFT;
        if learnt {
            header |= LEARNT_BIT;
            header |= (tier as u32) << TIER_SHIFT;
            self.num_learnts += 1;
            if tier == Tier::Local {
                self.num_local += 1;
            }
        } else {
            self.num_orig += 1;
        }
        self.data.push(header);
        self.data.push(0.0f32.to_bits());
        for l in lits {
            self.data.push(l.0);
        }
        let cref = ClauseRef(off as u32);
        if learnt {
            self.learnt_list.push(cref);
        } else {
            self.clause_list.push(cref);
        }
        cref
    }

    /// Number of literals currently in the clause.
    #[inline]
    pub(crate) fn size(&self, cref: ClauseRef) -> usize {
        (self.header(cref) & SIZE_MASK) as usize
    }

    /// The clause's literals as a zero-copy view of the arena.
    #[inline]
    pub(crate) fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let off = cref.0 as usize;
        let size = (self.data[off] & SIZE_MASK) as usize;
        let words = &self.data[off + HEADER_WORDS..off + HEADER_WORDS + size];
        // SAFETY: `Lit` is `repr(transparent)` over `u32`, so a `[u32]`
        // slice of literal codes has identical layout to `[Lit]`.
        unsafe { &*(words as *const [u32] as *const [Lit]) }
    }

    /// Mutable literal view, for the watched-literal swaps in propagation.
    #[inline]
    pub(crate) fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let off = cref.0 as usize;
        let size = (self.data[off] & SIZE_MASK) as usize;
        let words = &mut self.data[off + HEADER_WORDS..off + HEADER_WORDS + size];
        // SAFETY: as in [`ClauseDb::lits`].
        unsafe { &mut *(words as *mut [u32] as *mut [Lit]) }
    }

    /// Replaces the clause's literals with a (shorter or equal) set; the
    /// freed tail becomes garbage. Used by inprocessing strengthening.
    pub(crate) fn shrink_clause(&mut self, cref: ClauseRef, new_lits: &[Lit]) {
        let off = cref.0 as usize;
        let old = self.size(cref);
        debug_assert!(!new_lits.is_empty() && new_lits.len() <= old);
        for (i, l) in new_lits.iter().enumerate() {
            self.data[off + HEADER_WORDS + i] = l.0;
        }
        self.data[off] = (self.data[off] & !SIZE_MASK) | new_lits.len() as u32;
        self.garbage += old - new_lits.len();
    }

    #[inline]
    pub(crate) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & LEARNT_BIT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.header(cref) & DELETED_BIT != 0
    }

    #[inline]
    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        (self.header(cref) >> LBD_SHIFT) & LBD_CAP
    }

    pub(crate) fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        let off = cref.0 as usize;
        self.data[off] =
            (self.data[off] & !(LBD_CAP << LBD_SHIFT)) | (lbd.min(LBD_CAP) << LBD_SHIFT);
    }

    #[inline]
    pub(crate) fn tier(&self, cref: ClauseRef) -> Tier {
        Tier::from_bits(self.header(cref) >> TIER_SHIFT)
    }

    pub(crate) fn set_tier(&mut self, cref: ClauseRef, tier: Tier) {
        debug_assert!(self.is_learnt(cref) && !self.is_deleted(cref));
        let old = self.tier(cref);
        if old == tier {
            return;
        }
        if old == Tier::Local {
            self.num_local -= 1;
        }
        if tier == Tier::Local {
            self.num_local += 1;
        }
        let off = cref.0 as usize;
        self.data[off] =
            (self.data[off] & !(TIER_MASK << TIER_SHIFT)) | ((tier as u32) << TIER_SHIFT);
    }

    #[inline]
    pub(crate) fn is_used(&self, cref: ClauseRef) -> bool {
        self.header(cref) & USED_BIT != 0
    }

    #[inline]
    pub(crate) fn set_used(&mut self, cref: ClauseRef) {
        self.data[cref.0 as usize] |= USED_BIT;
    }

    #[inline]
    pub(crate) fn clear_used(&mut self, cref: ClauseRef) {
        self.data[cref.0 as usize] &= !USED_BIT;
    }

    #[inline]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.data[cref.0 as usize + 1])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.data[cref.0 as usize + 1] = activity.to_bits();
    }

    /// Multiplies every live learnt clause's activity by `factor`
    /// (overflow rescaling).
    pub(crate) fn rescale_activities(&mut self, factor: f32) {
        for i in 0..self.learnt_list.len() {
            let cref = self.learnt_list[i];
            if !self.is_deleted(cref) {
                let a = self.activity(cref) * factor;
                self.set_activity(cref, a);
            }
        }
    }

    /// Marks the clause deleted. The slot stays readable (for proof logging
    /// and watcher scrubbing) until the next [`ClauseDb::compact`]; its
    /// footprint is counted as garbage immediately.
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_deleted(cref));
        if self.is_learnt(cref) {
            self.num_learnts -= 1;
            if self.tier(cref) == Tier::Local {
                self.num_local -= 1;
            }
        } else {
            self.num_orig -= 1;
        }
        self.garbage += HEADER_WORDS + self.size(cref);
        self.data[cref.0 as usize] |= DELETED_BIT;
    }

    /// Live original + learnt clauses.
    #[inline]
    pub(crate) fn num_clauses(&self) -> usize {
        self.num_orig + self.num_learnts
    }

    /// Live learnt clauses.
    #[inline]
    pub(crate) fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Live learnt clauses in [`Tier::Local`] (the reducible population).
    #[inline]
    pub(crate) fn num_local(&self) -> usize {
        self.num_local
    }

    /// Current arena size in words (including garbage).
    #[inline]
    pub(crate) fn arena_words(&self) -> usize {
        self.data.len()
    }

    /// Fraction of the arena occupied by deleted/shrunk-away words.
    pub(crate) fn garbage_frac(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.garbage as f64 / self.data.len() as f64
        }
    }

    /// Iterates over the refs of all live clauses (originals first, then
    /// learnts, each in insertion order).
    pub(crate) fn live_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clause_list
            .iter()
            .chain(self.learnt_list.iter())
            .copied()
            .filter(|&c| !self.is_deleted(c))
    }

    /// Refs of live learnt clauses in learn order.
    pub(crate) fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.learnt_list
            .iter()
            .copied()
            .filter(|&c| !self.is_deleted(c))
            .collect()
    }

    /// Drops swept-over (deleted) entries from the clause lists. Cheap
    /// bookkeeping after bulk deletions; `compact` implies it.
    pub(crate) fn sweep_lists(&mut self) {
        let mut clause_list = std::mem::take(&mut self.clause_list);
        clause_list.retain(|&c| !self.is_deleted(c));
        self.clause_list = clause_list;
        let mut learnt_list = std::mem::take(&mut self.learnt_list);
        learnt_list.retain(|&c| !self.is_deleted(c));
        self.learnt_list = learnt_list;
    }

    /// Garbage-compacts the arena in place: live clauses slide down (in
    /// ascending offset order, so every move is leftward), garbage goes to
    /// zero, and insertion order of both clause lists is preserved.
    ///
    /// Returns the sorted `(old_offset, new_offset)` table; the solver must
    /// remap every `ClauseRef` it holds (reasons, watchers) through it via
    /// [`ClauseDb::remap_ref`].
    pub(crate) fn compact(&mut self) -> Vec<(u32, u32)> {
        self.sweep_lists();
        let mut refs: Vec<ClauseRef> = self
            .clause_list
            .iter()
            .chain(self.learnt_list.iter())
            .copied()
            .collect();
        refs.sort_unstable_by_key(|c| c.0);
        let mut remap: Vec<(u32, u32)> = Vec::with_capacity(refs.len());
        let mut dest = 0usize;
        for &old in &refs {
            let src = old.0 as usize;
            let words = HEADER_WORDS + self.size(old);
            debug_assert!(dest <= src, "compaction must only move clauses left");
            if src != dest {
                self.data.copy_within(src..src + words, dest);
            }
            remap.push((old.0, dest as u32));
            dest += words;
        }
        self.data.truncate(dest);
        self.garbage = 0;
        for c in self
            .clause_list
            .iter_mut()
            .chain(self.learnt_list.iter_mut())
        {
            *c = Self::remap_ref(&remap, *c);
        }
        remap
    }

    /// Looks up a pre-compaction ref in the table returned by
    /// [`ClauseDb::compact`].
    ///
    /// # Panics
    ///
    /// Panics if `cref` was not live at compaction time — holding a ref to a
    /// deleted clause across a compaction is a solver bug.
    #[inline]
    pub(crate) fn remap_ref(remap: &[(u32, u32)], cref: ClauseRef) -> ClauseRef {
        let idx = remap
            .binary_search_by_key(&cref.0, |&(old, _)| old)
            .expect("remapped ClauseRef must have been live at compaction");
        ClauseRef(remap[idx].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Var::from_index(i).positive()).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(3), false, 0, Tier::Core);
        assert_eq!(db.size(c), 3);
        assert_eq!(db.lits(c), lits(3).as_slice());
        assert!(!db.is_learnt(c));
        assert!(!db.is_deleted(c));
        assert_eq!(db.num_learnts(), 0);
        assert_eq!(db.num_clauses(), 1);
        assert_eq!(db.arena_words(), 5);
    }

    #[test]
    fn header_fields_are_independent() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(2), true, 9, Tier::Local);
        assert!(db.is_learnt(c));
        assert_eq!(db.lbd(c), 9);
        assert_eq!(db.tier(c), Tier::Local);
        db.set_lbd(c, 3);
        db.set_tier(c, Tier::Mid);
        db.set_used(c);
        assert_eq!(db.lbd(c), 3);
        assert_eq!(db.tier(c), Tier::Mid);
        assert!(db.is_used(c));
        assert_eq!(db.size(c), 2, "size survives flag churn");
        db.clear_used(c);
        assert!(!db.is_used(c));
    }

    #[test]
    fn lbd_saturates_at_cap() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(2), true, 100_000, Tier::Local);
        assert_eq!(db.lbd(c), LBD_CAP);
        assert_eq!(db.size(c), 2);
    }

    #[test]
    fn tier_accounting_tracks_moves_and_deletes() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(2), true, 8, Tier::Local);
        let b = db.alloc(&lits(3), true, 4, Tier::Mid);
        assert_eq!((db.num_learnts(), db.num_local()), (2, 1));
        db.set_tier(b, Tier::Local);
        assert_eq!(db.num_local(), 2);
        db.delete(a);
        assert_eq!((db.num_learnts(), db.num_local()), (1, 1));
        assert_eq!(db.learnt_refs(), vec![b]);
    }

    #[test]
    fn activity_roundtrips_through_bits() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(2), true, 2, Tier::Core);
        assert_eq!(db.activity(c), 0.0);
        db.set_activity(c, 1.5);
        assert_eq!(db.activity(c), 1.5);
        db.rescale_activities(0.5);
        assert_eq!(db.activity(c), 0.75);
    }

    #[test]
    fn shrink_updates_size_and_garbage() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(4), false, 0, Tier::Core);
        let kept = lits(2);
        db.shrink_clause(c, &kept);
        assert_eq!(db.lits(c), kept.as_slice());
        assert!(db.garbage_frac() > 0.0);
    }

    #[test]
    fn delete_is_lazy_until_compaction() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(2), true, 2, Tier::Local);
        let b = db.alloc(&lits(2), true, 2, Tier::Local);
        db.delete(a);
        // a's slot is still readable (proof logging needs the literals).
        assert_eq!(db.lits(a).len(), 2);
        assert!(db.is_deleted(a));
        assert_eq!(db.lits(b).len(), 2);
        assert_eq!(db.live_refs().count(), 1);
        assert_eq!(db.num_learnts(), 1);
    }

    #[test]
    fn compact_moves_live_clauses_left_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(3), false, 0, Tier::Core);
        let b = db.alloc(&lits(2), true, 5, Tier::Mid);
        let c = db.alloc(&lits(4), false, 0, Tier::Core);
        let b_lits = db.lits(b).to_vec();
        let c_lits = db.lits(c).to_vec();
        db.delete(a);
        let words_before = db.arena_words();
        let remap = db.compact();
        assert!(db.arena_words() < words_before);
        assert_eq!(db.garbage_frac(), 0.0);
        let nb = ClauseDb::remap_ref(&remap, b);
        let nc = ClauseDb::remap_ref(&remap, c);
        assert_eq!(db.lits(nb), b_lits.as_slice());
        assert_eq!(db.lits(nc), c_lits.as_slice());
        assert!(db.is_learnt(nb) && !db.is_learnt(nc));
        assert_eq!(db.tier(nb), Tier::Mid);
        assert_eq!(db.lbd(nb), 5);
        assert_eq!(db.live_refs().collect::<Vec<_>>(), vec![nc, nb]);
    }

    #[test]
    fn compact_reclaims_shrunk_tails() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(6), false, 0, Tier::Core);
        let _b = db.alloc(&lits(2), false, 0, Tier::Core);
        db.shrink_clause(a, &lits(2));
        let remap = db.compact();
        // 2 clauses × (2 header + 2 lits) words.
        assert_eq!(db.arena_words(), 8);
        let na = ClauseDb::remap_ref(&remap, a);
        assert_eq!(db.lits(na), lits(2).as_slice());
    }
}
