//! Clause storage.
//!
//! Clauses live in a [`ClauseDb`] arena and are addressed by [`ClauseRef`].
//! Learnt clauses can be deleted during database reduction; deletion is a
//! tombstone (the slot is never reused) so that `ClauseRef`s held as reasons
//! stay valid between reductions — the solver rebuilds watch lists after each
//! reduction and never dereferences a deleted clause.

use crate::lit::Lit;

/// Reference to a clause inside a [`ClauseDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// A single clause: a disjunction of literals.
#[derive(Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// Whether this clause was learnt during conflict analysis (eligible for
    /// deletion) as opposed to part of the original problem.
    pub(crate) learnt: bool,
    /// Tombstone flag; set by database reduction.
    pub(crate) deleted: bool,
    /// Activity, bumped when the clause participates in conflict analysis.
    pub(crate) activity: f64,
    /// Literal-block distance at learn time (glue level); clauses with low
    /// LBD are kept forever.
    pub(crate) lbd: u32,
}

impl Clause {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }
}

/// Arena of clauses.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    /// Number of live (non-deleted) learnt clauses.
    pub(crate) num_learnts: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub(crate) fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let cref = ClauseRef(self.clauses.len() as u32);
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        });
        cref
    }

    #[inline]
    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        if c.learnt {
            self.num_learnts -= 1;
        }
        c.deleted = true;
        c.lits = Vec::new(); // release memory
    }

    /// Iterates over the refs of all live clauses.
    pub(crate) fn live_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Refs of live learnt clauses.
    pub(crate) fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted && c.learnt)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.clauses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Var::from_index(i).positive()).collect()
    }

    #[test]
    fn alloc_and_get() {
        let mut db = ClauseDb::new();
        let c = db.alloc(lits(3), false, 0);
        assert_eq!(db.get(c).len(), 3);
        assert!(!db.get(c).learnt);
        assert_eq!(db.num_learnts, 0);
    }

    #[test]
    fn learnt_accounting() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(2), true, 2);
        let _b = db.alloc(lits(3), true, 3);
        assert_eq!(db.num_learnts, 2);
        db.delete(a);
        assert_eq!(db.num_learnts, 1);
        assert_eq!(db.learnt_refs().len(), 1);
        assert_eq!(db.live_refs().count(), 1);
    }

    #[test]
    fn delete_is_tombstone() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(2), true, 2);
        let b = db.alloc(lits(2), true, 2);
        db.delete(a);
        // b's ref is still valid and points at the same clause.
        assert_eq!(db.get(b).len(), 2);
        assert_eq!(db.len(), 2);
    }
}
