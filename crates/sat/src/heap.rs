//! Indexed max-heap over variable activities (VSIDS decision order).
//!
//! The heap stores variable indices ordered by an external activity array and
//! supports decrease/increase-key via a position map, as required when
//! conflict analysis bumps activities of variables already in the heap.

use crate::lit::Var;

/// Max-heap of variables keyed by activity.
#[derive(Debug, Default)]
pub(crate) struct VarOrderHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `NOT_IN` if absent.
    pos: Vec<u32>,
}

const NOT_IN: u32 = u32::MAX;

impl VarOrderHeap {
    pub(crate) fn new() -> VarOrderHeap {
        VarOrderHeap::default()
    }

    /// Registers a new variable (initially absent from the heap).
    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        self.pos.resize(num_vars, NOT_IN);
    }

    #[inline]
    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NOT_IN
    }

    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as u32;
        self.heap.push(v.0);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = NOT_IN;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores the heap property after `v`'s activity increased.
    pub(crate) fn decrease_key(&mut self, v: Var, activity: &[f64]) {
        // "decrease" in min-heap parlance; for our max-heap an activity bump
        // can only move the element up.
        if let Some(i) = self.position(v) {
            self.sift_up(i, activity);
        }
    }

    fn position(&self, v: Var) -> Option<usize> {
        let p = self.pos[v.index()];
        if p == NOT_IN {
            None
        } else {
            Some(p as usize)
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let item = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[parent] as usize] >= activity[item as usize] {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i] as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = item;
        self.pos[item as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let item = self.heap[i];
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let best = if right < n
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            if activity[self.heap[best] as usize] <= activity[item as usize] {
                break;
            }
            self.heap[i] = self.heap[best];
            self.pos[self.heap[i] as usize] = i as u32;
            i = best;
        }
        self.heap[i] = item;
        self.pos[item as usize] = i as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(activity[self.heap[parent] as usize] >= activity[self.heap[i] as usize]);
        }
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[v as usize], i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_returns_descending_activities() {
        let activity = vec![0.5, 3.0, 1.0, 2.0, 0.1];
        let mut h = VarOrderHeap::new();
        h.grow_to(5);
        for i in 0..5 {
            h.insert(Var::from_index(i), &activity);
            h.check_invariants(&activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = vec![1.0, 2.0];
        let mut h = VarOrderHeap::new();
        h.grow_to(2);
        h.insert(Var::from_index(0), &activity);
        h.insert(Var::from_index(1), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(1)));
        assert!(!h.contains(Var::from_index(1)));
        h.insert(Var::from_index(1), &activity);
        assert!(h.contains(Var::from_index(1)));
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(1)));
    }

    #[test]
    fn decrease_key_moves_bumped_var_up() {
        let mut activity = vec![1.0, 2.0, 3.0, 4.0];
        let mut h = VarOrderHeap::new();
        h.grow_to(4);
        for i in 0..4 {
            h.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        h.decrease_key(Var::from_index(0), &activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0];
        let mut h = VarOrderHeap::new();
        h.grow_to(1);
        h.insert(Var::from_index(0), &activity);
        h.insert(Var::from_index(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
        assert!(h.is_empty());
    }
}
