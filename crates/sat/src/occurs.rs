//! Occurrence index for clause-database simplification.
//!
//! Maps each literal to the live original clauses containing it. The index
//! is built afresh at the start of every [`crate::Solver::simplify`] run
//! and discarded afterwards: inprocessing is the only consumer, and keeping
//! it live during search would tax every clause addition for no benefit.

use crate::clause::ClauseRef;
use crate::lit::Lit;

/// Literal-indexed occurrence lists over original clauses.
#[derive(Debug)]
pub(crate) struct OccIndex {
    /// `lists[l.code()]` = refs of live original clauses containing `l`.
    lists: Vec<Vec<ClauseRef>>,
}

impl OccIndex {
    /// Creates an empty index able to hold `num_vars` variables.
    pub(crate) fn new(num_vars: usize) -> OccIndex {
        OccIndex {
            lists: vec![Vec::new(); 2 * num_vars],
        }
    }

    /// Records that clause `cref` contains literal `l`.
    pub(crate) fn add(&mut self, l: Lit, cref: ClauseRef) {
        self.lists[l.code()].push(cref);
    }

    /// Forgets that clause `cref` contains literal `l`.
    pub(crate) fn remove(&mut self, l: Lit, cref: ClauseRef) {
        self.lists[l.code()].retain(|&c| c != cref);
    }

    /// The clauses currently containing literal `l`.
    pub(crate) fn list(&self, l: Lit) -> &[ClauseRef] {
        &self.lists[l.code()]
    }

    /// Removes and returns the whole occurrence list of `l`.
    pub(crate) fn take(&mut self, l: Lit) -> Vec<ClauseRef> {
        std::mem::take(&mut self.lists[l.code()])
    }

    /// Number of clauses containing either literal of the variable behind
    /// `l` (used to pick cheap elimination candidates).
    pub(crate) fn var_occurrences(&self, l: Lit) -> usize {
        self.lists[l.code()].len() + self.lists[(!l).code()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn add_remove_take() {
        let mut occ = OccIndex::new(2);
        let a = Var::from_index(0).positive();
        let c0 = ClauseRef(0);
        let c1 = ClauseRef(1);
        occ.add(a, c0);
        occ.add(a, c1);
        occ.add(!a, c1);
        assert_eq!(occ.list(a), &[c0, c1]);
        assert_eq!(occ.var_occurrences(a), 3);
        occ.remove(a, c0);
        assert_eq!(occ.list(a), &[c1]);
        let taken = occ.take(a);
        assert_eq!(taken, vec![c1]);
        assert!(occ.list(a).is_empty());
        assert_eq!(occ.list(!a), &[c1]);
    }
}
