//! # hh-sat — a CDCL SAT solver with assumption cores
//!
//! A from-scratch conflict-driven clause-learning SAT solver built as the
//! decision-procedure substrate for the H-Houdini invariant learner. The
//! paper uses cvc5 with `minimal-unsat-cores`; the abduction oracle only
//! requires (i) incremental solving under assumptions and (ii) locally
//! minimal UNSAT cores over those assumptions — both provided here.
//!
//! ## Quick start
//!
//! ```
//! use hh_sat::{Solver, SolveResult, minimize_core};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! let c = solver.new_var().positive();
//! solver.add_clause(&[!a, !b]); // a and b cannot both hold
//!
//! assert_eq!(solver.solve_with_assumptions(&[a, b, c]), SolveResult::Unsat);
//! let core = solver.unsat_core().to_vec();
//! let minimal = minimize_core(&mut solver, &core);
//! assert_eq!(minimal.len(), 2); // c is not part of the contradiction
//! ```
//!
//! ## Features
//!
//! * Two-literal watching, first-UIP learning with clause minimisation,
//!   VSIDS + phase saving, Luby restarts, LBD-aware database reduction.
//! * Incremental interface: interleave [`Solver::new_var`],
//!   [`Solver::add_clause`] and [`Solver::solve_with_assumptions`] freely.
//! * Assumption-safe inprocessing: [`Solver::simplify`] runs SatELite-style
//!   subsumption, self-subsuming resolution, bounded variable elimination
//!   (with model reconstruction), failed-literal probing and budgeted
//!   clause vivification, automatically at a conflict-count cadence;
//!   [`Solver::freeze`] protects variables
//!   the caller will reference again, and clauses that mention an
//!   eliminated variable transparently restore it.
//! * [`minimize_core`] shrinks assumption cores to local minimality
//!   (deletion-based), mirroring cvc5's `minimal-unsat-cores`.
//! * DRAT proof logging: attach a [`proof::ProofSink`] with
//!   [`Solver::set_proof_sink`] and every learnt clause, inprocessing
//!   rewrite and deletion is streamed out for independent checking (the
//!   `hh-proof` crate provides writers and a RUP/RAT checker).
//! * A small DIMACS reader/writer in [`dimacs`] for debugging and tests.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod clause;
mod elim;
mod heap;
mod lit;
mod minimize;
mod occurs;
mod probe;
mod solver;
mod vivify;
mod watch;

pub mod dimacs;
pub mod proof;

pub use lit::{Lit, Var};
pub use minimize::minimize_core;
pub use proof::{CountingSink, ProofSink};
pub use solver::{
    BudgetProbe, Config, LimitedResult, RestartMode, SolveResult, Solver, SolverStats,
};
