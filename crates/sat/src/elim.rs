//! SatELite-style clause-database simplification.
//!
//! Implements the occurrence-index phases of [`crate::Solver::simplify`]:
//! top-level clause cleanup, backward subsumption, self-subsuming
//! resolution (strengthening) and bounded variable elimination (BVE) with
//! model reconstruction.
//!
//! All phases run at decision level 0 and mutate clauses in place, so watch
//! lists are stale while they run; unit literals discovered here are spread
//! through the occurrence index instead of the watches, and the caller
//! rebuilds the watch lists when the whole simplify round is done.
//!
//! BVE is the delicate part in an incremental solver. Eliminating `v`
//! replaces its clauses by all non-tautological resolvents on `v`, which
//! preserves satisfiability but forgets what `v` meant. Three mechanisms
//! keep the incremental interface sound:
//!
//! * the original clauses of `v` are stored on an elimination stack, and a
//!   satisfying assignment of the reduced formula is extended to `v` by
//!   walking that stack backwards (model reconstruction);
//! * frozen variables — assumptions, indicator variables registered via
//!   [`crate::Solver::freeze`] — are never eliminated;
//! * a new clause or assumption that mentions an eliminated variable
//!   triggers [`Solver::restore_var`], which re-adds the stored clauses
//!   (recursively restoring anything they mention) before the new
//!   constraint lands.

use std::collections::VecDeque;

use crate::clause::{ClauseRef, Tier};
use crate::lit::{LBool, Lit, Var};
use crate::occurs::OccIndex;
use crate::solver::Solver;

/// Variables occurring in more clauses than this are not elimination
/// candidates (resolvent computation would be quadratic in this count).
const ELIM_OCC_LIMIT: usize = 16;

/// Resolvents longer than this many literals block the elimination.
const ELIM_CLAUSE_LIMIT: usize = 24;

/// Resolvent of `p` (containing `v` positively) and `n` (containing `v`
/// negatively) on `v`; `None` if the resolvent is tautological.
fn resolve(p: &[Lit], n: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut r: Vec<Lit> = Vec::with_capacity(p.len() + n.len() - 2);
    r.extend(p.iter().filter(|l| l.var() != v));
    r.extend(n.iter().filter(|l| l.var() != v));
    r.sort_unstable();
    r.dedup();
    for w in r.windows(2) {
        if w[1] == !w[0] {
            return None;
        }
    }
    Some(r)
}

impl Solver {
    /// The occurrence-index phases of a simplify round: cleanup, backward
    /// subsumption + strengthening, then bounded variable elimination.
    /// Returns `false` on a derived top-level conflict.
    pub(crate) fn simplify_with_occurrences(&mut self) -> bool {
        let mut occ = OccIndex::new(self.num_vars());
        let mut queue: VecDeque<ClauseRef> = VecDeque::new();
        let mut cursor = self.trail.len();
        let refs: Vec<ClauseRef> = self.db.live_refs().collect();
        for cref in refs {
            if self.db.is_learnt(cref) {
                continue; // learnt clauses are scrubbed in the final cleanup
            }
            let lits = self.db.lits(cref).to_vec();
            let mut satisfied = false;
            let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
            for &l in &lits {
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => kept.push(l),
                }
            }
            if satisfied {
                self.delete_clause_logged(cref);
                continue;
            }
            match kept.len() {
                0 => {
                    self.ok = false;
                    self.proof_empty();
                    return false;
                }
                1 => {
                    self.proof_add(&kept);
                    self.unchecked_enqueue(kept[0], None);
                    self.delete_clause_logged(cref);
                }
                _ => {
                    if kept.len() < lits.len() {
                        self.proof_add(&kept);
                        self.proof_delete(&lits);
                        self.db.shrink_clause(cref, &kept);
                    }
                    for &l in &kept {
                        occ.add(l, cref);
                    }
                    queue.push_back(cref);
                }
            }
        }
        if !self.occ_propagate(&mut occ, &mut cursor) {
            return false;
        }
        if !self.backward_subsume(&mut occ, &mut queue, &mut cursor) {
            return false;
        }
        self.eliminate_variables(&mut occ, &mut cursor)
    }

    /// Spreads top-level units through the occurrence index: clauses
    /// containing a true literal are deleted, false literals are stripped,
    /// and clauses shrinking to units cascade.
    fn occ_propagate(&mut self, occ: &mut OccIndex, cursor: &mut usize) -> bool {
        while *cursor < self.trail.len() {
            let p = self.trail[*cursor];
            *cursor += 1;
            for cref in occ.take(p) {
                if self.db.is_deleted(cref) {
                    continue;
                }
                let lits = self.db.lits(cref).to_vec();
                for &l in &lits {
                    if l != p {
                        occ.remove(l, cref);
                    }
                }
                self.db.delete(cref);
                self.proof_delete(&lits);
            }
            for cref in occ.take(!p) {
                if self.db.is_deleted(cref) {
                    continue;
                }
                // Stripping the falsified literal is an add-then-delete in
                // the proof stream: the shortened clause is RUP (the old
                // clause plus the unit `p`), after which the old one may go.
                let old = if self.proof_active() {
                    Some(self.db.lits(cref).to_vec())
                } else {
                    None
                };
                let lits: Vec<Lit> = self
                    .db
                    .lits(cref)
                    .iter()
                    .copied()
                    .filter(|&l| l != !p)
                    .collect();
                self.db.shrink_clause(cref, &lits);
                debug_assert!(!lits.is_empty());
                if let Some(old) = &old {
                    self.proof_add(&lits);
                    self.proof_delete(old);
                }
                if lits.len() == 1 {
                    let u = lits[0];
                    occ.remove(u, cref);
                    self.db.delete(cref);
                    match self.lit_value(u) {
                        LBool::True => {}
                        LBool::False => {
                            self.ok = false;
                            self.proof_empty();
                            return false;
                        }
                        LBool::Undef => self.unchecked_enqueue(u, None),
                    }
                }
            }
        }
        true
    }

    /// Backward subsumption and self-subsuming resolution. For each queued
    /// clause `C`, every clause sharing a variable with `C`'s rarest
    /// literal is checked: if `C ⊆ D` then `D` is deleted; if `C` matches
    /// `D` except for exactly one negated literal, that literal is removed
    /// from `D` (resolution of `D` with `C` subsumes `D`).
    fn backward_subsume(
        &mut self,
        occ: &mut OccIndex,
        queue: &mut VecDeque<ClauseRef>,
        cursor: &mut usize,
    ) -> bool {
        while let Some(cref) = queue.pop_front() {
            if self.db.is_deleted(cref) {
                continue;
            }
            let lits = self.db.lits(cref).to_vec();
            let best = *lits
                .iter()
                .min_by_key(|l| occ.var_occurrences(**l))
                .expect("live clause is non-empty");
            let mut cands: Vec<ClauseRef> = occ.list(best).to_vec();
            cands.extend_from_slice(occ.list(!best));
            for d in cands {
                if d == cref || self.db.is_deleted(d) {
                    continue;
                }
                if self.db.size(d) < lits.len() {
                    continue;
                }
                // Match every literal of C inside D, allowing at most one
                // to appear negated.
                let mut flipped: Option<Lit> = None;
                let mut related = true;
                {
                    let dlits = self.db.lits(d);
                    for &l in &lits {
                        if dlits.contains(&l) {
                            continue;
                        }
                        if flipped.is_none() && dlits.contains(&!l) {
                            flipped = Some(!l);
                            continue;
                        }
                        related = false;
                        break;
                    }
                }
                if !related {
                    continue;
                }
                match flipped {
                    None => {
                        let dl = self.db.lits(d).to_vec();
                        for &l in &dl {
                            occ.remove(l, d);
                        }
                        self.db.delete(d);
                        self.proof_delete(&dl);
                        self.stats.subsumed_clauses += 1;
                    }
                    Some(rm) => {
                        self.stats.strengthened_lits += 1;
                        occ.remove(rm, d);
                        // Self-subsuming resolution as add-then-delete: the
                        // strengthened clause is RUP from `C` and the old
                        // `D`, both still present when the add is checked.
                        let old = if self.proof_active() {
                            Some(self.db.lits(d).to_vec())
                        } else {
                            None
                        };
                        let dl: Vec<Lit> = self
                            .db
                            .lits(d)
                            .iter()
                            .copied()
                            .filter(|&l| l != rm)
                            .collect();
                        self.db.shrink_clause(d, &dl);
                        if let Some(old) = &old {
                            self.proof_add(&dl);
                            self.proof_delete(old);
                        }
                        if dl.len() == 1 {
                            let u = dl[0];
                            occ.remove(u, d);
                            self.db.delete(d);
                            match self.lit_value(u) {
                                LBool::True => {}
                                LBool::False => {
                                    self.ok = false;
                                    self.proof_empty();
                                    return false;
                                }
                                LBool::Undef => {
                                    self.unchecked_enqueue(u, None);
                                    if !self.occ_propagate(occ, cursor) {
                                        return false;
                                    }
                                }
                            }
                        } else {
                            queue.push_back(d);
                        }
                    }
                }
            }
        }
        self.ok
    }

    /// Bounded variable elimination: replaces each cheap, unfrozen variable
    /// by the resolvents of its positive and negative occurrence lists
    /// whenever that does not grow the clause database.
    fn eliminate_variables(&mut self, occ: &mut OccIndex, cursor: &mut usize) -> bool {
        for idx in 0..self.num_vars() {
            let v = Var::from_index(idx);
            if self.frozen[idx] || self.eliminated[idx] || self.assigns[idx] != LBool::Undef {
                continue;
            }
            let pos: Vec<ClauseRef> = occ.list(v.positive()).to_vec();
            let neg: Vec<ClauseRef> = occ.list(v.negative()).to_vec();
            let budget = pos.len() + neg.len();
            if budget == 0 || budget > ELIM_OCC_LIMIT {
                continue;
            }
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut blocked = false;
            'pairs: for &p in &pos {
                for &n in &neg {
                    if let Some(r) = resolve(self.db.lits(p), self.db.lits(n), v) {
                        if r.len() > ELIM_CLAUSE_LIMIT || resolvents.len() == budget {
                            blocked = true;
                            break 'pairs;
                        }
                        resolvents.push(r);
                    }
                }
            }
            if blocked {
                continue;
            }
            // Commit: store and remove the variable's clauses, then add the
            // resolvents.
            //
            // Proof logging: the removals are deliberately *not* streamed as
            // DRAT deletions. [`Solver::restore_var`] may later re-add these
            // exact clauses, and those re-additions are only trivially
            // checkable if the checker still holds the originals; deletions
            // are optional hints, so withholding them is always sound. The
            // resolvent additions below *are* logged — each is RUP from its
            // two (still-present) parents.
            let mut stored: Vec<Vec<Lit>> = Vec::with_capacity(budget);
            for &cref in pos.iter().chain(neg.iter()) {
                let lits = self.db.lits(cref).to_vec();
                for &l in &lits {
                    occ.remove(l, cref);
                }
                stored.push(lits);
                self.db.delete(cref);
            }
            self.elim_stack.push((v, stored));
            self.eliminated[idx] = true;
            self.stats.eliminated_vars += 1;
            for r in resolvents {
                if !r.is_empty() {
                    self.proof_add(&r);
                }
                match r.len() {
                    0 => {
                        self.ok = false;
                        self.proof_empty();
                        return false;
                    }
                    1 => match self.lit_value(r[0]) {
                        LBool::True => {}
                        LBool::False => {
                            self.ok = false;
                            self.proof_empty();
                            return false;
                        }
                        LBool::Undef => self.unchecked_enqueue(r[0], None),
                    },
                    _ => {
                        let new_ref = self.db.alloc(&r, false, 0, Tier::Core);
                        for &l in &r {
                            occ.add(l, new_ref);
                        }
                    }
                }
            }
            if !self.occ_propagate(occ, cursor) {
                return false;
            }
        }
        self.ok
    }

    /// Scrubs every live clause (learnt ones included) against the
    /// top-level assignment after the occurrence phases: satisfied clauses
    /// are deleted, false literals stripped, learnt clauses mentioning
    /// eliminated variables dropped. Loops until no new top-level unit is
    /// produced, leaving every live clause ≥ 2 unassigned literals — the
    /// invariant watch-list reconstruction needs.
    pub(crate) fn final_cleanup(&mut self) -> bool {
        loop {
            let mark = self.trail.len();
            let refs: Vec<ClauseRef> = self.db.live_refs().collect();
            for cref in refs {
                if self.db.is_learnt(cref)
                    && self
                        .db
                        .lits(cref)
                        .iter()
                        .any(|l| self.eliminated[l.var().index()])
                {
                    self.delete_clause_logged(cref);
                    self.stats.deleted_clauses += 1;
                    continue;
                }
                let lits = self.db.lits(cref).to_vec();
                let mut satisfied = false;
                let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
                for &l in &lits {
                    match self.lit_value(l) {
                        LBool::True => {
                            satisfied = true;
                            break;
                        }
                        LBool::False => {}
                        LBool::Undef => kept.push(l),
                    }
                }
                if satisfied {
                    self.delete_clause_logged(cref);
                    continue;
                }
                match kept.len() {
                    0 => {
                        self.ok = false;
                        self.proof_empty();
                        return false;
                    }
                    1 => {
                        self.proof_add(&kept);
                        self.unchecked_enqueue(kept[0], None);
                        self.delete_clause_logged(cref);
                    }
                    _ => {
                        if kept.len() < lits.len() {
                            self.proof_add(&kept);
                            self.proof_delete(&lits);
                            self.db.shrink_clause(cref, &kept);
                        }
                    }
                }
            }
            if self.trail.len() == mark {
                break;
            }
        }
        true
    }

    /// Re-introduces an eliminated variable by re-adding its stored
    /// clauses. Recursive through [`Solver::add_clause`]: stored clauses
    /// may mention variables eliminated later, which are then restored
    /// too. Returns `false` if re-adding exposed a top-level conflict.
    pub(crate) fn restore_var(&mut self, v: Var) -> bool {
        debug_assert!(self.eliminated[v.index()]);
        let pos = self
            .elim_stack
            .iter()
            .position(|(u, _)| *u == v)
            .expect("eliminated variable has an elimination record");
        let (_, clauses) = self.elim_stack.remove(pos);
        self.eliminated[v.index()] = false;
        self.stats.restored_vars += 1;
        // The variable dropped out of the decision heap while eliminated;
        // make it decidable again.
        self.order.insert(v, &self.activity);
        for c in &clauses {
            if !self.add_clause(c) {
                return false;
            }
        }
        self.ok
    }

    /// Extends the model found by search to eliminated variables, in
    /// reverse elimination order: a variable defaults to false unless one
    /// of its stored clauses has every other literal false, in which case
    /// the clause's own literal decides the value. Because BVE added every
    /// non-tautological resolvent, the stored clauses can never force both
    /// polarities under a model of the reduced formula.
    pub(crate) fn extend_model(&mut self) {
        if self.elim_stack.is_empty() {
            return;
        }
        let stack = std::mem::take(&mut self.elim_stack);
        for (v, clauses) in stack.iter().rev() {
            let mut value = LBool::False;
            'clauses: for c in clauses {
                let mut own = None;
                for &l in c {
                    if l.var() == *v {
                        own = Some(l);
                        continue;
                    }
                    match self.model[l.var().index()].of_lit(l) {
                        LBool::True => continue 'clauses,
                        LBool::False => {}
                        LBool::Undef => {
                            unreachable!("reconstruction order leaves no literal unassigned")
                        }
                    }
                }
                let l = own.expect("stored clause mentions its eliminated variable");
                value = LBool::from_bool(l.is_positive());
            }
            self.model[v.index()] = value;
        }
        self.elim_stack = stack;
    }
}
