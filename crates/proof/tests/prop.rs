//! Property-based tests for the proof pipeline: every DRAT stream the
//! solver emits on a random CNF must pass the independent checker, both for
//! plain refutations and for assumption-based UNSATs certified by the
//! wrapper trick; and damaged streams must be rejected.

use hh_proof::{check_proof, check_proof_with_assumptions, CheckError, MemoryProof, ProofLine};
use hh_sat::{dimacs, Config, LimitedResult, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random clause set over `num_vars` variables, as signed var indices.
fn arb_cnf(num_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    let clause = proptest::collection::vec((0..num_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses)
}

fn build_solver(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
    for clause in clauses {
        let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        s.add_clause(&lits);
    }
    s
}

/// Runs a solver on the clauses with proof logging attached and returns
/// `(formula snapshot, result, proof)`. The snapshot is taken before
/// solving — it is the formula the proof stream refutes.
fn solve_logged(
    num_vars: usize,
    clauses: &[Vec<(usize, bool)>],
    assumptions: &[Lit],
) -> (Vec<Vec<Lit>>, SolveResult, Vec<ProofLine>) {
    let mut s = build_solver(num_vars, clauses);
    let formula = dimacs::from_solver(&s).clauses;
    let sink = MemoryProof::new();
    let handle = sink.handle();
    s.set_proof_sink(Box::new(sink));
    let res = if assumptions.is_empty() {
        s.solve()
    } else {
        s.solve_with_assumptions(assumptions)
    };
    (formula, res, handle.take_lines())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Every UNSAT run's proof stream passes the independent checker
    /// against the pre-solve formula snapshot.
    #[test]
    fn solver_proofs_always_check(clauses in arb_cnf(8, 40)) {
        let (formula, res, proof) = solve_logged(8, &clauses, &[]);
        if res == SolveResult::Unsat {
            let stats = check_proof(&formula, &proof)
                .unwrap_or_else(|e| panic!("valid proof rejected: {e}\nformula: {clauses:?}"));
            prop_assert!(stats.lines <= proof.len() + 1);
        }
    }

    /// Assumption-based UNSATs check under the wrapper trick: the final
    /// core is logged as units, which are RUP once the checker installs the
    /// assumptions as input units.
    #[test]
    fn assumption_proofs_always_check(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let assumptions: Vec<Lit> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| vars[i].lit((polarity >> i) & 1 == 1))
            .collect();
        let (formula, res, proof) = solve_logged(7, &clauses, &assumptions);
        if res == SolveResult::Unsat {
            check_proof_with_assumptions(&formula, &assumptions, &proof)
                .unwrap_or_else(|e| panic!("valid assumption proof rejected: {e}"));
        }
    }

    /// Dropping proof lines is detected: the minimal accepted prefix of a
    /// valid proof becomes invalid when its last line is removed.
    #[test]
    fn dropped_proof_line_is_rejected(clauses in arb_cnf(8, 40)) {
        let (formula, res, proof) = solve_logged(8, &clauses, &[]);
        if res != SolveResult::Unsat {
            return Ok(());
        }
        prop_assert!(check_proof(&formula, &proof).is_ok());
        let k = (0..=proof.len())
            .find(|&k| check_proof(&formula, &proof[..k]).is_ok())
            .expect("the full proof is accepted");
        if k > 0 {
            prop_assert!(
                check_proof(&formula, &proof[..k - 1]).is_err(),
                "prefix of length {} accepted but {} is the minimal accepted prefix",
                k - 1,
                k
            );
        }
    }

    /// Stripping every addition (keeping deletions) kills any proof whose
    /// formula does not already refute itself by propagation — deletions
    /// only ever weaken the clause database.
    #[test]
    fn adds_stripped_proof_is_rejected(clauses in arb_cnf(8, 40)) {
        let (formula, res, proof) = solve_logged(8, &clauses, &[]);
        if res != SolveResult::Unsat || check_proof(&formula, &[]).is_ok() {
            return Ok(());
        }
        let deletes_only: Vec<ProofLine> = proof
            .iter()
            .filter(|l| matches!(l, ProofLine::Delete(_)))
            .cloned()
            .collect();
        prop_assert_eq!(
            check_proof(&formula, &deletes_only),
            Err(CheckError::NoRefutation)
        );
    }

    /// Database reduction and arena compaction only ever *weaken* the DRAT
    /// stream: a proof logged across forced reduce/compact cycles between
    /// incremental queries still passes the independent checker. Runs where
    /// an intermediate query already went UNSAT are skipped — the wrapper
    /// trick certifies one assumption set per stream.
    #[test]
    fn proofs_check_across_reduce_and_compaction(
        clauses in arb_cnf(7, 30),
        churn in proptest::collection::vec(
            proptest::collection::vec((0..7usize, any::<bool>()), 0..=3), 1..4),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let to_lits = |set: &[(usize, bool)]| -> Vec<Lit> {
            set.iter().map(|&(v, pos)| vars[v].lit(pos)).collect()
        };
        let mut s = build_solver(7, &clauses);
        let formula = dimacs::from_solver(&s).clauses;
        let sink = MemoryProof::new();
        let handle = sink.handle();
        s.set_proof_sink(Box::new(sink));
        for set in &churn {
            if s.solve_with_assumptions(&to_lits(set)) == SolveResult::Unsat {
                // Stream already carries this set's core units; a later
                // check under different assumptions would be vacuous.
                return Ok(());
            }
            s.debug_force_reduce();
            s.debug_force_compact();
        }
        let assumptions: Vec<Lit> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| vars[i].lit((polarity >> i) & 1 == 1))
            .collect();
        if s.solve_with_assumptions(&assumptions) == SolveResult::Unsat {
            let proof = handle.take_lines();
            check_proof_with_assumptions(&formula, &assumptions, &proof)
                .unwrap_or_else(|e| {
                    panic!("proof broken by reduce/compaction: {e}\nformula: {clauses:?}")
                });
        }
    }

    /// Clause vivification rewrites the database between queries — every
    /// strengthened clause is logged add-then-delete — and the stream must
    /// stay checkable across vivify/reduce/compact cycles. All variables
    /// are frozen so elimination cannot hide them from later assumptions.
    #[test]
    fn proofs_check_across_vivification(
        clauses in arb_cnf(7, 30),
        churn in proptest::collection::vec(
            proptest::collection::vec((0..7usize, any::<bool>()), 0..=3), 1..4),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let to_lits = |set: &[(usize, bool)]| -> Vec<Lit> {
            set.iter().map(|&(v, pos)| vars[v].lit(pos)).collect()
        };
        let mut s = Solver::with_config(Config {
            vivify: true,
            vivify_budget: u64::MAX,
            ..Config::default()
        });
        for _ in 0..7 {
            s.new_var();
        }
        for clause in &clauses {
            s.add_clause(&to_lits(clause));
        }
        for v in &vars {
            s.freeze(*v);
        }
        let formula = dimacs::from_solver(&s).clauses;
        let sink = MemoryProof::new();
        let handle = sink.handle();
        s.set_proof_sink(Box::new(sink));
        for set in &churn {
            if s.solve_with_assumptions(&to_lits(set)) == SolveResult::Unsat {
                return Ok(());
            }
            if !s.simplify() {
                break;
            }
            s.debug_force_reduce();
            s.debug_force_compact();
        }
        let assumptions: Vec<Lit> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| vars[i].lit((polarity >> i) & 1 == 1))
            .collect();
        if s.solve_with_assumptions(&assumptions) == SolveResult::Unsat {
            let proof = handle.take_lines();
            check_proof_with_assumptions(&formula, &assumptions, &proof)
                .unwrap_or_else(|e| {
                    panic!("proof broken by vivification: {e}\nformula: {clauses:?}")
                });
        }
    }

    /// Chronological backtracking at its most aggressive threshold still
    /// emits checkable DRAT streams, with and without assumptions. The
    /// out-of-order trail must never leak underivable clauses into the
    /// proof.
    #[test]
    fn chrono_proofs_always_check(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let assumptions: Vec<Lit> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| vars[i].lit((polarity >> i) & 1 == 1))
            .collect();
        let mut s = Solver::with_config(Config {
            chrono: true,
            chrono_threshold: 1,
            ..Config::default()
        });
        for _ in 0..7 {
            s.new_var();
        }
        for clause in &clauses {
            let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
            s.add_clause(&lits);
        }
        let formula = dimacs::from_solver(&s).clauses;
        let sink = MemoryProof::new();
        let handle = sink.handle();
        s.set_proof_sink(Box::new(sink));
        if s.solve_with_assumptions(&assumptions) == SolveResult::Unsat {
            let proof = handle.take_lines();
            check_proof_with_assumptions(&formula, &assumptions, &proof)
                .unwrap_or_else(|e| panic!("chrono proof rejected: {e}\nformula: {clauses:?}"));
        }
    }

    /// A solve driven to its verdict through many tiny `solve_limited`
    /// budget rounds (the portfolio racing pattern) produces one DRAT
    /// stream across all the suspensions, and it still checks.
    #[test]
    fn budgeted_solve_proofs_always_check(clauses in arb_cnf(7, 30), slice in 1u64..8) {
        let mut s = build_solver(7, &clauses);
        let formula = dimacs::from_solver(&s).clauses;
        let sink = MemoryProof::new();
        let handle = sink.handle();
        s.set_proof_sink(Box::new(sink));
        let mut verdict = None;
        for _ in 0..10_000 {
            match s.solve_limited(&[], slice) {
                LimitedResult::Unknown => continue,
                v => { verdict = Some(v); break; }
            }
        }
        if verdict == Some(LimitedResult::Unsat) {
            let proof = handle.take_lines();
            check_proof(&formula, &proof)
                .unwrap_or_else(|e| panic!("budgeted proof rejected: {e}\nformula: {clauses:?}"));
        }
    }

    /// A full portfolio race run with a proof sink attached to the primary
    /// (the deterministically-chosen winner) still yields a checkable DRAT
    /// stream: the diversified arm's clauses are declined at import under
    /// proof logging, so every line of the stream is the primary's own
    /// derivation. Tiny opening slices force the race to actually engage.
    #[test]
    fn portfolio_race_proofs_always_check(
        clauses in arb_cnf(7, 30),
        pattern in 0u8..128,
        polarity in 0u8..128,
        slice in 1u64..4,
    ) {
        let vars: Vec<Var> = (0..7).map(Var::from_index).collect();
        let assumptions: Vec<Lit> = (0..7)
            .filter(|i| (pattern >> i) & 1 == 1)
            .map(|i| vars[i].lit((polarity >> i) & 1 == 1))
            .collect();
        let mut s = build_solver(7, &clauses);
        for l in &assumptions {
            s.freeze(l.var());
        }
        let formula = dimacs::from_solver(&s).clauses;
        let sink = MemoryProof::new();
        let handle = sink.handle();
        s.set_proof_sink(Box::new(sink));
        let (res, _report) = hh_smt::portfolio::race_with(&mut s, &assumptions, slice);
        if res == SolveResult::Unsat {
            let proof = handle.take_lines();
            check_proof_with_assumptions(&formula, &assumptions, &proof)
                .unwrap_or_else(|e| panic!("portfolio proof rejected: {e}\nformula: {clauses:?}"));
        }
    }

    /// Text and binary DRAT serialisations round-trip arbitrary streams.
    #[test]
    fn drat_serialisation_roundtrips(clauses in arb_cnf(8, 40)) {
        let (_, res, proof) = solve_logged(8, &clauses, &[]);
        // SAT runs still log learnt clauses; every stream must round-trip.
        let _ = res;
        let text = hh_proof::drat::to_text(&proof);
        prop_assert_eq!(&hh_proof::drat::parse_text(&text).unwrap(), &proof);
        let bin = hh_proof::drat::to_binary(&proof);
        prop_assert_eq!(&hh_proof::drat::parse_binary(&bin).unwrap(), &proof);
    }
}
