//! DRAT proof representation and the text/binary wire formats.
//!
//! A proof is a sequence of [`ProofLine`]s: clause additions and clause
//! deletions, exactly as streamed by `hh-sat`'s
//! [`hh_sat::proof::ProofSink`]. Two standard encodings are provided:
//!
//! * **Text DRAT** — one line per step, literals in DIMACS convention
//!   (1-based, sign = polarity), `0`-terminated; deletions are prefixed
//!   with `d`. Readable, diffable, accepted by external tools.
//! * **Binary DRAT** — the compact format used by `drat-trim`: each step is
//!   an `a`/`d` byte followed by variable-length (7-bit, continuation-bit)
//!   encoded literals and a terminating `0x00`. A literal `i` maps to the
//!   unsigned `2i` when positive and `2|i| + 1` when negative.

use hh_sat::proof::ProofSink;
use hh_sat::{Lit, Var};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One step of a DRAT proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofLine {
    /// Addition of a (RUP/RAT-redundant) clause; empty = refutation done.
    Add(Vec<Lit>),
    /// Deletion of a clause previously in the formula. A hint: checkers may
    /// ignore it.
    Delete(Vec<Lit>),
}

impl ProofLine {
    /// The literals of the step, regardless of kind.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofLine::Add(l) | ProofLine::Delete(l) => l,
        }
    }
}

/// An in-memory [`ProofSink`] capturing the proof as [`ProofLine`]s.
///
/// The line buffer lives behind an [`Arc`] so the caller can keep a
/// [`MemoryProof::handle`] while the sink itself is boxed into the solver,
/// and read the lines back after solving without downcasting.
#[derive(Debug, Default, Clone)]
pub struct MemoryProof {
    lines: Arc<Mutex<Vec<ProofLine>>>,
}

impl MemoryProof {
    /// Creates an empty proof buffer.
    pub fn new() -> MemoryProof {
        MemoryProof::default()
    }

    /// A second handle onto the same buffer.
    pub fn handle(&self) -> MemoryProof {
        self.clone()
    }

    /// Takes the recorded lines out of the buffer.
    pub fn take_lines(&self) -> Vec<ProofLine> {
        std::mem::take(&mut *self.lines.lock().unwrap())
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ProofSink for MemoryProof {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.lines
            .lock()
            .unwrap()
            .push(ProofLine::Add(lits.to_vec()));
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.lines
            .lock()
            .unwrap()
            .push(ProofLine::Delete(lits.to_vec()));
    }
}

fn dimacs_int(l: Lit) -> i64 {
    let v = l.var().index() as i64 + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

fn lit_from_dimacs(n: i64) -> Result<Lit, String> {
    if n == 0 {
        return Err("literal 0 inside a clause".into());
    }
    Ok(Var::from_index(n.unsigned_abs() as usize - 1).lit(n > 0))
}

/// Renders a proof in text DRAT.
pub fn to_text(lines: &[ProofLine]) -> String {
    let mut out = String::new();
    for line in lines {
        if let ProofLine::Delete(_) = line {
            out.push_str("d ");
        }
        for &l in line.lits() {
            let _ = write!(out, "{} ", dimacs_int(l));
        }
        out.push_str("0\n");
    }
    out
}

/// Parses a text DRAT proof.
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_text(text: &str) -> Result<Vec<ProofLine>, String> {
    let mut lines = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let raw = raw.trim();
        if raw.is_empty() || raw.starts_with('c') {
            continue;
        }
        let (delete, body) =
            match raw
                .strip_prefix("d ")
                .or(if raw == "d" { Some("") } else { None })
            {
                Some(rest) => (true, rest),
                None => (false, raw),
            };
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in body.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad token {tok:?}", lineno + 1))?;
            if n == 0 {
                terminated = true;
                break;
            }
            lits.push(lit_from_dimacs(n).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        if !terminated {
            return Err(format!("line {}: missing terminating 0", lineno + 1));
        }
        lines.push(if delete {
            ProofLine::Delete(lits)
        } else {
            ProofLine::Add(lits)
        });
    }
    Ok(lines)
}

fn mapped_unsigned(l: Lit) -> u64 {
    let n = dimacs_int(l);
    if n > 0 {
        2 * n as u64
    } else {
        2 * n.unsigned_abs() + 1
    }
}

fn push_varint(out: &mut Vec<u8>, mut u: u64) {
    loop {
        let byte = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Renders a proof in binary DRAT.
pub fn to_binary(lines: &[ProofLine]) -> Vec<u8> {
    let mut out = Vec::new();
    for line in lines {
        out.push(match line {
            ProofLine::Add(_) => b'a',
            ProofLine::Delete(_) => b'd',
        });
        for &l in line.lits() {
            push_varint(&mut out, mapped_unsigned(l));
        }
        out.push(0);
    }
    out
}

/// Parses a binary DRAT proof.
///
/// # Errors
///
/// Returns a description of the first malformed byte (bad step tag,
/// truncated varint or truncated clause).
pub fn parse_binary(bytes: &[u8]) -> Result<Vec<ProofLine>, String> {
    let mut lines = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let tag = bytes[i];
        i += 1;
        let delete = match tag {
            b'a' => false,
            b'd' => true,
            other => return Err(format!("offset {}: bad step tag {other:#04x}", i - 1)),
        };
        let mut lits = Vec::new();
        loop {
            let mut u: u64 = 0;
            let mut shift = 0u32;
            loop {
                let byte = *bytes
                    .get(i)
                    .ok_or_else(|| format!("offset {i}: truncated proof"))?;
                i += 1;
                u |= u64::from(byte & 0x7f) << shift;
                shift += 7;
                if byte & 0x80 == 0 {
                    break;
                }
                if shift > 63 {
                    return Err(format!("offset {i}: varint overflow"));
                }
            }
            if u == 0 {
                break;
            }
            let n = if u.is_multiple_of(2) {
                (u / 2) as i64
            } else {
                -((u / 2) as i64)
            };
            lits.push(lit_from_dimacs(n).map_err(|e| format!("offset {i}: {e}"))?);
        }
        lines.push(if delete {
            ProofLine::Delete(lits)
        } else {
            ProofLine::Add(lits)
        });
    }
    Ok(lines)
}

/// A streaming text-DRAT [`ProofSink`] over any [`std::io::Write`].
pub struct DratTextWriter<W: std::io::Write + Send> {
    w: W,
    bytes: u64,
}

impl<W: std::io::Write + Send> DratTextWriter<W> {
    /// Wraps `w`.
    pub fn new(w: W) -> DratTextWriter<W> {
        DratTextWriter { w, bytes: 0 }
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    fn write_step(&mut self, prefix: &str, lits: &[Lit]) {
        let mut s = String::with_capacity(prefix.len() + 4 * lits.len() + 2);
        s.push_str(prefix);
        for &l in lits {
            let _ = write!(s, "{} ", dimacs_int(l));
        }
        s.push_str("0\n");
        self.bytes += s.len() as u64;
        // Proof emission must not perturb solving; I/O errors surface when
        // the checker finds the file truncated.
        let _ = self.w.write_all(s.as_bytes());
    }
}

impl<W: std::io::Write + Send> std::fmt::Debug for DratTextWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DratTextWriter")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl<W: std::io::Write + Send> ProofSink for DratTextWriter<W> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.write_step("", lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.write_step("d ", lits);
    }
}

/// A streaming binary-DRAT [`ProofSink`] over any [`std::io::Write`].
pub struct DratBinaryWriter<W: std::io::Write + Send> {
    w: W,
    bytes: u64,
}

impl<W: std::io::Write + Send> DratBinaryWriter<W> {
    /// Wraps `w`.
    pub fn new(w: W) -> DratBinaryWriter<W> {
        DratBinaryWriter { w, bytes: 0 }
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    fn write_step(&mut self, tag: u8, lits: &[Lit]) {
        let mut buf = Vec::with_capacity(2 + 2 * lits.len());
        buf.push(tag);
        for &l in lits {
            push_varint(&mut buf, mapped_unsigned(l));
        }
        buf.push(0);
        self.bytes += buf.len() as u64;
        let _ = self.w.write_all(&buf);
    }
}

impl<W: std::io::Write + Send> std::fmt::Debug for DratBinaryWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DratBinaryWriter")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl<W: std::io::Write + Send> ProofSink for DratBinaryWriter<W> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.write_step(b'a', lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.write_step(b'd', lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        lit_from_dimacs(n).unwrap()
    }

    fn sample() -> Vec<ProofLine> {
        vec![
            ProofLine::Add(vec![lit(1), lit(-2), lit(130)]),
            ProofLine::Delete(vec![lit(-1), lit(2)]),
            ProofLine::Add(vec![]),
        ]
    }

    #[test]
    fn text_roundtrip() {
        let p = sample();
        let text = to_text(&p);
        assert_eq!(text, "1 -2 130 0\nd -1 2 0\n0\n");
        assert_eq!(parse_text(&text).unwrap(), p);
    }

    #[test]
    fn binary_roundtrip() {
        let p = sample();
        let bin = to_binary(&p);
        assert_eq!(parse_binary(&bin).unwrap(), p);
        // Spot-check the mapping: literal 130 -> unsigned 260 -> two bytes.
        assert_eq!(bin[0], b'a');
        assert_eq!(bin[1], 2); // lit 1 -> 2
        assert_eq!(bin[2], 5); // lit -2 -> 5
        assert_eq!(&bin[3..5], &[0x84, 0x02]); // 260 = 0b100000100
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(parse_binary(&[b'x', 0]).is_err());
        assert!(parse_binary(&[b'a', 0x80]).is_err());
        assert!(parse_binary(&[b'a', 2]).is_err()); // missing terminator
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(parse_text("1 frog 0\n").is_err());
        assert!(parse_text("1 2\n").is_err()); // missing terminating 0
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mut sink = MemoryProof::new();
        let handle = sink.handle();
        sink.add_clause(&[lit(1)]);
        sink.delete_clause(&[lit(1), lit(2)]);
        sink.add_clause(&[]);
        let lines = handle.take_lines();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], ProofLine::Add(vec![lit(1)]));
        assert_eq!(lines[1], ProofLine::Delete(vec![lit(1), lit(2)]));
        assert_eq!(lines[2], ProofLine::Add(vec![]));
        assert!(handle.is_empty());
    }

    #[test]
    fn writers_match_batch_encoders() {
        let p = sample();
        let mut tw = DratTextWriter::new(Vec::new());
        let mut bw = DratBinaryWriter::new(Vec::new());
        for line in &p {
            match line {
                ProofLine::Add(l) => {
                    tw.add_clause(l);
                    bw.add_clause(l);
                }
                ProofLine::Delete(l) => {
                    tw.delete_clause(l);
                    bw.delete_clause(l);
                }
            }
        }
        assert_eq!(tw.bytes_written() as usize, to_text(&p).len());
        assert_eq!(String::from_utf8(tw.into_inner()).unwrap(), to_text(&p));
        assert_eq!(bw.into_inner(), to_binary(&p));
    }
}
