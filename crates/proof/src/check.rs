//! A standalone forward DRAT checker.
//!
//! Verifies that a [`ProofLine`] stream refutes a CNF formula, trusting
//! nothing about the producing solver. Each added clause is checked for the
//! RUP property (assume the negation of every literal, unit-propagate,
//! expect a conflict) and, failing that, for RAT on its first literal
//! (every resolvent on the pivot must itself be RUP). Propagation uses
//! two-watched literals; deletions are resolved through a hash index from
//! sorted literal vectors to clause slots.
//!
//! Deletion conventions (matching `drat-trim`):
//!
//! * deleting a unit or empty clause is ignored,
//! * deleting a clause that is the reason of a top-level propagation is
//!   ignored (retracting the propagation would be unsound bookkeeping),
//! * deleting a clause not currently in the formula is ignored.
//!
//! All three only *weaken* the deletion information, which for a forward
//! checker is always sound. Once the empty clause has been verified the
//! remainder of the stream is irrelevant and is skipped.

use crate::drat::ProofLine;
use hh_sat::Lit;
use std::collections::HashMap;

/// Counters describing a successful check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Proof lines consumed (including any skipped after refutation).
    pub lines: usize,
    /// Clause additions verified.
    pub adds: usize,
    /// Clause deletions applied.
    pub deletes: usize,
    /// Additions that needed the RAT fallback (zero for the pure-RUP
    /// streams `hh-sat` emits).
    pub rat_steps: usize,
    /// Deletions ignored per the conventions above.
    pub ignored_deletes: usize,
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// An added clause is neither RUP nor RAT at its position.
    NotRedundant {
        /// 0-based index of the offending line in the proof.
        line: usize,
        /// The clause that failed the check.
        clause: Vec<Lit>,
    },
    /// The stream ended without deriving (or implying) the empty clause.
    NoRefutation,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotRedundant { line, clause } => {
                write!(f, "proof line {line}: clause {clause:?} is not RUP/RAT")
            }
            CheckError::NoRefutation => write!(f, "proof does not derive the empty clause"),
        }
    }
}

impl std::error::Error for CheckError {}

#[derive(Debug)]
struct CClause {
    lits: Vec<Lit>,
    active: bool,
}

#[derive(Debug, Default)]
struct Checker {
    clauses: Vec<CClause>,
    /// Watch lists by literal code; entries are clause slots. Lazily pruned.
    watches: Vec<Vec<usize>>,
    /// Per-variable value: 0 unassigned, 1 positive true, -1 positive false.
    assigns: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Sorted-literal key -> active clause slots (for deletions).
    index: HashMap<Vec<Lit>, Vec<usize>>,
    /// Slot of the clause that propagated each trail literal (by var).
    /// Entries for temporary (in-check) assignments are erased on undo, so
    /// at deletion time only top-level reasons remain.
    reason: Vec<Option<usize>>,
    refuted: bool,
    stats: CheckStats,
}

impl Checker {
    fn new(num_vars: usize) -> Checker {
        Checker {
            watches: vec![Vec::new(); 2 * num_vars],
            assigns: vec![0; num_vars],
            reason: vec![None; num_vars],
            ..Checker::default()
        }
    }

    #[inline]
    fn value(&self, l: Lit) -> i8 {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    #[inline]
    fn assign(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value(l), 0);
        self.assigns[l.var().index()] = if l.is_positive() { 1 } else { -1 };
        self.reason[l.var().index()] = reason;
        self.trail.push(l);
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().unwrap();
            self.assigns[l.var().index()] = 0;
            self.reason[l.var().index()] = None;
        }
        self.qhead = mark;
    }

    /// Unit propagation to fixpoint. Returns `true` on conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let ci = ws[i];
                i += 1;
                if !self.clauses[ci].active {
                    continue; // deleted: drop the watch entry
                }
                let false_lit = !p;
                {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    if c.lits[1] != false_lit {
                        // Stale entry from an earlier watch move; drop it.
                        continue;
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == 1 {
                    ws[j] = ci;
                    j += 1;
                    continue;
                }
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value(lk) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[(!lk).code()].push(ci);
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[j] = ci;
                j += 1;
                if self.value(first) == -1 {
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.code()] = ws;
                    return true;
                }
                self.assign(first, Some(ci));
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
        }
        false
    }

    /// Installs a clause as an axiom (input formula, assumption unit, or a
    /// just-verified addition). May set `refuted` if the clause conflicts
    /// with the fixed assignment outright.
    fn install(&mut self, mut lits: Vec<Lit>) {
        if lits.is_empty() {
            self.refuted = true;
            return;
        }
        if lits.len() == 1 {
            match self.value(lits[0]) {
                1 => {}
                -1 => self.refuted = true,
                _ => {
                    self.assign(lits[0], None);
                    if self.propagate() {
                        self.refuted = true;
                    }
                }
            }
            return;
        }
        // Put two non-false literals up front so the watch invariant holds;
        // if fewer exist the clause is unit/conflicting under the fixed
        // assignment and is handled as such.
        let mut nonfalse = 0;
        for k in 0..lits.len() {
            if self.value(lits[k]) != -1 {
                lits.swap(nonfalse, k);
                nonfalse += 1;
                if nonfalse == 2 {
                    break;
                }
            }
        }
        let slot = self.clauses.len();
        match nonfalse {
            0 => {
                self.refuted = true;
                return;
            }
            1 if self.value(lits[0]) == 0 => {
                self.assign(lits[0], None);
                if self.propagate() {
                    self.refuted = true;
                }
            }
            _ => {}
        }
        let mut key = lits.clone();
        key.sort_unstable();
        self.watches[(!lits[0]).code()].push(slot);
        self.watches[(!lits[1]).code()].push(slot);
        self.index.entry(key).or_default().push(slot);
        self.clauses.push(CClause { lits, active: true });
    }

    /// RUP check: assume the negation of `c` on top of the current fixed
    /// assignment and propagate. Leaves the temporary assignments on the
    /// trail iff `keep` (used to layer RAT resolvent checks on top);
    /// returns `true` if a conflict was reached.
    fn rup(&mut self, c: &[Lit], keep: bool) -> bool {
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in c {
            match self.value(l) {
                1 => {
                    conflict = true;
                    break;
                }
                -1 => {}
                _ => self.assign(!l, None),
            }
        }
        if !conflict {
            conflict = self.propagate();
        }
        if conflict || !keep {
            self.undo_to(mark);
        }
        conflict
    }

    /// Verifies one clause addition: RUP, then RAT on the first literal.
    fn check_add(&mut self, c: &[Lit]) -> bool {
        let mark = self.trail.len();
        if self.rup(c, true) {
            return true; // rup() already unwound the trail on conflict
        }
        // The negated-clause assignment (plus its propagation) is still on
        // the trail for the RAT resolvent checks: RAT is defined w.r.t. the
        // full negation of C, so each candidate resolvent only extends it.
        let Some(&pivot) = c.first() else {
            self.undo_to(mark);
            return false; // empty clause failed RUP: nothing to pivot on
        };
        let resolvers: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].active && self.clauses[i].lits.contains(&!pivot))
            .collect();
        let mut ok = true;
        for d in resolvers {
            let dl = self.clauses[d].lits.clone();
            let mut conflict = false;
            let m2 = self.trail.len();
            for &l in &dl {
                if l == !pivot {
                    continue;
                }
                match self.value(l) {
                    1 => {
                        conflict = true;
                        break;
                    }
                    -1 => {}
                    _ => self.assign(!l, None),
                }
            }
            if !conflict {
                conflict = self.propagate();
            }
            self.undo_to(m2);
            if !conflict {
                ok = false;
                break;
            }
        }
        self.stats.rat_steps += 1;
        self.undo_to(mark);
        ok
    }

    fn delete(&mut self, lits: &[Lit]) {
        if lits.len() <= 1 {
            self.stats.ignored_deletes += 1;
            return;
        }
        let mut key = lits.to_vec();
        key.sort_unstable();
        key.dedup();
        let Some(slots) = self.index.get(&key) else {
            self.stats.ignored_deletes += 1;
            return;
        };
        // Skip slots that are the reason of a fixed propagation.
        let mut chosen = None;
        for (pos, &slot) in slots.iter().enumerate() {
            let is_reason = self.clauses[slot]
                .lits
                .iter()
                .any(|l| self.value(*l) == 1 && self.reason[l.var().index()] == Some(slot));
            if !is_reason {
                chosen = Some((pos, slot));
                break;
            }
        }
        match chosen {
            Some((pos, slot)) => {
                let slots = self.index.get_mut(&key).expect("slot list present");
                slots.swap_remove(pos);
                if slots.is_empty() {
                    self.index.remove(&key);
                }
                self.clauses[slot].active = false;
                self.stats.deletes += 1;
            }
            None => {
                self.stats.ignored_deletes += 1;
            }
        }
    }
}

fn max_var(formula: &[Vec<Lit>], assumptions: &[Lit], proof: &[ProofLine]) -> usize {
    let mut m = 0usize;
    let scan = |m: &mut usize, lits: &[Lit]| {
        for l in lits {
            *m = (*m).max(l.var().index() + 1);
        }
    };
    for c in formula {
        scan(&mut m, c);
    }
    scan(&mut m, assumptions);
    for line in proof {
        scan(&mut m, line.lits());
    }
    m
}

/// Checks that `proof` refutes `formula`.
///
/// # Errors
///
/// [`CheckError::NotRedundant`] if an addition fails RUP/RAT,
/// [`CheckError::NoRefutation`] if the stream never reaches (or implies)
/// the empty clause.
pub fn check_proof(formula: &[Vec<Lit>], proof: &[ProofLine]) -> Result<CheckStats, CheckError> {
    check_proof_with_assumptions(formula, &[], proof)
}

/// Checks that `proof` refutes `formula ∧ assumptions`.
///
/// This is the consumer side of `hh-sat`'s assumption wrapper: the solver
/// logs the final-core literals as unit additions before the empty clause,
/// and those units are justified here by installing the assumption set as
/// axioms first. Passing the solver's reported core (or any superset, e.g.
/// the full assumption list) makes the stream a plain RUP refutation.
///
/// # Errors
///
/// Same as [`check_proof`].
pub fn check_proof_with_assumptions(
    formula: &[Vec<Lit>],
    assumptions: &[Lit],
    proof: &[ProofLine],
) -> Result<CheckStats, CheckError> {
    let _span = hh_trace::span!("proof", "proof.check");
    let mut ck = Checker::new(max_var(formula, assumptions, proof));
    for c in formula {
        let mut c = c.clone();
        c.sort_unstable();
        c.dedup();
        if c.windows(2).any(|w| w[1] == !w[0]) {
            continue; // tautology: never constrains anything
        }
        ck.install(c);
        if ck.refuted {
            break;
        }
    }
    for &a in assumptions {
        if ck.refuted {
            break;
        }
        ck.install(vec![a]);
    }
    if !ck.refuted && ck.propagate() {
        ck.refuted = true;
    }
    for (i, line) in proof.iter().enumerate() {
        ck.stats.lines = i + 1;
        if ck.refuted {
            ck.stats.lines = proof.len();
            break;
        }
        match line {
            ProofLine::Add(c) => {
                if !ck.check_add(c) {
                    return Err(CheckError::NotRedundant {
                        line: i,
                        clause: c.clone(),
                    });
                }
                ck.stats.adds += 1;
                ck.install(c.clone());
            }
            ProofLine::Delete(c) => {
                ck.delete(c);
            }
        }
    }
    if hh_trace::enabled() {
        hh_trace::counter!("proof", "proof.check.lines", ck.stats.lines as u64);
    }
    if ck.refuted {
        Ok(ck.stats)
    } else {
        Err(CheckError::NoRefutation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_sat::Var;

    fn lit(n: i64) -> Lit {
        Var::from_index(n.unsigned_abs() as usize - 1).lit(n > 0)
    }

    fn cl(ns: &[i64]) -> Vec<Lit> {
        ns.iter().map(|&n| lit(n)).collect()
    }

    /// The classic pigeonhole-ish RUP example: formula and a hand-written
    /// refutation.
    fn tiny_unsat() -> (Vec<Vec<Lit>>, Vec<ProofLine>) {
        let formula = vec![cl(&[1, 2]), cl(&[1, -2]), cl(&[-1, 2]), cl(&[-1, -2])];
        let proof = vec![ProofLine::Add(cl(&[1])), ProofLine::Add(vec![])];
        (formula, proof)
    }

    #[test]
    fn accepts_valid_rup_proof() {
        let (f, p) = tiny_unsat();
        let stats = check_proof(&f, &p).unwrap();
        // Installing the verified unit [1] propagates straight to a
        // conflict, so the trailing empty-clause line is consumed as
        // already-implied rather than checked as a second addition.
        assert_eq!(stats.adds, 1);
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.rat_steps, 0);
    }

    #[test]
    fn rejects_non_rup_addition() {
        // [1] is not RUP (propagation of ¬1 only gives 2) and not RAT on 1
        // (the resolvent with [-1, 3] leaves 3 unconstrained).
        let f = vec![cl(&[1, 2]), cl(&[-1, 3])];
        let p = vec![ProofLine::Add(cl(&[1])), ProofLine::Add(vec![])];
        match check_proof(&f, &p) {
            Err(CheckError::NotRedundant { line: 0, .. }) => {}
            other => panic!("expected NotRedundant, got {other:?}"),
        }
    }

    #[test]
    fn vacuous_rat_is_accepted_but_empty_clause_still_fails() {
        // [1] has no resolution partners on ¬1, so it is vacuously RAT and
        // accepted (standard DRAT semantics) — but the formula stays
        // satisfiable, so the final empty clause must be rejected.
        let f = vec![cl(&[1, 2])];
        let p = vec![ProofLine::Add(cl(&[1])), ProofLine::Add(vec![])];
        match check_proof(&f, &p) {
            Err(CheckError::NotRedundant { line: 1, clause }) => assert!(clause.is_empty()),
            other => panic!("expected NotRedundant on the empty add, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_refutation() {
        // A valid but incomplete stream on a satisfiable formula.
        let f = vec![cl(&[1, 2])];
        assert_eq!(check_proof(&f, &[]), Err(CheckError::NoRefutation));
        let p = vec![ProofLine::Add(cl(&[3, -1]))]; // RAT definition clause
        assert_eq!(check_proof(&f, &p), Err(CheckError::NoRefutation));
    }

    #[test]
    fn deletion_does_not_break_checking() {
        let (mut f, mut p) = tiny_unsat();
        f.push(cl(&[3, 4])); // irrelevant clause the proof deletes first
        p.insert(0, ProofLine::Delete(cl(&[3, 4])));
        let stats = check_proof(&f, &p).unwrap();
        assert_eq!(stats.deletes, 1);
    }

    #[test]
    fn deleting_needed_clause_makes_later_add_fail() {
        let f = vec![cl(&[1, 2]), cl(&[1, -2]), cl(&[-1, 2]), cl(&[-1, -2])];
        let p = vec![
            ProofLine::Delete(cl(&[1, 2])),
            ProofLine::Delete(cl(&[1, -2])),
            ProofLine::Add(cl(&[1])),
        ];
        assert!(matches!(
            check_proof(&f, &p),
            Err(CheckError::NotRedundant { line: 2, .. })
        ));
    }

    #[test]
    fn unmatched_and_unit_deletions_are_ignored() {
        let (f, mut p) = tiny_unsat();
        p.insert(0, ProofLine::Delete(cl(&[7, 8]))); // never existed
        p.insert(1, ProofLine::Delete(cl(&[1]))); // unit: ignored
        let stats = check_proof(&f, &p).unwrap();
        assert_eq!(stats.ignored_deletes, 2);
    }

    #[test]
    fn assumption_wrapper_checks() {
        // Formula: a -> c, b -> !c. UNSAT only under assumptions {a, b}.
        let f = vec![cl(&[-1, 3]), cl(&[-2, -3])];
        let proof = vec![
            ProofLine::Add(cl(&[1])),
            ProofLine::Add(cl(&[2])),
            ProofLine::Add(vec![]),
        ];
        // Without the assumptions the unit [1] is not derivable.
        assert!(check_proof(&f, &proof).is_err());
        let stats = check_proof_with_assumptions(&f, &cl(&[1, 2]), &proof).unwrap();
        assert!(stats.lines >= 1);
    }

    #[test]
    fn rat_only_step_is_accepted() {
        // Fresh-variable definition x3 <-> x1: the clause [3, -1] is not RUP
        // w.r.t. {[1,2]}, but it is RAT on 3 (no clause contains -3), and
        // [−3, 1] afterwards is RAT on -3 (resolvent with [3,-1] on 3 gives
        // [-1, 1], a tautology).
        let f = vec![cl(&[1, 2])];
        let p = vec![ProofLine::Add(cl(&[3, -1])), ProofLine::Add(cl(&[-3, 1]))];
        // Not a refutation, but every line must verify; expect NoRefutation
        // rather than NotRedundant.
        assert_eq!(check_proof(&f, &p), Err(CheckError::NoRefutation));
    }

    #[test]
    fn trivially_unsat_formula_needs_no_proof() {
        let f = vec![cl(&[1]), cl(&[-1])];
        assert!(check_proof(&f, &[]).is_ok());
    }

    #[test]
    fn empty_add_without_support_is_rejected() {
        let f = vec![cl(&[1, 2])];
        let p = vec![ProofLine::Add(vec![])];
        assert!(matches!(
            check_proof(&f, &p),
            Err(CheckError::NotRedundant { line: 0, .. })
        ));
    }
}
