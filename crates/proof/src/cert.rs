//! End-to-end invariant certificates.
//!
//! A learned invariant `H` is inductive iff for every predicate `p ∈ H`
//! there is a premise set `P(p) ⊆ H` with `⋀P(p) ∧ p ∧ ¬p′` unsatisfiable
//! (the standard Houdini decomposition; H-Houdini's memo table records
//! exactly these sets). A *certificate* packages everything an independent
//! checker needs to confirm this without trusting the learner or the
//! solver:
//!
//! * a durable **design reference** (builtin netlist name — the constructor
//!   is re-run at check time, so the certified circuit cannot be swapped),
//! * the **safe-set patterns** that constrain the instruction alphabet Σ,
//! * the **predicate set** in the wire format of
//!   [`Predicate::to_wire`],
//! * one **obligation** per predicate: its premise indices, the shape
//!   (variable/clause counts + FNV hash) of the obligation CNF, and a
//!   binary-DRAT refutation of that CNF.
//!
//! Checking re-derives each obligation CNF from the netlist via `hh-smt`
//! (the encoding is deterministic), confirms the shape matches what the
//! proof was logged against, and runs the independent RUP/RAT checker of
//! [`crate::check`]. Structural closure — premises drawn from the predicate
//! set, every predicate discharged exactly once, the design's observable
//! properties present — is verified on top, so the checked statement really
//! is "this predicate set is a 1-step inductive relational invariant of
//! this design containing the timing-equality properties".
//!
//! Initiation (the invariant holding on paired reset states) is *not* part
//! of the certificate, mirroring `Invariant::verify_monolithic`, which also
//! certifies consecution only.
//!
//! On disk a certificate is a directory: a `MANIFEST` text file plus one
//! `obligation-NNN.drat` (binary DRAT) per obligation. See
//! `docs/PROOF_FORMAT.md` for the grammar.

use crate::check::{check_proof, CheckStats};
use crate::drat::{self, MemoryProof, ProofLine};
use hh_isa::MaskMatch;
use hh_sat::dimacs::{self, Cnf};
use hh_sat::SolveResult;
use hh_smt::{Predicate, TransitionEncoding};
use hh_uarch::decode::constrained_miter;
use hh_uarch::Design;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// One discharged relative-induction obligation.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Index of the target predicate in the certificate's predicate list.
    pub target: usize,
    /// Indices of the premise predicates (strictly ascending).
    pub premises: Vec<usize>,
    /// Variable count of the obligation CNF the proof refutes.
    pub num_vars: usize,
    /// Clause count of the obligation CNF.
    pub num_clauses: usize,
    /// FNV-1a hash of the obligation CNF's DIMACS text.
    pub cnf_hash: u64,
    /// The DRAT refutation.
    pub proof: Vec<ProofLine>,
}

/// A complete invariant certificate (in-memory form of a bundle).
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Builtin design reference: the product-base netlist's name
    /// (resolvable via [`hh_uarch::builtin_by_netlist_name`]).
    pub design: String,
    /// Safe-set instruction patterns (the Σ constraint).
    pub patterns: Vec<MaskMatch>,
    /// Predicates in wire format, sorted by their structural order.
    pub predicates: Vec<String>,
    /// Indices of the property predicates (`Eq(observable)`).
    pub properties: Vec<usize>,
    /// One obligation per predicate, in target-index order.
    pub obligations: Vec<Obligation>,
}

/// Everything that can go wrong when building or checking a certificate.
#[derive(Debug)]
pub enum CertError {
    /// Filesystem trouble reading or writing a bundle.
    Io(String),
    /// The MANIFEST (or a proof file) is malformed.
    Parse(String),
    /// The design reference does not resolve to a builtin design.
    UnknownDesign(String),
    /// The certificate's structure is inconsistent (bad indices, missing
    /// or duplicate obligations, property set mismatch, unsorted
    /// predicates).
    Structure(String),
    /// A re-derived obligation CNF does not match the certified shape —
    /// the proof was logged against a different formula.
    CnfMismatch {
        /// Obligation index.
        obligation: usize,
        /// Human-readable discrepancy.
        detail: String,
    },
    /// An obligation's DRAT proof failed the independent check.
    ProofRejected {
        /// Obligation index.
        obligation: usize,
        /// The checker's verdict.
        error: crate::check::CheckError,
    },
    /// During emission: an obligation query came back SAT, i.e. the claimed
    /// premises do not make the target relatively inductive.
    NotInductive {
        /// Index of the target predicate.
        target: usize,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Io(e) => write!(f, "i/o error: {e}"),
            CertError::Parse(e) => write!(f, "malformed certificate: {e}"),
            CertError::UnknownDesign(d) => {
                write!(f, "design {d:?} is not a builtin design reference")
            }
            CertError::Structure(e) => write!(f, "certificate structure: {e}"),
            CertError::CnfMismatch { obligation, detail } => {
                write!(f, "obligation {obligation}: CNF mismatch: {detail}")
            }
            CertError::ProofRejected { obligation, error } => {
                write!(f, "obligation {obligation}: proof rejected: {error}")
            }
            CertError::NotInductive { target } => {
                write!(
                    f,
                    "predicate {target} is not inductive relative to its premises"
                )
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Summary of a successful bundle emission.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmitSummary {
    /// Obligations written.
    pub obligations: usize,
    /// Total DRAT proof lines across all obligations.
    pub proof_lines: usize,
    /// Total bytes of binary DRAT written.
    pub proof_bytes: u64,
}

/// Summary of a successful end-to-end check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckReport {
    /// Obligations re-derived and checked.
    pub obligations: usize,
    /// Total predicates in the certified invariant.
    pub predicates: usize,
    /// Aggregated checker statistics.
    pub stats: CheckStats,
}

/// FNV-1a over a byte string; used to fingerprint obligation CNFs as
/// defense-in-depth on top of the variable/clause counts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one relative-induction obligation `⋀premises ∧ target ∧ ¬target′`
/// into a fresh solver, mirroring `hh_smt::check_relative_inductive`'s
/// encoding order exactly (target-now first, premises in list order, then
/// the negated next-state target). Both the emitter and the checker go
/// through this single function, which is what makes the CNF reproducible.
fn encode_obligation<'a>(
    netlist: &'a hh_netlist::Netlist,
    target: &Predicate,
    premises: &[&Predicate],
) -> TransitionEncoding<'a> {
    let mut enc = TransitionEncoding::new(netlist);
    let now = target.encode_current(&mut enc);
    enc.assert_lit(now);
    for p in premises {
        let l = p.encode_current(&mut enc);
        enc.assert_lit(l);
    }
    let next = target.encode_next(&mut enc);
    enc.assert_lit(!next);
    enc
}

fn cnf_fingerprint(cnf: &Cnf) -> u64 {
    fnv1a(dimacs::to_dimacs(cnf).as_bytes())
}

/// Proves one obligation, returning its CNF shape and DRAT refutation.
fn prove_obligation(
    netlist: &hh_netlist::Netlist,
    target_idx: usize,
    target: &Predicate,
    premises: &[&Predicate],
) -> Result<(usize, usize, u64, Vec<ProofLine>), CertError> {
    let _span = hh_trace::span!("proof", "proof.log");
    let mut enc = encode_obligation(netlist, target, premises);
    let solver = enc.cnf_mut().solver_mut();
    let cnf = dimacs::from_solver(solver);
    let mem = MemoryProof::new();
    solver.set_proof_sink(Box::new(mem.handle()));
    let res = solver.solve();
    solver.take_proof_sink();
    if res != SolveResult::Unsat {
        return Err(CertError::NotInductive { target: target_idx });
    }
    let proof = mem.take_lines();
    Ok((
        cnf.num_vars,
        cnf.clauses.len(),
        cnf_fingerprint(&cnf),
        proof,
    ))
}

/// Builds a certificate for `invariant` on `design` with the instruction
/// alphabet constrained to `patterns`.
///
/// `solutions` supplies per-predicate premise sets (H-Houdini's memo table,
/// via the engines' `solutions()` accessor). Predicates without an entry
/// fall back to the full invariant as premise — always sound, just a larger
/// obligation. Every obligation is (re-)proved here with proof logging on;
/// nothing from the learning run is trusted.
///
/// # Errors
///
/// [`CertError::NotInductive`] if some obligation is SAT (the invariant or
/// the supplied premise sets are wrong), [`CertError::Structure`] if the
/// design's property predicates are missing from the invariant, or
/// [`CertError::UnknownDesign`] for non-builtin designs.
pub fn build_certificate(
    design: &Design,
    patterns: &[MaskMatch],
    invariant: &[Predicate],
    solutions: &[(Predicate, Vec<Predicate>)],
) -> Result<Certificate, CertError> {
    let _span = hh_trace::span!("proof", "proof.emit");
    if hh_uarch::builtin_by_netlist_name(design.netlist.name()).is_none() {
        return Err(CertError::UnknownDesign(design.netlist.name().to_string()));
    }
    let miter = constrained_miter(design, patterns);
    let netlist = miter.netlist();

    let mut preds: Vec<Predicate> = invariant.to_vec();
    preds.sort();
    preds.dedup();
    let index: HashMap<&Predicate, usize> = preds.iter().zip(0..).collect();

    let mut properties = Vec::new();
    for &o in &design.observable {
        let prop = Predicate::eq(miter.left(o), miter.right(o));
        match index.get(&prop) {
            Some(&i) => properties.push(i),
            None => {
                return Err(CertError::Structure(format!(
                    "invariant does not contain the property predicate {}",
                    prop.describe(netlist)
                )))
            }
        }
    }

    let memo: HashMap<&Predicate, &Vec<Predicate>> =
        solutions.iter().map(|(p, ab)| (p, ab)).collect();

    let mut obligations = Vec::with_capacity(preds.len());
    for (i, target) in preds.iter().enumerate() {
        // Premise indices: the memoised abduct when available (small,
        // cone-scoped obligation), otherwise every *other* predicate.
        let mut premise_idx: Vec<usize> = match memo.get(target) {
            Some(ab) => {
                let mut v = Vec::with_capacity(ab.len());
                for p in ab.iter() {
                    match index.get(p) {
                        Some(&j) => v.push(j),
                        // A memo premise outside the invariant would be
                        // unsound to cite; fall back to the full set.
                        None => {
                            v = (0..preds.len()).filter(|&j| j != i).collect();
                            break;
                        }
                    }
                }
                v
            }
            None => (0..preds.len()).filter(|&j| j != i).collect(),
        };
        premise_idx.sort_unstable();
        premise_idx.dedup();
        let premise_preds: Vec<&Predicate> = premise_idx.iter().map(|&j| &preds[j]).collect();
        let (num_vars, num_clauses, cnf_hash, proof) =
            prove_obligation(netlist, i, target, &premise_preds)?;
        if hh_trace::enabled() {
            hh_trace::counter!("proof", "proof.obligations", 1);
        }
        obligations.push(Obligation {
            target: i,
            premises: premise_idx,
            num_vars,
            num_clauses,
            cnf_hash,
            proof,
        });
    }

    Ok(Certificate {
        design: design.netlist.name().to_string(),
        patterns: patterns.to_vec(),
        predicates: preds.iter().map(|p| p.to_wire(netlist)).collect(),
        properties,
        obligations,
    })
}

/// Verifies a certificate end to end: re-derives the design and every
/// obligation CNF, checks structure, shapes, and all DRAT proofs.
pub fn verify_certificate(cert: &Certificate) -> Result<CheckReport, CertError> {
    let _span = hh_trace::span!("proof", "proof.verify");
    let design = hh_uarch::builtin_by_netlist_name(&cert.design)
        .ok_or_else(|| CertError::UnknownDesign(cert.design.clone()))?;
    let miter = constrained_miter(&design, &cert.patterns);
    let netlist = miter.netlist();

    let mut preds = Vec::with_capacity(cert.predicates.len());
    for (i, wire) in cert.predicates.iter().enumerate() {
        let p = Predicate::from_wire(wire, netlist)
            .map_err(|e| CertError::Parse(format!("predicate {i}: {e}")))?;
        preds.push(p);
    }
    let n = preds.len();
    if n == 0 {
        return Err(CertError::Structure("empty predicate set".into()));
    }
    // Canonical order: sorted and duplicate-free. This makes the predicate
    // list itself tamper-evident (no hidden reordering games) and is what
    // the emitter produces.
    if !preds.windows(2).all(|w| w[0] < w[1]) {
        return Err(CertError::Structure(
            "predicate list is not strictly sorted".into(),
        ));
    }

    // The properties must be exactly the design's observable equalities —
    // a certificate for the wrong property is worthless.
    let mut expected: Vec<usize> = Vec::new();
    for &o in &design.observable {
        let prop = Predicate::eq(miter.left(o), miter.right(o));
        match preds.binary_search(&prop) {
            Ok(i) => expected.push(i),
            Err(_) => {
                return Err(CertError::Structure(format!(
                    "predicate set lacks the property {}",
                    prop.describe(netlist)
                )))
            }
        }
    }
    let mut claimed = cert.properties.clone();
    claimed.sort_unstable();
    expected.sort_unstable();
    if claimed != expected {
        return Err(CertError::Structure(
            "property indices do not match the design's observables".into(),
        ));
    }

    // Every predicate must be discharged exactly once.
    let mut covered = vec![false; n];
    for ob in &cert.obligations {
        if ob.target >= n {
            return Err(CertError::Structure(format!(
                "obligation target {} out of range",
                ob.target
            )));
        }
        if covered[ob.target] {
            return Err(CertError::Structure(format!(
                "predicate {} discharged twice",
                ob.target
            )));
        }
        covered[ob.target] = true;
        if !ob.premises.windows(2).all(|w| w[0] < w[1]) {
            return Err(CertError::Structure(format!(
                "obligation {} premises not strictly sorted",
                ob.target
            )));
        }
        if ob.premises.iter().any(|&j| j >= n) {
            return Err(CertError::Structure(format!(
                "obligation {} cites an out-of-range premise",
                ob.target
            )));
        }
    }
    if let Some(missing) = covered.iter().position(|&c| !c) {
        return Err(CertError::Structure(format!(
            "predicate {missing} has no obligation"
        )));
    }

    let mut report = CheckReport {
        obligations: cert.obligations.len(),
        predicates: n,
        stats: CheckStats::default(),
    };
    for (k, ob) in cert.obligations.iter().enumerate() {
        let premise_preds: Vec<&Predicate> = ob.premises.iter().map(|&j| &preds[j]).collect();
        let mut enc = encode_obligation(netlist, &preds[ob.target], &premise_preds);
        let cnf = dimacs::from_solver(enc.cnf_mut().solver_mut());
        if cnf.num_vars != ob.num_vars || cnf.clauses.len() != ob.num_clauses {
            return Err(CertError::CnfMismatch {
                obligation: k,
                detail: format!(
                    "expected {} vars / {} clauses, re-derived {} / {}",
                    ob.num_vars,
                    ob.num_clauses,
                    cnf.num_vars,
                    cnf.clauses.len()
                ),
            });
        }
        let hash = cnf_fingerprint(&cnf);
        if hash != ob.cnf_hash {
            return Err(CertError::CnfMismatch {
                obligation: k,
                detail: format!("hash {:016x} != certified {:016x}", hash, ob.cnf_hash),
            });
        }
        match check_proof(&cnf.clauses, &ob.proof) {
            Ok(stats) => {
                report.stats.lines += stats.lines;
                report.stats.adds += stats.adds;
                report.stats.deletes += stats.deletes;
                report.stats.rat_steps += stats.rat_steps;
                report.stats.ignored_deletes += stats.ignored_deletes;
            }
            Err(error) => {
                return Err(CertError::ProofRejected {
                    obligation: k,
                    error,
                })
            }
        }
    }
    Ok(report)
}

const MANIFEST: &str = "MANIFEST";

fn proof_file_name(i: usize) -> String {
    format!("obligation-{i:03}.drat")
}

/// Writes a certificate bundle: `MANIFEST` plus one binary-DRAT file per
/// obligation.
///
/// # Errors
///
/// [`CertError::Io`] on filesystem failure.
pub fn write_bundle(cert: &Certificate, dir: &Path) -> Result<EmitSummary, CertError> {
    let io = |e: std::io::Error| CertError::Io(e.to_string());
    std::fs::create_dir_all(dir).map_err(io)?;
    let mut summary = EmitSummary {
        obligations: cert.obligations.len(),
        ..EmitSummary::default()
    };
    let mut m = String::new();
    let _ = writeln!(m, "hh-certificate v1");
    let _ = writeln!(m, "design {}", cert.design);
    let _ = writeln!(m, "patterns {}", cert.patterns.len());
    for p in &cert.patterns {
        let _ = writeln!(m, "pattern {:x} {:x}", p.mask, p.matches);
    }
    let _ = writeln!(m, "predicates {}", cert.predicates.len());
    for p in &cert.predicates {
        let _ = writeln!(m, "pred {p}");
    }
    let props: Vec<String> = cert.properties.iter().map(|i| i.to_string()).collect();
    let _ = writeln!(
        m,
        "properties {} {}",
        cert.properties.len(),
        props.join(" ")
    );
    let _ = writeln!(m, "obligations {}", cert.obligations.len());
    for (i, ob) in cert.obligations.iter().enumerate() {
        let prem: Vec<String> = ob.premises.iter().map(|j| j.to_string()).collect();
        let _ = writeln!(
            m,
            "obligation {} {} {} vars {} clauses {} hash {:016x} proof {}",
            ob.target,
            ob.premises.len(),
            prem.join(" "),
            ob.num_vars,
            ob.num_clauses,
            ob.cnf_hash,
            proof_file_name(i)
        );
        let bin = drat::to_binary(&ob.proof);
        summary.proof_bytes += bin.len() as u64;
        summary.proof_lines += ob.proof.len();
        std::fs::write(dir.join(proof_file_name(i)), bin).map_err(io)?;
    }
    std::fs::write(dir.join(MANIFEST), &m).map_err(io)?;
    if hh_trace::enabled() {
        hh_trace::counter!("proof", "proof.bytes", summary.proof_bytes);
    }
    Ok(summary)
}

/// Reads a certificate bundle from disk.
///
/// # Errors
///
/// [`CertError::Io`] on filesystem failure, [`CertError::Parse`] on a
/// malformed MANIFEST or proof file.
pub fn read_bundle(dir: &Path) -> Result<Certificate, CertError> {
    let io = |e: std::io::Error| CertError::Io(e.to_string());
    let parse = |msg: String| CertError::Parse(msg);
    let text = std::fs::read_to_string(dir.join(MANIFEST)).map_err(io)?;
    let mut lines = text.lines().enumerate();
    let mut next = || {
        lines
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| parse("unexpected end of MANIFEST".into()))
    };

    let (_, header) = next()?;
    if header != "hh-certificate v1" {
        return Err(parse(format!("bad header {header:?}")));
    }
    let (ln, design_line) = next()?;
    let design = design_line
        .strip_prefix("design ")
        .ok_or_else(|| parse(format!("line {ln}: expected design")))?
        .to_string();

    let (ln, pat_hdr) = next()?;
    let npat: usize = pat_hdr
        .strip_prefix("patterns ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse(format!("line {ln}: expected patterns <n>")))?;
    let mut patterns = Vec::with_capacity(npat.min(4096));
    for _ in 0..npat {
        let (ln, l) = next()?;
        let body = l
            .strip_prefix("pattern ")
            .ok_or_else(|| parse(format!("line {ln}: expected pattern")))?;
        let (mask, matches) = body
            .split_once(' ')
            .ok_or_else(|| parse(format!("line {ln}: bad pattern")))?;
        let mask = u32::from_str_radix(mask, 16)
            .map_err(|e| parse(format!("line {ln}: bad mask: {e}")))?;
        let matches = u32::from_str_radix(matches, 16)
            .map_err(|e| parse(format!("line {ln}: bad match: {e}")))?;
        patterns.push(MaskMatch { mask, matches });
    }

    let (ln, pred_hdr) = next()?;
    let npred: usize = pred_hdr
        .strip_prefix("predicates ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse(format!("line {ln}: expected predicates <n>")))?;
    let mut predicates = Vec::with_capacity(npred.min(65536));
    for _ in 0..npred {
        let (ln, l) = next()?;
        let p = l
            .strip_prefix("pred ")
            .ok_or_else(|| parse(format!("line {ln}: expected pred")))?;
        predicates.push(p.to_string());
    }

    let (ln, prop_line) = next()?;
    let mut toks = prop_line
        .strip_prefix("properties ")
        .ok_or_else(|| parse(format!("line {ln}: expected properties")))?
        .split_whitespace();
    let nprops: usize = toks
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse(format!("line {ln}: bad property count")))?;
    let properties: Vec<usize> = toks
        .map(|s| s.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse(format!("line {ln}: bad property index: {e}")))?;
    if properties.len() != nprops {
        return Err(parse(format!("line {ln}: property count mismatch")));
    }

    let (ln, ob_hdr) = next()?;
    let nobs: usize = ob_hdr
        .strip_prefix("obligations ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse(format!("line {ln}: expected obligations <n>")))?;
    let mut obligations = Vec::with_capacity(nobs.min(65536));
    for _ in 0..nobs {
        let (ln, l) = next()?;
        let body = l
            .strip_prefix("obligation ")
            .ok_or_else(|| parse(format!("line {ln}: expected obligation")))?;
        let toks: Vec<&str> = body.split_whitespace().collect();
        let bad = || parse(format!("line {ln}: malformed obligation"));
        let target: usize = toks.first().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let k: usize = toks.get(1).and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if toks.len() != k + 10 {
            return Err(bad());
        }
        let premises: Vec<usize> = toks[2..2 + k]
            .iter()
            .map(|s| s.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad())?;
        let rest = &toks[2 + k..];
        if rest[0] != "vars" || rest[2] != "clauses" || rest[4] != "hash" || rest[6] != "proof" {
            return Err(bad());
        }
        let num_vars: usize = rest[1].parse().map_err(|_| bad())?;
        let num_clauses: usize = rest[3].parse().map_err(|_| bad())?;
        let cnf_hash = u64::from_str_radix(rest[5], 16).map_err(|_| bad())?;
        let file = rest[7];
        if file.contains(['/', '\\']) || file.contains("..") {
            return Err(parse(format!("line {ln}: unsafe proof path {file:?}")));
        }
        let bytes = std::fs::read(dir.join(file)).map_err(io)?;
        let proof = drat::parse_binary(&bytes)
            .map_err(|e| parse(format!("{file}: bad binary DRAT: {e}")))?;
        obligations.push(Obligation {
            target,
            premises,
            num_vars,
            num_clauses,
            cnf_hash,
            proof,
        });
    }

    Ok(Certificate {
        design,
        patterns,
        predicates,
        properties,
        obligations,
    })
}

/// Reads and fully verifies a bundle — the one-call form the `certify`
/// binary and CI use.
///
/// # Errors
///
/// Any [`CertError`]; a bundle is only trustworthy when this returns `Ok`.
pub fn check_bundle(dir: &Path) -> Result<CheckReport, CertError> {
    let cert = read_bundle(dir)?;
    verify_certificate(&cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_netlist::{Bv, Netlist};
    use hh_sat::Lit;

    #[test]
    fn fnv_is_stable() {
        // Reference values pin the hash function; changing it invalidates
        // every existing certificate.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn obligation_encoding_is_deterministic() {
        let mut base = Netlist::new("t");
        let r = base.state("r", 4, Bv::zero(4));
        base.keep_state(r);
        let m = hh_netlist::miter::Miter::build(&base);
        let target = Predicate::eq(m.left(r), m.right(r));
        let shape = |_: ()| {
            let mut enc = encode_obligation(m.netlist(), &target, &[]);
            let cnf = dimacs::from_solver(enc.cnf_mut().solver_mut());
            (cnf.num_vars, cnf.clauses.len(), cnf_fingerprint(&cnf))
        };
        assert_eq!(shape(()), shape(()));
    }

    #[test]
    fn manifest_roundtrip_and_tamper_detection() {
        let dir = std::env::temp_dir().join(format!("hh-cert-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cert = Certificate {
            design: "rocketlite_x16".into(),
            patterns: vec![MaskMatch {
                mask: 0xffff_ffff,
                matches: 0x13,
            }],
            predicates: vec!["eq l$a r$a".into(), "eq l$b r$b".into()],
            properties: vec![0],
            obligations: vec![
                Obligation {
                    target: 0,
                    premises: vec![1],
                    num_vars: 10,
                    num_clauses: 20,
                    cnf_hash: 0xdead_beef,
                    proof: vec![
                        ProofLine::Add(vec![Lit::from_code(0)]),
                        ProofLine::Add(vec![]),
                    ],
                },
                Obligation {
                    target: 1,
                    premises: vec![],
                    num_vars: 5,
                    num_clauses: 6,
                    cnf_hash: 1,
                    proof: vec![ProofLine::Add(vec![])],
                },
            ],
        };
        let summary = write_bundle(&cert, &dir).unwrap();
        assert_eq!(summary.obligations, 2);
        assert!(summary.proof_bytes > 0);
        let back = read_bundle(&dir).unwrap();
        assert_eq!(back.design, cert.design);
        assert_eq!(back.patterns, cert.patterns);
        assert_eq!(back.predicates, cert.predicates);
        assert_eq!(back.properties, cert.properties);
        assert_eq!(back.obligations.len(), 2);
        assert_eq!(back.obligations[0].premises, vec![1]);
        assert_eq!(back.obligations[0].cnf_hash, 0xdead_beef);
        assert_eq!(back.obligations[0].proof, cert.obligations[0].proof);

        // Tampering with the manifest must be detected at parse or verify.
        let manifest = std::fs::read_to_string(dir.join(MANIFEST)).unwrap();
        let bad = manifest.replace("hash 00000000deadbeef", "hash 00000000deadbeee");
        assert_ne!(manifest, bad);
        std::fs::write(dir.join(MANIFEST), &bad).unwrap();
        let tampered = read_bundle(&dir).unwrap();
        assert_ne!(tampered.obligations[0].cnf_hash, 0xdead_beef);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_path_traversal() {
        let dir = std::env::temp_dir().join(format!("hh-cert-trav-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = "hh-certificate v1\n\
                        design rocketlite_x16\n\
                        patterns 0\n\
                        predicates 0\n\
                        properties 0 \n\
                        obligations 1\n\
                        obligation 0 0 vars 1 clauses 1 hash 0 proof ../../etc/passwd\n";
        std::fs::write(dir.join(MANIFEST), manifest).unwrap();
        assert!(matches!(read_bundle(&dir), Err(CertError::Parse(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
