//! `hh-proof`: proof logging, checking, and invariant certificates.
//!
//! This crate closes the trust loop of the H-Houdini stack. The learner
//! (`hh-core` / `hh-veloct`) produces an inductive invariant by discharging
//! thousands of SAT queries through `hh-sat`; nothing in that pipeline is
//! independently auditable. With `hh-proof`:
//!
//! 1. `hh-sat` logs every learnt clause, deletion, and inprocessing rewrite
//!    as a DRAT stream through its `ProofSink` trait ([`drat`] provides
//!    in-memory and streaming text/binary sinks);
//! 2. [`check`] re-validates those streams with a forward RUP/RAT checker
//!    that shares no code with the solver's search;
//! 3. [`cert`] packages a learned invariant as a *certificate bundle* — the
//!    predicate set plus one relative-induction obligation (CNF + DRAT
//!    refutation) per predicate — and re-derives and re-checks every
//!    obligation from the netlist alone.
//!
//! The `certify` binary is the command-line face of step 3.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cert;
pub mod check;
pub mod drat;

pub use check::{check_proof, check_proof_with_assumptions, CheckError, CheckStats};
pub use drat::{DratBinaryWriter, DratTextWriter, MemoryProof, ProofLine};
