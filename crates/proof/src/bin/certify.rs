//! `certify`: the independent checker for `hh-proof` certificate bundles.
//!
//! ```text
//! certify <bundle-dir> [--quiet]
//! ```
//!
//! Reads the bundle's MANIFEST, re-runs the builtin design constructor it
//! references, re-derives every obligation CNF via `hh-smt`, and checks
//! every attached DRAT refutation with the forward RUP/RAT checker. Exits 0
//! only when the certificate is valid end to end; any parse error, CNF
//! mismatch, structural gap or rejected proof exits 1 with a message on
//! stderr.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let tracing = hh_trace::init_from_env();
    let mut dir: Option<PathBuf> = None;
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: certify <bundle-dir> [--quiet]");
                return ExitCode::from(2);
            }
            other if dir.is_none() => dir = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: certify <bundle-dir> [--quiet]");
        return ExitCode::from(2);
    };

    let t0 = std::time::Instant::now();
    let code = match hh_proof::cert::check_bundle(&dir) {
        Ok(report) => {
            if !quiet {
                println!(
                    "certificate OK: {} predicates, {} obligations, {} proof lines \
                     ({} adds, {} deletes, {} RAT steps) in {:.2?}",
                    report.predicates,
                    report.obligations,
                    report.stats.lines,
                    report.stats.adds,
                    report.stats.deletes,
                    report.stats.rat_steps,
                    t0.elapsed()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("certificate REJECTED: {e}");
            ExitCode::FAILURE
        }
    };
    if tracing {
        if let Err(e) = hh_trace::finish_to_env() {
            eprintln!("failed to write trace: {e}");
        }
    }
    code
}
