//! Combinational ALU shared by the cores.
//!
//! Single-cycle barrel-shifter ALU covering the RV32I register/immediate
//! arithmetic instructions plus `lui`/`auipc`. Its latency never depends on
//! operand values — that is what makes these instructions *safe* and it is
//! why the cores route them through here in one cycle.

use crate::decode::Decode;
use hh_isa::Mnemonic;
use hh_netlist::{Netlist, NodeId};

/// Computes the ALU result for the decoded instruction.
///
/// `rs1val`/`rs2val` are the register operands (width `xlen`), `pc` the
/// architectural PC (for `auipc`). Immediates come from the decode bundle.
/// For non-ALU instructions the result is unspecified (zero).
pub fn alu_result(
    n: &mut Netlist,
    d: &Decode,
    pc: NodeId,
    rs1val: NodeId,
    rs2val: NodeId,
    xlen: u32,
) -> NodeId {
    use Mnemonic::*;
    let shmask = n.c(xlen, 0x1f);
    let sh_r = n.and(rs2val, shmask);
    let sh_i = {
        let imm = d.imm_i;
        n.and(imm, shmask)
    };

    let add_r = n.add(rs1val, rs2val);
    let add_i = n.add(rs1val, d.imm_i);
    let sub_r = n.sub(rs1val, rs2val);
    let xor_r = n.xor(rs1val, rs2val);
    let xor_i = n.xor(rs1val, d.imm_i);
    let or_r = n.or(rs1val, rs2val);
    let or_i = n.or(rs1val, d.imm_i);
    let and_r = n.and(rs1val, rs2val);
    let and_i = n.and(rs1val, d.imm_i);
    let sll_r = n.shl(rs1val, sh_r);
    let sll_i = n.shl(rs1val, sh_i);
    let srl_r = n.lshr(rs1val, sh_r);
    let srl_i = n.lshr(rs1val, sh_i);
    let sra_r = n.ashr(rs1val, sh_r);
    let sra_i = n.ashr(rs1val, sh_i);
    let slt_r = {
        let b = n.slt(rs1val, rs2val);
        n.uext(b, xlen)
    };
    let slt_i = {
        let b = n.slt(rs1val, d.imm_i);
        n.uext(b, xlen)
    };
    let sltu_r = {
        let b = n.ult(rs1val, rs2val);
        n.uext(b, xlen)
    };
    let sltu_i = {
        let b = n.ult(rs1val, d.imm_i);
        n.uext(b, xlen)
    };
    let lui_v = d.imm_u;
    let auipc_v = n.add(pc, d.imm_u);

    let table: Vec<(Mnemonic, NodeId)> = vec![
        (Add, add_r),
        (Addi, add_i),
        (Sub, sub_r),
        (Xor, xor_r),
        (Xori, xor_i),
        (Or, or_r),
        (Ori, or_i),
        (And, and_r),
        (Andi, and_i),
        (Sll, sll_r),
        (Slli, sll_i),
        (Srl, srl_r),
        (Srli, srl_i),
        (Sra, sra_r),
        (Srai, sra_i),
        (Slt, slt_r),
        (Slti, slt_i),
        (Sltu, sltu_r),
        (Sltiu, sltu_i),
        (Lui, lui_v),
        (Auipc, auipc_v),
    ];
    let zero = n.c(xlen, 0);
    let cases: Vec<(NodeId, NodeId)> = table.into_iter().map(|(m, v)| (d.matches[&m], v)).collect();
    n.select(&cases, zero)
}

/// Branch-taken condition for `beq`/`bne` (false for everything else).
pub fn branch_taken(n: &mut Netlist, d: &Decode, rs1val: NodeId, rs2val: NodeId) -> NodeId {
    let eq = n.eq(rs1val, rs2val);
    let neq = n.not(eq);
    let beq_taken = n.and(d.matches[&Mnemonic::Beq], eq);
    let bne_taken = n.and(d.matches[&Mnemonic::Bne], neq);
    n.or(beq_taken, bne_taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use hh_isa::{asm, Instruction, Mnemonic};
    use hh_netlist::eval::{eval_all, InputValues, StateValues};
    use hh_netlist::Bv;

    fn run_alu(instr: Instruction, pc: u64, r1: u64, r2: u64) -> u64 {
        let mut n = Netlist::new("t");
        let iw = n.input("instr", 32);
        let pcn = n.input("pc", 16);
        let r1n = n.input("r1", 16);
        let r2n = n.input("r2", 16);
        let d = decode(&mut n, iw, 16, 8);
        let out = alu_result(&mut n, &d, pcn, r1n, r2n, 16);
        let mut iv = InputValues::zeros(&n);
        iv.set_by_name(&n, "instr", Bv::new(32, instr.encode() as u64));
        iv.set_by_name(&n, "pc", Bv::new(16, pc));
        iv.set_by_name(&n, "r1", Bv::new(16, r1));
        iv.set_by_name(&n, "r2", Bv::new(16, r2));
        let vals = eval_all(&n, &StateValues::from_vec(vec![]), &iv);
        vals[out.index()].bits()
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(run_alu(asm::add(3, 1, 2), 0, 7, 8), 15);
        assert_eq!(run_alu(asm::sub(3, 1, 2), 0, 7, 8), 0xffff);
        assert_eq!(run_alu(asm::addi(3, 1, -2), 0, 7, 0), 5);
        assert_eq!(
            run_alu(
                Instruction::rtype(Mnemonic::Xor, 3, 1, 2),
                0,
                0xff00,
                0x0ff0
            ),
            0xf0f0
        );
        assert_eq!(
            run_alu(Instruction::itype(Mnemonic::Andi, 3, 1, 0xf), 0, 0x1234, 0),
            0x4
        );
    }

    #[test]
    fn shifts_and_compares() {
        assert_eq!(
            run_alu(Instruction::rtype(Mnemonic::Sll, 3, 1, 2), 0, 0x8001, 1),
            0x0002
        );
        assert_eq!(
            run_alu(Instruction::itype(Mnemonic::Srai, 3, 1, 1), 0, 0x8000, 0),
            0xc000
        );
        assert_eq!(
            run_alu(Instruction::rtype(Mnemonic::Slt, 3, 1, 2), 0, 0x8000, 1),
            1 // -32768 < 1 signed
        );
        assert_eq!(
            run_alu(Instruction::rtype(Mnemonic::Sltu, 3, 1, 2), 0, 0x8000, 1),
            0
        );
    }

    #[test]
    fn upper_immediates() {
        assert_eq!(run_alu(asm::lui(3, 0x5), 0, 0, 0), 0x5000);
        assert_eq!(run_alu(asm::auipc(3, 0x2), 0x100, 0, 0), 0x2100);
    }

    #[test]
    fn branch_taken_logic() {
        let mut n = Netlist::new("t");
        let iw = n.input("instr", 32);
        let r1n = n.input("r1", 16);
        let r2n = n.input("r2", 16);
        let d = decode(&mut n, iw, 16, 8);
        let taken = branch_taken(&mut n, &d, r1n, r2n);
        let case = |word: u32, a: u64, b: u64| -> u64 {
            let mut iv = InputValues::zeros(&n);
            iv.set_by_name(&n, "instr", Bv::new(32, word as u64));
            iv.set_by_name(&n, "r1", Bv::new(16, a));
            iv.set_by_name(&n, "r2", Bv::new(16, b));
            eval_all(&n, &StateValues::from_vec(vec![]), &iv)[taken.index()].bits()
        };
        let beq = asm::beq(1, 2, 8).encode();
        let bne = Instruction::btype(Mnemonic::Bne, 1, 2, 8).encode();
        assert_eq!(case(beq, 5, 5), 1);
        assert_eq!(case(beq, 5, 6), 0);
        assert_eq!(case(bne, 5, 6), 1);
        assert_eq!(case(bne, 5, 5), 0);
        assert_eq!(case(asm::add(1, 2, 3).encode(), 5, 5), 0);
    }
}
