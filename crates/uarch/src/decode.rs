//! Instruction decode logic built from the real RV32 encodings.
//!
//! Cores decode the 32-bit instruction word with the same mask/match
//! patterns that `hh-isa` generates for `InSafeSet` predicates, so a learned
//! `InSafeSet` constraint on a pipeline register lines up exactly with the
//! hardware's own decode.

use hh_isa::{MaskMatch, Mnemonic, ALL_MNEMONICS};
use hh_netlist::miter::Miter;
use hh_netlist::{Netlist, NodeId};
use std::collections::HashMap;

/// Decoded signals for one 32-bit instruction word.
#[derive(Debug, Clone)]
pub struct Decode {
    /// Per-mnemonic match bits.
    pub matches: HashMap<Mnemonic, NodeId>,
    /// Any implemented instruction matched.
    pub known: NodeId,
    /// Functional-class bits.
    pub is_alu: NodeId,
    /// `mul`/`mulh`/`mulhsu`/`mulhu`.
    pub is_mul: NodeId,
    /// `lw`.
    pub is_load: NodeId,
    /// `sw`.
    pub is_store: NodeId,
    /// `beq`/`bne`.
    pub is_branch: NodeId,
    /// `jal`.
    pub is_jal: NodeId,
    /// `auipc` (class ALU, but BOOM-style cores route it to the jump unit).
    pub is_auipc: NodeId,
    /// Destination register index (low bits of rd field).
    pub rd: NodeId,
    /// First source register index.
    pub rs1: NodeId,
    /// Second source register index.
    pub rs2: NodeId,
    /// Whether the instruction writes a register (has an rd).
    pub writes_rd: NodeId,
    /// Whether the instruction reads rs1 as a register operand.
    pub uses_rs1: NodeId,
    /// Whether the instruction reads rs2 as a register operand.
    pub uses_rs2: NodeId,
    /// I-type immediate, sign-extended to XLEN.
    pub imm_i: NodeId,
    /// S-type immediate, sign-extended to XLEN.
    pub imm_s: NodeId,
    /// U-type immediate (`imm20 << 12`), truncated/extended to XLEN.
    pub imm_u: NodeId,
}

/// Builds a 1-bit signal `(word & mask) == match` for an encoding pattern.
pub fn matches_pattern(n: &mut Netlist, word: NodeId, p: MaskMatch) -> NodeId {
    let mask = n.c(32, p.mask as u64);
    let want = n.c(32, p.matches as u64);
    let masked = n.and(word, mask);
    n.eq(masked, want)
}

/// Builds the safe-set-constrained miter of a design: the product circuit
/// with the instruction input restricted to words matching one of the given
/// mask/match `patterns` (VeloCT's alphabet Σ).
///
/// This is the *single* construction both the learner (`veloct`) and the
/// certificate checker (`hh-proof`) use; a certificate's obligation CNFs are
/// only reproducible because both sides build the identical miter from the
/// identical pattern list.
pub fn constrained_miter(design: &crate::Design, patterns: &[MaskMatch]) -> Miter {
    let mut miter = Miter::build(&design.netlist);
    let instr = miter
        .netlist()
        .find_input(&design.instr_input)
        .expect("design has an instruction input");
    let terms: Vec<NodeId> = patterns
        .iter()
        .map(|&mm| matches_pattern(miter.netlist_mut(), instr, mm))
        .collect();
    let constraint = miter.netlist_mut().or_all(&terms);
    miter.netlist_mut().add_constraint(constraint);
    miter
}

/// The number of register-index bits used for `nregs` registers.
pub fn reg_bits(nregs: usize) -> u32 {
    assert!(
        nregs.is_power_of_two() && nregs >= 2,
        "nregs must be a power of two"
    );
    nregs.trailing_zeros()
}

/// Decodes `instr` (a 32-bit node) into class/operand signals.
///
/// # Panics
///
/// Panics if `instr` is not 32 bits wide or `xlen` is not in `8..=32`.
pub fn decode(n: &mut Netlist, instr: NodeId, xlen: u32, nregs: usize) -> Decode {
    assert_eq!(n.width(instr), 32, "instruction word must be 32 bits");
    assert!((8..=32).contains(&xlen), "xlen must be in 8..=32");
    let rb = reg_bits(nregs);

    let mut matches = HashMap::new();
    for &m in ALL_MNEMONICS {
        let bit = matches_pattern(n, instr, m.pattern());
        matches.insert(m, bit);
    }
    let class_or =
        |n: &mut Netlist, matches: &HashMap<Mnemonic, NodeId>, f: &dyn Fn(Mnemonic) -> bool| {
            let bits: Vec<NodeId> = ALL_MNEMONICS
                .iter()
                .filter(|&&m| f(m))
                .map(|m| matches[m])
                .collect();
            n.or_all(&bits)
        };

    let known = class_or(n, &matches, &|_| true);
    let is_alu = class_or(n, &matches, &|m| m.class() == hh_isa::InstrClass::Alu);
    let is_mul = class_or(n, &matches, &|m| m.class() == hh_isa::InstrClass::Mul);
    let is_load = matches[&Mnemonic::Lw];
    let is_store = matches[&Mnemonic::Sw];
    let is_branch = {
        let beq = matches[&Mnemonic::Beq];
        let bne = matches[&Mnemonic::Bne];
        n.or(beq, bne)
    };
    let is_jal = matches[&Mnemonic::Jal];
    let is_auipc = matches[&Mnemonic::Auipc];

    let rd = n.slice(instr, 7 + rb - 1, 7);
    let rs1 = n.slice(instr, 15 + rb - 1, 15);
    let rs2 = n.slice(instr, 20 + rb - 1, 20);

    // writes_rd: everything except stores and branches.
    let no_rd = {
        let s = n.or(is_store, is_branch);
        n.not(s)
    };
    let writes_rd = n.and(known, no_rd);
    let uses_rs1 = class_or(n, &matches, &|m| m.uses_rs1());
    let uses_rs2 = class_or(n, &matches, &|m| m.uses_rs2());

    let imm12 = n.slice(instr, 31, 20);
    let imm_i = n.sext(imm12, xlen);
    let imm_s = {
        let hi = n.slice(instr, 31, 25);
        let lo = n.slice(instr, 11, 7);
        let cat = n.concat(hi, lo);
        n.sext(cat, xlen)
    };
    let imm_u = {
        let imm20 = n.slice(instr, 31, 12);
        let zeros = n.c(12, 0);
        let shifted = n.concat(imm20, zeros); // 32 bits
        if xlen < 32 {
            n.slice(shifted, xlen - 1, 0)
        } else {
            shifted
        }
    };

    Decode {
        matches,
        known,
        is_alu,
        is_mul,
        is_load,
        is_store,
        is_branch,
        is_jal,
        is_auipc,
        rd,
        rs1,
        rs2,
        writes_rd,
        uses_rs1,
        uses_rs2,
        imm_i,
        imm_s,
        imm_u,
    }
}

/// Builds a register-file read port: a mux tree over `regs` selected by
/// `index` (width must be `log2(regs.len())`).
pub fn rf_read(n: &mut Netlist, regs: &[NodeId], index: NodeId) -> NodeId {
    assert!(regs.len().is_power_of_two());
    assert_eq!(
        n.width(index) as usize,
        regs.len().trailing_zeros() as usize
    );
    let mut cases = Vec::new();
    for (i, &r) in regs.iter().enumerate().take(regs.len() - 1) {
        let sel = n.eq_const(index, i as u64);
        cases.push((sel, r));
    }
    // The last register is the fall-through case: if no earlier index
    // matched, the index must be regs.len() - 1.
    let default = regs[regs.len() - 1];
    n.select(&cases, default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_isa::asm;
    use hh_netlist::eval::{eval_all, InputValues, StateValues};
    use hh_netlist::Bv;

    fn eval_decode(word: u32, f: impl Fn(&Decode) -> NodeId) -> u64 {
        let mut n = Netlist::new("t");
        let instr = n.input("instr", 32);
        let d = decode(&mut n, instr, 16, 8);
        let node = f(&d);
        // netlist needs at least the nodes; no states required.
        let mut iv = InputValues::zeros(&n);
        iv.set_by_name(&n, "instr", Bv::new(32, word as u64));
        let vals = eval_all(&n, &StateValues::from_vec(vec![]), &iv);
        vals[node.index()].bits()
    }

    #[test]
    fn classes_decode_correctly() {
        let add = asm::add(3, 1, 2).encode();
        assert_eq!(eval_decode(add, |d| d.is_alu), 1);
        assert_eq!(eval_decode(add, |d| d.is_mul), 0);
        let mul = asm::mul(3, 1, 2).encode();
        assert_eq!(eval_decode(mul, |d| d.is_mul), 1);
        assert_eq!(eval_decode(mul, |d| d.is_alu), 0);
        let lw = asm::lw(3, 1, 4).encode();
        assert_eq!(eval_decode(lw, |d| d.is_load), 1);
        let sw = asm::sw(1, 2, 4).encode();
        assert_eq!(eval_decode(sw, |d| d.is_store), 1);
        assert_eq!(eval_decode(sw, |d| d.writes_rd), 0);
        let beq = asm::beq(1, 2, 8).encode();
        assert_eq!(eval_decode(beq, |d| d.is_branch), 1);
        let auipc = asm::auipc(5, 3).encode();
        assert_eq!(eval_decode(auipc, |d| d.is_auipc), 1);
        assert_eq!(eval_decode(auipc, |d| d.is_alu), 1);
    }

    #[test]
    fn garbage_is_unknown() {
        assert_eq!(eval_decode(0xffff_ffff, |d| d.known), 0);
        assert_eq!(eval_decode(0, |d| d.known), 0);
        let add = asm::add(3, 1, 2).encode();
        assert_eq!(eval_decode(add, |d| d.known), 1);
    }

    #[test]
    fn fields_decode_correctly() {
        let i = asm::add(3, 1, 2).encode();
        assert_eq!(eval_decode(i, |d| d.rd), 3);
        assert_eq!(eval_decode(i, |d| d.rs1), 1);
        assert_eq!(eval_decode(i, |d| d.rs2), 2);
        let neg = asm::addi(1, 2, -5).encode();
        assert_eq!(eval_decode(neg, |d| d.imm_i), 0xfffb); // -5 in 16 bits
        let st = asm::sw(1, 2, -4).encode();
        assert_eq!(eval_decode(st, |d| d.imm_s), 0xfffc);
        let lui = asm::lui(1, 0x5).encode();
        assert_eq!(eval_decode(lui, |d| d.imm_u), 0x5000);
    }

    #[test]
    fn rf_read_selects() {
        let mut n = Netlist::new("t");
        let regs: Vec<NodeId> = (0..4).map(|i| n.c(8, 10 + i as u64)).collect();
        let idx = n.input("idx", 2);
        let out = rf_read(&mut n, &regs, idx);
        for i in 0..4u64 {
            let mut iv = InputValues::zeros(&n);
            iv.set_by_name(&n, "idx", Bv::new(2, i));
            let vals = eval_all(&n, &StateValues::from_vec(vec![]), &iv);
            assert_eq!(vals[out.index()].bits(), 10 + i);
        }
    }
}
