//! RocketLite: an in-order multicycle RISC-V core.
//!
//! A scaled-down analogue of the paper's Rocketchip target. One instruction
//! is in flight at a time; the instruction arrives as a free input (the
//! paper's input alphabet Σ), is latched into `dec_instr`, and executes on
//! one of four paths with *deliberately realistic timing behaviour*:
//!
//! * ALU (incl. `lui`/`auipc`): 1 cycle through a barrel-shifter ALU — safe.
//! * MUL: the iterative zero-skip multiplier of Figure 7 — latency depends
//!   on whether an operand is zero, so `mul`-family instructions leak (the
//!   paper found the same on RV64 Rocketchip).
//! * MEM (`lw`/`sw`): a 4-line direct-mapped cache; hits answer in 2 cycles,
//!   misses in 5 — latency depends on the (data-derived) address.
//! * Branches/`jal`: taken costs an extra flush cycle — latency depends on
//!   the register comparison.
//!
//! The attacker observes the `wb_valid` retirement pulse; the 2-safety
//! target is `Eq(wb_valid)`.

use crate::alu::{alu_result, branch_taken};
use crate::decode::{decode, reg_bits, rf_read};
use crate::mulunit::iter_mul;
use crate::Design;
use hh_isa::Instruction;
use hh_netlist::{Bv, Netlist, NodeId};

/// Number of architectural registers modelled.
pub const NREGS: usize = 8;

/// Name of the instruction input.
pub const INSTR_INPUT: &str = "instr";

/// Cache geometry: 4 direct-mapped lines of 4 bytes.
const CACHE_LINES: usize = 4;
/// Miss penalty beyond the hit path, in countdown cycles.
const MISS_CYCLES: u64 = 3;

/// Builds RocketLite with the given datapath width (8..=32).
pub fn rocket_lite(xlen: u32) -> Design {
    let mut n = Netlist::new(format!("rocketlite_x{xlen}"));
    let rb = reg_bits(NREGS);

    // ------------------------------------------------------------------
    // Architectural state
    // ------------------------------------------------------------------
    let rf: Vec<_> = (0..NREGS)
        .map(|i| n.state(format!("rf{i}"), xlen, Bv::zero(xlen)))
        .collect();
    let pc = n.state("pc", xlen, Bv::zero(xlen));

    // Decode/hold register: the instruction currently in flight.
    let nop = Instruction::nop().encode() as u64;
    let dec_instr = n.state("dec_instr", 32, Bv::new(32, nop));
    let dec_valid = n.state("dec_valid", 1, Bv::bit(false));

    // Observable retirement pulse.
    let wb_valid = n.state("wb_valid", 1, Bv::bit(false));

    let instr_in = n.input(INSTR_INPUT, 32);

    // ------------------------------------------------------------------
    // Decode and operand fetch
    // ------------------------------------------------------------------
    let di = n.state_node(dec_instr);
    let dv = n.state_node(dec_valid);
    let d = decode(&mut n, di, xlen, NREGS);
    let rf_nodes: Vec<NodeId> = rf.iter().map(|&r| n.state_node(r)).collect();
    let rs1val = rf_read(&mut n, &rf_nodes, d.rs1);
    let rs2val = rf_read(&mut n, &rf_nodes, d.rs2);
    let pcn = n.state_node(pc);

    // ------------------------------------------------------------------
    // ALU path (1 cycle)
    // ------------------------------------------------------------------
    let alu_out = alu_result(&mut n, &d, pcn, rs1val, rs2val, xlen);
    let alu_done = n.and(dv, d.is_alu);

    // ------------------------------------------------------------------
    // MUL path (iterative, zero-skip)
    // ------------------------------------------------------------------
    let mul_started = n.state("mul_started", 1, Bv::bit(false));
    let msn = n.state_node(mul_started);
    let exec_mul = n.and(dv, d.is_mul);
    let not_started = n.not(msn);
    let mul_start = n.and(exec_mul, not_started);
    let mul = iter_mul(&mut n, "mul$", mul_start, rs1val, rs2val, xlen);
    let mul_valid_n = n.state_node(mul.valid);
    let mul_done = n.and(exec_mul, mul_valid_n);
    // started' = (started | start) & !done
    let set = n.or(msn, mul_start);
    let not_done = n.not(mul_done);
    let started_next = n.and(set, not_done);
    n.set_next(mul_started, started_next);

    // ------------------------------------------------------------------
    // MEM path (direct-mapped cache latency model)
    // ------------------------------------------------------------------
    let tag_bits = xlen - 4; // addr[xlen-1:4]
    let ctags: Vec<_> = (0..CACHE_LINES)
        .map(|i| n.state(format!("ctag{i}"), tag_bits, Bv::zero(tag_bits)))
        .collect();
    let cvalids: Vec<_> = (0..CACHE_LINES)
        .map(|i| n.state(format!("cvalid{i}"), 1, Bv::bit(false)))
        .collect();
    let mem_busy = n.state("mem_busy", 1, Bv::bit(false));
    let mem_cnt = n.state("mem_cnt", 2, Bv::zero(2));
    let mem_valid = n.state("mem_valid", 1, Bv::bit(false));

    let is_mem = n.or(d.is_load, d.is_store);
    let mem_imm = n.ite(d.is_store, d.imm_s, d.imm_i);
    let addr = n.add(rs1val, mem_imm);
    let idx = n.slice(addr, 3, 2);
    let tag = n.slice(addr, xlen - 1, 4);
    let mut hit_terms = Vec::new();
    for i in 0..CACHE_LINES {
        let sel = n.eq_const(idx, i as u64);
        let tn = n.state_node(ctags[i]);
        let teq = n.eq(tn, tag);
        let vn = n.state_node(cvalids[i]);
        let line_hit = n.and_all(&[sel, teq, vn]);
        hit_terms.push(line_hit);
    }
    let hit = n.or_all(&hit_terms);

    let mbn = n.state_node(mem_busy);
    let mvn = n.state_node(mem_valid);
    let exec_mem = n.and(dv, is_mem);
    let not_busy = n.not(mbn);
    let not_mv = n.not(mvn);
    let mem_idle = n.and(not_busy, not_mv);
    let mem_start = n.and(exec_mem, mem_idle);
    let miss = n.not(hit);
    let mem_start_miss = n.and(mem_start, miss);
    let mem_start_hit = n.and(mem_start, hit);
    let cnt = n.state_node(mem_cnt);
    let cnt_zero = n.eq_const(cnt, 0);
    let mem_finish = n.and(mbn, cnt_zero);
    // mem_valid' = (start & hit) | (busy & cnt==0)
    let mem_valid_next = n.or(mem_start_hit, mem_finish);
    n.set_next(mem_valid, mem_valid_next);
    // mem_busy' = (start & miss) | (busy & cnt != 0)
    let not_finish = n.not(cnt_zero);
    let still = n.and(mbn, not_finish);
    let mem_busy_next = n.or(mem_start_miss, still);
    n.set_next(mem_busy, mem_busy_next);
    // cnt' = start&miss ? MISS : busy ? cnt-1 : cnt
    let miss_c = n.c(2, MISS_CYCLES);
    let one2 = n.c(2, 1);
    let dec = n.sub(cnt, one2);
    let cnt_busy = n.ite(mbn, dec, cnt);
    let cnt_next = n.ite(mem_start_miss, miss_c, cnt_busy);
    n.set_next(mem_cnt, cnt_next);
    // Fill the line on a miss (at start).
    for i in 0..CACHE_LINES {
        let sel = n.eq_const(idx, i as u64);
        let fill = n.and(mem_start_miss, sel);
        let tn = n.state_node(ctags[i]);
        let t_next = n.ite(fill, tag, tn);
        n.set_next(ctags[i], t_next);
        let vn = n.state_node(cvalids[i]);
        let v_next = n.or(fill, vn);
        n.set_next(cvalids[i], v_next);
    }
    let mem_done = n.and(exec_mem, mvn);
    // Loaded data: modelled as the address value (no backing memory array).
    let mem_data = addr;

    // ------------------------------------------------------------------
    // Branch/JAL path (taken costs a flush cycle)
    // ------------------------------------------------------------------
    let br_flush = n.state("br_flush", 1, Bv::bit(false));
    let bfn = n.state_node(br_flush);
    let is_ctrl = n.or(d.is_branch, d.is_jal);
    let exec_ctrl = n.and(dv, is_ctrl);
    let taken_b = branch_taken(&mut n, &d, rs1val, rs2val);
    let taken = n.or(taken_b, d.is_jal); // jal always redirects
    let not_flush = n.not(bfn);
    let exec_ctrl_fresh = n.and(exec_ctrl, not_flush);
    let not_taken = n.not(taken);
    let br_done_fast = n.and(exec_ctrl_fresh, not_taken);
    let br_start = n.and(exec_ctrl_fresh, taken);
    n.set_next(br_flush, br_start);
    let br_done_slow = n.and(exec_ctrl, bfn);
    let br_done = n.or(br_done_fast, br_done_slow);

    // ------------------------------------------------------------------
    // Completion, writeback, instruction latch
    // ------------------------------------------------------------------
    let complete = n.or_all(&[alu_done, mul_done, mem_done, br_done]);
    n.set_next(wb_valid, complete);

    // Writeback data/enable.
    let mul_res_n = n.state_node(mul.result);
    let wb_data = {
        let from_mem = n.ite(mem_done, mem_data, alu_out);
        n.ite(mul_done, mul_res_n, from_mem)
    };
    let wb_en = n.and(complete, d.writes_rd);

    // Register file update (x0 pinned to zero).
    let zero_x = n.c(xlen, 0);
    n.set_next(rf[0], zero_x);
    for (i, &r) in rf.iter().enumerate().skip(1) {
        let sel = n.eq_const(d.rd, i as u64);
        let we = n.and(wb_en, sel);
        let cur = n.state_node(r);
        let nxt = n.ite(we, wb_data, cur);
        n.set_next(r, nxt);
    }

    // PC tracks retirement (branch targets are not architecturally modelled;
    // only timing matters for the 2-safety property).
    let four = n.c(xlen, 4);
    let pc_inc = n.add(pcn, four);
    let pc_next = n.ite(complete, pc_inc, pcn);
    n.set_next(pc, pc_next);

    // Instruction latch: accept a new instruction when idle or completing.
    let busy_next_instr = {
        let not_complete = n.not(complete);
        n.and(dv, not_complete)
    };
    let d_in_known = {
        // Accept only encodings the core implements; others are dropped
        // (they would raise an illegal-instruction trap on real hardware).
        let din = decode(&mut n, instr_in, xlen, NREGS);
        din.known
    };
    let dec_valid_next = {
        let accept = n.not(busy_next_instr);
        let latch = n.and(accept, d_in_known);
        n.or(busy_next_instr, latch)
    };
    n.set_next(dec_valid, dec_valid_next);
    let dec_instr_next = n.ite(busy_next_instr, di, instr_in);
    n.set_next(dec_instr, dec_instr_next);

    let wbv_node = n.state_node(wb_valid);
    n.add_output("wb_valid", wbv_node);

    n.assert_complete();
    let _ = rb;
    Design {
        netlist: n,
        instr_input: INSTR_INPUT.to_string(),
        observable: vec![wb_valid],
        secret_regs: rf[1..].to_vec(),
        masking: Vec::new(), // in-order: no masking needed (paper §5.2.1)
        nregs: NREGS,
        xlen,
        max_latency: xlen as usize + 4,
        example_depth: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_isa::asm;
    use hh_netlist::eval::{step, InputValues, StateValues};

    fn feed(d: &Design, word: u32) -> InputValues {
        let mut iv = InputValues::zeros(&d.netlist);
        iv.set_by_name(&d.netlist, INSTR_INPUT, Bv::new(32, word as u64));
        iv
    }

    /// Runs `instr` from a state with the given register values; returns the
    /// number of cycles until the `wb_valid` pulse.
    fn latency(d: &Design, regs: &[u64], instr: hh_isa::Instruction) -> (usize, StateValues) {
        let n = &d.netlist;
        let mut s = StateValues::initial(n);
        for (i, &v) in regs.iter().enumerate() {
            if i > 0 {
                s.set(d.secret_regs[i - 1], Bv::new(d.xlen, v));
            }
        }
        s = step(n, &s, &feed(d, instr.encode()));
        let nopw = asm::nop().encode();
        for cycle in 1..=64 {
            s = step(n, &s, &feed(d, nopw));
            if s.get(d.observable[0]).is_true() {
                return (cycle, s);
            }
        }
        panic!("instruction never retired");
    }

    fn rf_value(d: &Design, s: &StateValues, r: usize) -> u64 {
        assert!(r >= 1);
        s.get(d.secret_regs[r - 1]).bits()
    }

    #[test]
    fn alu_ops_execute_and_write_back() {
        let d = rocket_lite(16);
        let (lat, s) = latency(&d, &[0, 7, 8], asm::add(3, 1, 2));
        assert_eq!(rf_value(&d, &s, 3), 15);
        assert_eq!(lat, 1);
        // NOP retires too (it is addi x0,x0,0).
        let (lat_nop, _) = latency(&d, &[0, 0, 0], asm::nop());
        assert_eq!(lat_nop, 1);
    }

    #[test]
    fn alu_timing_is_operand_independent() {
        let d = rocket_lite(16);
        let (a, _) = latency(&d, &[0, 1, 2], asm::add(3, 1, 2));
        let (b, _) = latency(&d, &[0, 0xffff, 0xffff], asm::add(3, 1, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn mul_computes_but_leaks_timing() {
        let d = rocket_lite(16);
        let (lat_nz, s) = latency(&d, &[0, 7, 6], asm::mul(3, 1, 2));
        assert_eq!(rf_value(&d, &s, 3), 42);
        let (lat_z, s2) = latency(&d, &[0, 0, 6], asm::mul(3, 1, 2));
        assert_eq!(rf_value(&d, &s2, 3), 0);
        assert!(lat_z < lat_nz, "zero-skip visible at retirement");
    }

    #[test]
    fn load_timing_depends_on_cache_state() {
        let d = rocket_lite(16);
        // Cold cache: miss.
        let (lat_miss, _) = latency(&d, &[0, 0x40], asm::lw(3, 1, 0));
        // Run two loads to the same address back to back: second hits.
        let n = &d.netlist;
        let mut s = StateValues::initial(n);
        s.set(d.secret_regs[0], Bv::new(16, 0x40)); // rf1
        let lw = asm::lw(3, 1, 0).encode();
        let nopw = asm::nop().encode();
        s = step(n, &s, &feed(&d, lw));
        let mut first = None;
        for cycle in 1..=32 {
            s = step(n, &s, &feed(&d, nopw));
            if s.get(d.observable[0]).is_true() {
                first = Some(cycle);
                break;
            }
        }
        let first = first.unwrap();
        assert_eq!(first, lat_miss);
        // Issue the same load again.
        s = step(n, &s, &feed(&d, lw));
        let mut second = None;
        for cycle in 1..=32 {
            s = step(n, &s, &feed(&d, nopw));
            if s.get(d.observable[0]).is_true() {
                second = Some(cycle);
                break;
            }
        }
        assert!(second.unwrap() < first, "cache hit must be faster");
    }

    #[test]
    fn branch_timing_depends_on_outcome() {
        let d = rocket_lite(16);
        let (taken, _) = latency(&d, &[0, 5, 5], asm::beq(1, 2, 8));
        let (not_taken, _) = latency(&d, &[0, 5, 6], asm::beq(1, 2, 8));
        assert!(taken > not_taken);
    }

    #[test]
    fn back_to_back_instructions() {
        // Feed two adds separated by the retire bubble; both must land.
        let d = rocket_lite(16);
        let n = &d.netlist;
        let mut s = StateValues::initial(n);
        s.set(d.secret_regs[0], Bv::new(16, 1)); // rf1 = 1
        s.set(d.secret_regs[1], Bv::new(16, 2)); // rf2 = 2
        let prog = [
            asm::add(3, 1, 2).encode(), // rf3 = 3
            asm::nop().encode(),
            asm::add(4, 3, 3).encode(), // rf4 = 6
            asm::nop().encode(),
            asm::nop().encode(),
            asm::nop().encode(),
        ];
        for w in prog {
            s = step(n, &s, &feed(&d, w));
        }
        assert_eq!(rf_value(&d, &s, 3), 3);
        assert_eq!(rf_value(&d, &s, 4), 6);
    }

    #[test]
    fn x0_stays_zero() {
        let d = rocket_lite(16);
        let (_, s) = latency(&d, &[0, 7, 8], asm::add(0, 1, 2));
        let rf0 = d.netlist.find_state("rf0").unwrap();
        assert_eq!(s.get(rf0).bits(), 0);
    }

    #[test]
    fn unknown_instruction_is_dropped() {
        let d = rocket_lite(16);
        let n = &d.netlist;
        let mut s = StateValues::initial(n);
        s = step(n, &s, &feed(&d, 0xffff_ffff));
        let dec_valid = n.find_state("dec_valid").unwrap();
        assert!(!s.get(dec_valid).is_true());
    }

    #[test]
    fn state_bits_are_reported() {
        let d = rocket_lite(16);
        assert!(d.state_bits() > 200, "got {}", d.state_bits());
    }
}
