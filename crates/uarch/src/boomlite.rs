//! BoomLite: an out-of-order core in four sizes (Small → Mega).
//!
//! A scaled-down analogue of the paper's BOOM targets, reproducing the
//! specific out-of-order mechanisms the evaluation depends on:
//!
//! * **Issue queues whose entries retain stale uops and operands after
//!   issue** — the residue that makes example masking (§5.2.1) necessary,
//!   exactly like BOOM's issue slots. ALU and MEM instructions share a
//!   *unified integer scheduler* (as real cores share an ALU/AGU window):
//!   the same entries hold valid safe uops and stale unsafe residue, so the
//!   invariant must constrain entry *contents* (`InSafeSet`) rather than
//!   pin valid bits — which is what makes masking load-bearing. MUL and
//!   JMP have their own queues.
//! * A **reorder buffer** with in-order retirement; the attacker observes
//!   the `retire_valid` pulse.
//! * A register-busy **scoreboard** gating dispatch.
//! * A **pipelined 3-stage multiplier** with fixed latency — which is why
//!   `mul`-family instructions are *safe* on BoomLite but not on RocketLite
//!   (Table 2 of the paper).
//! * A **write-back arbiter** (ALU > MUL > JMP > MEM) creating cross-unit
//!   timing interactions through control state only.
//! * A **jump unit with an `auipc` fast path** that speculatively reads the
//!   register file through the bits of the U-immediate that alias the rs1
//!   field: `auipc` completes in 1 cycle when the probed register is zero
//!   and 2 cycles otherwise. Its latency therefore depends on potentially
//!   secret data — reproducing the paper's §6.4 finding that `auipc` on
//!   BOOM "indeed has variable timing behavior" and cannot be verified.
//! * A direct-mapped cache in the memory unit (loads/stores unsafe).

use crate::alu::{alu_result, branch_taken};
use crate::decode::{decode, reg_bits, rf_read, Decode};
use crate::mulunit; // unused by BoomLite itself; kept for doc cross-links
use crate::{Design, MaskRule};
use hh_isa::Instruction;
use hh_netlist::{Bv, Netlist, NodeId, StateId};

/// The four BOOM configurations of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoomVariant {
    /// SmallBOOM analogue.
    Small,
    /// MediumBOOM analogue.
    Medium,
    /// LargeBOOM analogue.
    Large,
    /// MegaBOOM analogue.
    Mega,
}

/// All variants, smallest first.
pub const ALL_VARIANTS: &[BoomVariant] = &[
    BoomVariant::Small,
    BoomVariant::Medium,
    BoomVariant::Large,
    BoomVariant::Mega,
];

impl BoomVariant {
    /// Issue-queue entries per functional class.
    pub fn iq_entries(self) -> usize {
        match self {
            BoomVariant::Small => 2,
            BoomVariant::Medium => 4,
            BoomVariant::Large => 8,
            BoomVariant::Mega => 16,
        }
    }

    /// Reorder-buffer entries.
    pub fn rob_entries(self) -> usize {
        match self {
            BoomVariant::Small => 4,
            BoomVariant::Medium => 8,
            BoomVariant::Large => 16,
            BoomVariant::Mega => 32,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BoomVariant::Small => "SmallBoomLite",
            BoomVariant::Medium => "MediumBoomLite",
            BoomVariant::Large => "LargeBoomLite",
            BoomVariant::Mega => "MegaBoomLite",
        }
    }
}

/// Number of architectural registers modelled.
pub const NREGS: usize = 8;

/// Name of the instruction input.
pub const INSTR_INPUT: &str = "instr";

const CACHE_LINES: usize = 4;
const MISS_CYCLES: u64 = 3;

/// One issue queue: FIFO of entries with stale-on-issue payloads.
struct IssueQueue {
    valid: Vec<StateId>,
    uop: Vec<StateId>,
    op1: Vec<StateId>,
    op2: Vec<StateId>,
    rob: Vec<StateId>,
    head: StateId,
    tail: StateId,
}

struct IssueQueueOut {
    q: IssueQueue,
    /// Entry at the head (combinational reads).
    head_valid: NodeId,
    head_uop: NodeId,
    head_op1: NodeId,
    head_op2: NodeId,
    head_rob: NodeId,
    /// `!valid[tail]` is free.
    full: NodeId,
}

fn build_iq(n: &mut Netlist, prefix: &str, entries: usize, xlen: u32, rbits: u32) -> IssueQueueOut {
    let qbits = (entries.trailing_zeros()).max(1);
    assert!(entries.is_power_of_two());
    let nopw = Instruction::nop().encode() as u64;
    let valid: Vec<_> = (0..entries)
        .map(|i| n.state(format!("{prefix}v{i}"), 1, Bv::bit(false)))
        .collect();
    let uop: Vec<_> = (0..entries)
        .map(|i| n.state(format!("{prefix}uop{i}"), 32, Bv::new(32, nopw)))
        .collect();
    let op1: Vec<_> = (0..entries)
        .map(|i| n.state(format!("{prefix}op1_{i}"), xlen, Bv::zero(xlen)))
        .collect();
    let op2: Vec<_> = (0..entries)
        .map(|i| n.state(format!("{prefix}op2_{i}"), xlen, Bv::zero(xlen)))
        .collect();
    let rob: Vec<_> = (0..entries)
        .map(|i| n.state(format!("{prefix}rob{i}"), rbits, Bv::zero(rbits)))
        .collect();
    let head = n.state(format!("{prefix}head"), qbits, Bv::zero(qbits));
    let tail = n.state(format!("{prefix}tail"), qbits, Bv::zero(qbits));

    let headn = n.state_node(head);
    let tailn = n.state_node(tail);
    let read = |n: &mut Netlist, regs: &[StateId], idx: NodeId| {
        let nodes: Vec<NodeId> = regs.iter().map(|&r| n.state_node(r)).collect();
        rf_read(n, &nodes, idx)
    };
    let head_valid = read(n, &valid, headn);
    let head_uop = read(n, &uop, headn);
    let head_op1 = read(n, &op1, headn);
    let head_op2 = read(n, &op2, headn);
    let head_rob = read(n, &rob, headn);
    let full = read(n, &valid, tailn);

    IssueQueueOut {
        q: IssueQueue {
            valid,
            uop,
            op1,
            op2,
            rob,
            head,
            tail,
        },
        head_valid,
        head_uop,
        head_op1,
        head_op2,
        head_rob,
        full,
    }
}

/// Wires the IQ's next-state functions given dispatch/issue fire signals.
#[allow(clippy::too_many_arguments)]
fn wire_iq(
    n: &mut Netlist,
    iq: &IssueQueue,
    dispatch_fire: NodeId,
    issue_fire: NodeId,
    disp_uop: NodeId,
    disp_op1: NodeId,
    disp_op2: NodeId,
    disp_rob: NodeId,
) {
    let entries = iq.valid.len();
    let qbits = n.width(n.state_node(iq.head));
    let headn = n.state_node(iq.head);
    let tailn = n.state_node(iq.tail);
    for i in 0..entries {
        let at_tail = n.eq_const(tailn, i as u64);
        let alloc = n.and(dispatch_fire, at_tail);
        let at_head = n.eq_const(headn, i as u64);
        let pop = n.and(issue_fire, at_head);

        let v = n.state_node(iq.valid[i]);
        let v_kept = {
            let np = n.not(pop);
            n.and(v, np)
        };
        let v_next = n.or(alloc, v_kept);
        n.set_next(iq.valid[i], v_next);

        // Payload fields: written on alloc, otherwise retained — including
        // after issue (stale residue, as in BOOM's issue slots).
        let u = n.state_node(iq.uop[i]);
        let u_next = n.ite(alloc, disp_uop, u);
        n.set_next(iq.uop[i], u_next);
        let o1 = n.state_node(iq.op1[i]);
        let o1_next = n.ite(alloc, disp_op1, o1);
        n.set_next(iq.op1[i], o1_next);
        let o2 = n.state_node(iq.op2[i]);
        let o2_next = n.ite(alloc, disp_op2, o2);
        n.set_next(iq.op2[i], o2_next);
        let r = n.state_node(iq.rob[i]);
        let r_next = n.ite(alloc, disp_rob, r);
        n.set_next(iq.rob[i], r_next);
    }
    let one = n.c(qbits, 1);
    let tail_inc = n.add(tailn, one);
    let tail_next = n.ite(dispatch_fire, tail_inc, tailn);
    n.set_next(iq.tail, tail_next);
    let head_inc = n.add(headn, one);
    let head_next = n.ite(issue_fire, head_inc, headn);
    n.set_next(iq.head, head_next);
}

/// Builds a BoomLite core.
pub fn boom_lite(variant: BoomVariant, xlen: u32) -> Design {
    boom_lite_scaled(variant, xlen, 1)
}

/// [`boom_lite`] with the pipeline deepened `scale`-fold: issue-queue and
/// reorder-buffer entry counts are multiplied by `scale` (a power of two, so
/// ROB index arithmetic keeps wrapping naturally). `scale = 1` is exactly
/// the Table 1 variant. Deeper pipelines blow up the control-path cones —
/// and the SAT queries under them — without changing the leakage story, so
/// solver perf gates use this for headroom.
pub fn boom_lite_scaled(variant: BoomVariant, xlen: u32, scale: usize) -> Design {
    assert!(
        scale >= 1 && scale.is_power_of_two(),
        "scale must be a power of two, got {scale}"
    );
    let _ = &mulunit::iter_mul; // doc cross-link only
    let mut n = Netlist::new(if scale == 1 {
        format!("{}_x{xlen}", variant.name().to_lowercase())
    } else {
        format!("{}_x{xlen}_d{scale}", variant.name().to_lowercase())
    });
    let rb = reg_bits(NREGS);
    let iq_n = variant.iq_entries() * scale;
    let rob_n = variant.rob_entries() * scale;
    let rbits = rob_n.trailing_zeros().max(1);
    let nopw = Instruction::nop().encode() as u64;

    // ------------------------------------------------------------------
    // Architectural state
    // ------------------------------------------------------------------
    let rf: Vec<_> = (0..NREGS)
        .map(|i| n.state(format!("rf{i}"), xlen, Bv::zero(xlen)))
        .collect();
    let pc = n.state("pc", xlen, Bv::zero(xlen));
    let busy: Vec<_> = (1..NREGS)
        .map(|i| n.state(format!("busy{i}"), 1, Bv::bit(false)))
        .collect();

    let disp_instr = n.state("disp_instr", 32, Bv::new(32, nopw));
    let disp_valid = n.state("disp_valid", 1, Bv::bit(false));
    let retire_valid = n.state("retire_valid", 1, Bv::bit(false));
    let instr_in = n.input(INSTR_INPUT, 32);

    // ------------------------------------------------------------------
    // ROB
    // ------------------------------------------------------------------
    let rob_valid: Vec<_> = (0..rob_n)
        .map(|i| n.state(format!("rob$v{i}"), 1, Bv::bit(false)))
        .collect();
    let rob_done: Vec<_> = (0..rob_n)
        .map(|i| n.state(format!("rob$d{i}"), 1, Bv::bit(false)))
        .collect();
    let rob_uop: Vec<_> = (0..rob_n)
        .map(|i| n.state(format!("rob$uop{i}"), 32, Bv::new(32, nopw)))
        .collect();
    let rob_head = n.state("rob$head", rbits, Bv::zero(rbits));
    let rob_tail = n.state("rob$tail", rbits, Bv::zero(rbits));

    // ------------------------------------------------------------------
    // Dispatch stage
    // ------------------------------------------------------------------
    let di = n.state_node(disp_instr);
    let dvn = n.state_node(disp_valid);
    let d: Decode = decode(&mut n, di, xlen, NREGS);
    let rf_nodes: Vec<NodeId> = rf.iter().map(|&r| n.state_node(r)).collect();
    let rs1val = rf_read(&mut n, &rf_nodes, d.rs1);
    let rs2val = rf_read(&mut n, &rf_nodes, d.rs2);
    let pcn = n.state_node(pc);

    // Class routing. JMP handles auipc, jal and branches; MUL the M ops;
    // MEM loads/stores; ALU everything else.
    let class_jmp = {
        let bj = n.or(d.is_branch, d.is_jal);
        n.or(bj, d.is_auipc)
    };
    let class_mul = d.is_mul;
    let class_mem = n.or(d.is_load, d.is_store);
    let class_alu = {
        let not_auipc = n.not(d.is_auipc);
        n.and(d.is_alu, not_auipc)
    };

    // Scoreboard reads (x0 never busy).
    let busy_nodes: Vec<NodeId> = {
        let mut v = vec![n.cfalse()];
        v.extend(busy.iter().map(|&b| n.state_node(b)));
        v
    };
    let rs1_busy_raw = rf_read(&mut n, &busy_nodes, d.rs1);
    let rs2_busy_raw = rf_read(&mut n, &busy_nodes, d.rs2);
    let rd_busy_raw = rf_read(&mut n, &busy_nodes, d.rd);
    let rs1_busy = n.and(d.uses_rs1, rs1_busy_raw);
    let rs2_busy = n.and(d.uses_rs2, rs2_busy_raw);
    let rd_busy = n.and(d.writes_rd, rd_busy_raw);

    // ------------------------------------------------------------------
    // Issue queues
    // ------------------------------------------------------------------
    // ALU and MEM instructions share a unified integer scheduler, as real
    // cores share an ALU/AGU issue window. This is load-bearing for the
    // paper's §5.2.1: the same queue entries hold *valid safe* uops and
    // *stale unsafe* residue, so the invariant cannot simply pin the valid
    // bits — it must constrain entry uop contents with `InSafeSet`, which is
    // exactly the predicate that dirty (unmasked) examples would block.
    let int_iq = build_iq(&mut n, "intiq$", iq_n, xlen, rbits);
    let mul_iq = build_iq(&mut n, "muliq$", iq_n, xlen, rbits);
    let jmp_iq = build_iq(&mut n, "jmpiq$", iq_n, xlen, rbits);

    let class_int = n.or(class_alu, class_mem);
    let target_full = {
        let c0 = n.and(class_int, int_iq.full);
        let c1 = n.and(class_mul, mul_iq.full);
        let c3 = n.and(class_jmp, jmp_iq.full);
        n.or_all(&[c0, c1, c3])
    };
    let rob_tail_n = n.state_node(rob_tail);
    let rob_valid_nodes: Vec<NodeId> = rob_valid.iter().map(|&r| n.state_node(r)).collect();
    let rob_full = rf_read(&mut n, &rob_valid_nodes, rob_tail_n);

    let hazards = n.or_all(&[target_full, rob_full, rs1_busy, rs2_busy, rd_busy]);
    let no_hazard = n.not(hazards);
    let can_dispatch = n.and(dvn, no_hazard);

    let disp_int = n.and(can_dispatch, class_int);
    let disp_mul = n.and(can_dispatch, class_mul);
    let disp_jmp = n.and(can_dispatch, class_jmp);

    // ------------------------------------------------------------------
    // Functional units (declared before issue wiring for grant signals)
    // ------------------------------------------------------------------
    // ALU output stage.
    let alu_v = n.state("alu$v", 1, Bv::bit(false));
    let alu_data = n.state("alu$data", xlen, Bv::zero(xlen));
    let alu_rd = n.state("alu$rd", rb, Bv::zero(rb));
    let alu_rob = n.state("alu$rob", rbits, Bv::zero(rbits));
    let alu_wr = n.state("alu$wr", 1, Bv::bit(false));

    // MUL 3-stage pipeline.
    let mul_v: Vec<_> = (0..3)
        .map(|i| n.state(format!("mul$v{i}"), 1, Bv::bit(false)))
        .collect();
    let mul_data: Vec<_> = (0..3)
        .map(|i| n.state(format!("mul$data{i}"), xlen, Bv::zero(xlen)))
        .collect();
    let mul_rd: Vec<_> = (0..3)
        .map(|i| n.state(format!("mul$rd{i}"), rb, Bv::zero(rb)))
        .collect();
    let mul_rob_s: Vec<_> = (0..3)
        .map(|i| n.state(format!("mul$rob{i}"), rbits, Bv::zero(rbits)))
        .collect();

    // JMP unit: slow stage 0 and output stage 1.
    let jmp_v0 = n.state("jmp$v0", 1, Bv::bit(false));
    let jmp_data0 = n.state("jmp$data0", xlen, Bv::zero(xlen));
    let jmp_rd0 = n.state("jmp$rd0", rb, Bv::zero(rb));
    let jmp_rob0 = n.state("jmp$rob0", rbits, Bv::zero(rbits));
    let jmp_wr0 = n.state("jmp$wr0", 1, Bv::bit(false));
    let jmp_v1 = n.state("jmp$v1", 1, Bv::bit(false));
    let jmp_data1 = n.state("jmp$data1", xlen, Bv::zero(xlen));
    let jmp_rd1 = n.state("jmp$rd1", rb, Bv::zero(rb));
    let jmp_rob1 = n.state("jmp$rob1", rbits, Bv::zero(rbits));
    let jmp_wr1 = n.state("jmp$wr1", 1, Bv::bit(false));

    // MEM unit: in-flight latch + cache + output stage.
    let mem_busy = n.state("mem$busy", 1, Bv::bit(false));
    let mem_cnt = n.state("mem$cnt", 2, Bv::zero(2));
    let mem_v = n.state("mem$v", 1, Bv::bit(false));
    let mem_data = n.state("mem$data", xlen, Bv::zero(xlen));
    let mem_rd = n.state("mem$rd", rb, Bv::zero(rb));
    let mem_rob_st = n.state("mem$rob", rbits, Bv::zero(rbits));
    let mem_wr = n.state("mem$wr", 1, Bv::bit(false));
    let ctags: Vec<_> = (0..CACHE_LINES)
        .map(|i| n.state(format!("mem$ctag{i}"), xlen - 4, Bv::zero(xlen - 4)))
        .collect();
    let cvalids: Vec<_> = (0..CACHE_LINES)
        .map(|i| n.state(format!("mem$cvalid{i}"), 1, Bv::bit(false)))
        .collect();

    // ------------------------------------------------------------------
    // Write-back arbitration (ALU > MUL > JMP > MEM)
    // ------------------------------------------------------------------
    let alu_vn = n.state_node(alu_v);
    let mul_v2n = n.state_node(mul_v[2]);
    let jmp_v1n = n.state_node(jmp_v1);
    let mem_vn = n.state_node(mem_v);
    let alu_grant = alu_vn;
    let mul_grant = {
        let na = n.not(alu_vn);
        n.and(mul_v2n, na)
    };
    let jmp_grant = {
        let na = n.not(alu_vn);
        let nm = n.not(mul_v2n);
        n.and_all(&[jmp_v1n, na, nm])
    };
    let mem_grant = {
        let na = n.not(alu_vn);
        let nm = n.not(mul_v2n);
        let nj = n.not(jmp_v1n);
        n.and_all(&[mem_vn, na, nm, nj])
    };

    // ------------------------------------------------------------------
    // Issue + unit next-state logic
    // ------------------------------------------------------------------
    // ALU issues when its output stage is free or draining.
    let alu_ready = {
        let nv = n.not(alu_vn);
        n.or(nv, alu_grant)
    };
    // Unified int-scheduler head: decode routes the entry to the ALU or the
    // memory unit. The decode is over the raw entry uop — exactly why its
    // content must be invariant-constrained.
    let d_int = decode(&mut n, int_iq.head_uop, xlen, NREGS);
    let head_is_mem = n.or(d_int.is_load, d_int.is_store);
    let head_is_alu = n.not(head_is_mem);
    let alu_issue = n.and_all(&[int_iq.head_valid, head_is_alu, alu_ready]);
    let alu_res = alu_result(&mut n, &d_int, pcn, int_iq.head_op1, int_iq.head_op2, xlen);
    {
        let keep = {
            let ng = n.not(alu_grant);
            n.and(alu_vn, ng)
        };
        let v_next = n.or(alu_issue, keep);
        n.set_next(alu_v, v_next);
        let data = n.state_node(alu_data);
        let data_next = n.ite(alu_issue, alu_res, data);
        n.set_next(alu_data, data_next);
        let rdn = n.state_node(alu_rd);
        let rd_next = n.ite(alu_issue, d_int.rd, rdn);
        n.set_next(alu_rd, rd_next);
        let robn = n.state_node(alu_rob);
        let rob_next = n.ite(alu_issue, int_iq.head_rob, robn);
        n.set_next(alu_rob, rob_next);
        let wrn = n.state_node(alu_wr);
        let wr_next = n.ite(alu_issue, d_int.writes_rd, wrn);
        n.set_next(alu_wr, wr_next);
    }

    // MUL pipeline advances when the last stage is free or draining.
    let mul_advance = {
        let nv = n.not(mul_v2n);
        n.or(nv, mul_grant)
    };
    let mul_issue = n.and(mul_iq.head_valid, mul_advance);
    let d_mul = decode(&mut n, mul_iq.head_uop, xlen, NREGS);
    let mul_res = n.mul(mul_iq.head_op1, mul_iq.head_op2);
    {
        // Stage 0 input.
        let v0 = n.state_node(mul_v[0]);
        let v1 = n.state_node(mul_v[1]);
        let d0 = n.state_node(mul_data[0]);
        let d1 = n.state_node(mul_data[1]);
        let r0 = n.state_node(mul_rd[0]);
        let r1 = n.state_node(mul_rd[1]);
        let b0 = n.state_node(mul_rob_s[0]);
        let b1 = n.state_node(mul_rob_s[1]);
        let d2 = n.state_node(mul_data[2]);
        let r2 = n.state_node(mul_rd[2]);
        let b2 = n.state_node(mul_rob_s[2]);

        let v0_next = n.ite(mul_advance, mul_issue, v0);
        n.set_next(mul_v[0], v0_next);
        let d0_next = n.ite(mul_advance, mul_res, d0);
        n.set_next(mul_data[0], d0_next);
        let r0_next = n.ite(mul_advance, d_mul.rd, r0);
        n.set_next(mul_rd[0], r0_next);
        let b0_next = n.ite(mul_advance, mul_iq.head_rob, b0);
        n.set_next(mul_rob_s[0], b0_next);

        let v1_next = n.ite(mul_advance, v0, v1);
        n.set_next(mul_v[1], v1_next);
        let d1_next = n.ite(mul_advance, d0, d1);
        n.set_next(mul_data[1], d1_next);
        let r1_next = n.ite(mul_advance, r0, r1);
        n.set_next(mul_rd[1], r1_next);
        let b1_next = n.ite(mul_advance, b0, b1);
        n.set_next(mul_rob_s[1], b1_next);

        let v2_next = n.ite(mul_advance, v1, mul_v2n);
        n.set_next(mul_v[2], v2_next);
        let d2_next = n.ite(mul_advance, d1, d2);
        n.set_next(mul_data[2], d2_next);
        let r2_next = n.ite(mul_advance, r1, r2);
        n.set_next(mul_rd[2], r2_next);
        let b2_next = n.ite(mul_advance, b1, b2);
        n.set_next(mul_rob_s[2], b2_next);
    }

    // JMP unit: auipc probes the speculative rs1-alias read (head_op1) and
    // takes the fast path when it is zero. Branches are fast when not
    // taken; jal is always slow.
    let jmp_v0n = n.state_node(jmp_v0);
    let jmp_ready = {
        let n0 = n.not(jmp_v0n);
        let n1 = n.not(jmp_v1n);
        n.and(n0, n1)
    };
    let jmp_issue = n.and(jmp_iq.head_valid, jmp_ready);
    let d_jmp = decode(&mut n, jmp_iq.head_uop, xlen, NREGS);
    let jmp_result = {
        // auipc: pc + imm_u; branches/jal: link value pc + 4.
        let auipc_v = n.add(pcn, d_jmp.imm_u);
        let four = n.c(xlen, 4);
        let link = n.add(pcn, four);
        n.ite(d_jmp.is_auipc, auipc_v, link)
    };
    {
        let zero_x = n.c(xlen, 0);
        let probe_zero = n.eq(jmp_iq.head_op1, zero_x);
        let auipc_fast = n.and(d_jmp.is_auipc, probe_zero);
        let taken = branch_taken(&mut n, &d_jmp, jmp_iq.head_op1, jmp_iq.head_op2);
        let not_taken = n.not(taken);
        let branch_fast = n.and(d_jmp.is_branch, not_taken);
        let fast = n.or(auipc_fast, branch_fast);
        let slow = n.not(fast);
        let issue_fast = n.and(jmp_issue, fast);
        let issue_slow = n.and(jmp_issue, slow);

        // Stage 0 (slow path).
        let move01 = {
            let n1_free = {
                let nv = n.not(jmp_v1n);
                n.or(nv, jmp_grant)
            };
            n.and(jmp_v0n, n1_free)
        };
        let v0_keep = {
            let nm = n.not(move01);
            n.and(jmp_v0n, nm)
        };
        let v0_next = n.or(issue_slow, v0_keep);
        n.set_next(jmp_v0, v0_next);
        let d0 = n.state_node(jmp_data0);
        let d0_next = n.ite(issue_slow, jmp_result, d0);
        n.set_next(jmp_data0, d0_next);
        let r0 = n.state_node(jmp_rd0);
        let r0_next = n.ite(issue_slow, d_jmp.rd, r0);
        n.set_next(jmp_rd0, r0_next);
        let b0 = n.state_node(jmp_rob0);
        let b0_next = n.ite(issue_slow, jmp_iq.head_rob, b0);
        n.set_next(jmp_rob0, b0_next);
        let w0 = n.state_node(jmp_wr0);
        let w0_next = n.ite(issue_slow, d_jmp.writes_rd, w0);
        n.set_next(jmp_wr0, w0_next);

        // Stage 1 (output).
        let keep1 = {
            let ng = n.not(jmp_grant);
            n.and(jmp_v1n, ng)
        };
        let v1_next = n.or_all(&[issue_fast, move01, keep1]);
        n.set_next(jmp_v1, v1_next);
        let d1 = n.state_node(jmp_data1);
        let from0 = n.ite(move01, d0, d1);
        let d1_next = n.ite(issue_fast, jmp_result, from0);
        n.set_next(jmp_data1, d1_next);
        let r1 = n.state_node(jmp_rd1);
        let r_from0 = n.ite(move01, r0, r1);
        let r1_next = n.ite(issue_fast, d_jmp.rd, r_from0);
        n.set_next(jmp_rd1, r1_next);
        let b1 = n.state_node(jmp_rob1);
        let b_from0 = n.ite(move01, b0, b1);
        let b1_next = n.ite(issue_fast, jmp_iq.head_rob, b_from0);
        n.set_next(jmp_rob1, b1_next);
        let w1 = n.state_node(jmp_wr1);
        let w_from0 = n.ite(move01, w0, w1);
        let w1_next = n.ite(issue_fast, d_jmp.writes_rd, w_from0);
        n.set_next(jmp_wr1, w1_next);
    }

    // MEM unit.
    let mem_busyn = n.state_node(mem_busy);
    let mem_ready = {
        let nb = n.not(mem_busyn);
        let nv = n.not(mem_vn);
        n.and(nb, nv)
    };
    let mem_issue = n.and_all(&[int_iq.head_valid, head_is_mem, mem_ready]);
    {
        let imm = n.ite(d_int.is_store, d_int.imm_s, d_int.imm_i);
        let addr = n.add(int_iq.head_op1, imm);
        let idx = n.slice(addr, 3, 2);
        let tag = n.slice(addr, xlen - 1, 4);
        let mut hit_terms = Vec::new();
        for i in 0..CACHE_LINES {
            let sel = n.eq_const(idx, i as u64);
            let tn = n.state_node(ctags[i]);
            let teq = n.eq(tn, tag);
            let vn = n.state_node(cvalids[i]);
            let t = n.and_all(&[sel, teq, vn]);
            hit_terms.push(t);
        }
        let hit = n.or_all(&hit_terms);
        let miss = n.not(hit);
        let start_hit = n.and(mem_issue, hit);
        let start_miss = n.and(mem_issue, miss);
        let cnt = n.state_node(mem_cnt);
        let cnt_zero = n.eq_const(cnt, 0);
        let finish = n.and(mem_busyn, cnt_zero);

        // Output stage valid: hit completes next cycle; miss after countdown.
        let keep_v = {
            let ng = n.not(mem_grant);
            n.and(mem_vn, ng)
        };
        let v_next = n.or_all(&[start_hit, finish, keep_v]);
        n.set_next(mem_v, v_next);

        let not_finish = n.not(cnt_zero);
        let still = n.and(mem_busyn, not_finish);
        let busy_next = n.or(start_miss, still);
        n.set_next(mem_busy, busy_next);

        let miss_c = n.c(2, MISS_CYCLES);
        let one2 = n.c(2, 1);
        let dec2 = n.sub(cnt, one2);
        let cnt_run = n.ite(mem_busyn, dec2, cnt);
        let cnt_next = n.ite(start_miss, miss_c, cnt_run);
        n.set_next(mem_cnt, cnt_next);

        for i in 0..CACHE_LINES {
            let sel = n.eq_const(idx, i as u64);
            let fill = n.and(start_miss, sel);
            let tn = n.state_node(ctags[i]);
            let t_next = n.ite(fill, tag, tn);
            n.set_next(ctags[i], t_next);
            let vn = n.state_node(cvalids[i]);
            let v2 = n.or(fill, vn);
            n.set_next(cvalids[i], v2);
        }

        // Latches for the in-flight access (loaded data = address value).
        let md = n.state_node(mem_data);
        let md_next = n.ite(mem_issue, addr, md);
        n.set_next(mem_data, md_next);
        let mr = n.state_node(mem_rd);
        let mr_next = n.ite(mem_issue, d_int.rd, mr);
        n.set_next(mem_rd, mr_next);
        let mb = n.state_node(mem_rob_st);
        let mb_next = n.ite(mem_issue, int_iq.head_rob, mb);
        n.set_next(mem_rob_st, mb_next);
        let mw = n.state_node(mem_wr);
        let mw_next = n.ite(mem_issue, d_int.writes_rd, mw);
        n.set_next(mem_wr, mw_next);
    }

    // ------------------------------------------------------------------
    // Write-back: register file, scoreboard clear, ROB done
    // ------------------------------------------------------------------
    let alu_wrn = n.state_node(alu_wr);
    let jmp_wr1n = n.state_node(jmp_wr1);
    let mem_wrn = n.state_node(mem_wr);
    let alu_we = n.and(alu_grant, alu_wrn);
    let mul_we = mul_grant; // mul always writes rd
    let jmp_we = n.and(jmp_grant, jmp_wr1n);
    let mem_we = n.and(mem_grant, mem_wrn);

    let alu_datan = n.state_node(alu_data);
    let mul_data2n = n.state_node(mul_data[2]);
    let jmp_data1n = n.state_node(jmp_data1);
    let mem_datan = n.state_node(mem_data);
    let alu_rdn = n.state_node(alu_rd);
    let mul_rd2n = n.state_node(mul_rd[2]);
    let jmp_rd1n = n.state_node(jmp_rd1);
    let mem_rdn = n.state_node(mem_rd);

    let wb_en = n.or_all(&[alu_we, mul_we, jmp_we, mem_we]);
    let wb_data = {
        let zero_x = n.c(xlen, 0);
        n.select(
            &[
                (alu_we, alu_datan),
                (mul_we, mul_data2n),
                (jmp_we, jmp_data1n),
                (mem_we, mem_datan),
            ],
            zero_x,
        )
    };
    let wb_rd = {
        let zero_r = n.c(rb, 0);
        n.select(
            &[
                (alu_we, alu_rdn),
                (mul_we, mul_rd2n),
                (jmp_we, jmp_rd1n),
                (mem_we, mem_rdn),
            ],
            zero_r,
        )
    };

    // Register file.
    let zero_x = n.c(xlen, 0);
    n.set_next(rf[0], zero_x);
    for (i, &r) in rf.iter().enumerate().skip(1) {
        let sel = n.eq_const(wb_rd, i as u64);
        let we = n.and(wb_en, sel);
        let cur = n.state_node(r);
        let nxt = n.ite(we, wb_data, cur);
        n.set_next(r, nxt);
    }

    // Scoreboard: set at dispatch, cleared at write-back.
    let set_busy = n.and(can_dispatch, d.writes_rd);
    for (k, &b) in busy.iter().enumerate() {
        let r = k + 1;
        let set_sel = n.eq_const(d.rd, r as u64);
        let set = n.and(set_busy, set_sel);
        let clr_sel = n.eq_const(wb_rd, r as u64);
        let clr = n.and(wb_en, clr_sel);
        let cur = n.state_node(b);
        let not_clr = n.not(clr);
        let kept = n.and(cur, not_clr);
        let nxt = n.or(set, kept);
        n.set_next(b, nxt);
    }

    // ROB done marks from grants.
    let alu_robn = n.state_node(alu_rob);
    let mul_rob2n = n.state_node(mul_rob_s[2]);
    let jmp_rob1n = n.state_node(jmp_rob1);
    let mem_robn = n.state_node(mem_rob_st);
    let grants: Vec<(NodeId, NodeId)> = vec![
        (alu_grant, alu_robn),
        (mul_grant, mul_rob2n),
        (jmp_grant, jmp_rob1n),
        (mem_grant, mem_robn),
    ];

    // ROB retire.
    let rob_headn = n.state_node(rob_head);
    let rob_done_nodes: Vec<NodeId> = rob_done.iter().map(|&r| n.state_node(r)).collect();
    let head_v = rf_read(&mut n, &rob_valid_nodes, rob_headn);
    let head_d = rf_read(&mut n, &rob_done_nodes, rob_headn);
    let retire_fire = n.and(head_v, head_d);
    n.set_next(retire_valid, retire_fire);

    for i in 0..rob_n {
        let at_tail = n.eq_const(rob_tail_n, i as u64);
        let alloc = n.and(can_dispatch, at_tail);
        let at_head = n.eq_const(rob_headn, i as u64);
        let retire_i = n.and(retire_fire, at_head);

        let v = n.state_node(rob_valid[i]);
        let not_ret = n.not(retire_i);
        let v_keep = n.and(v, not_ret);
        let v_next = n.or(alloc, v_keep);
        n.set_next(rob_valid[i], v_next);

        let mut done_set = n.cfalse();
        for &(g, idx) in &grants {
            let sel = n.eq_const(idx, i as u64);
            let t = n.and(g, sel);
            done_set = n.or(done_set, t);
        }
        let dcur = n.state_node(rob_done[i]);
        let d_or = n.or(dcur, done_set);
        let not_alloc = n.not(alloc);
        let d_next = n.and(d_or, not_alloc);
        n.set_next(rob_done[i], d_next);

        let u = n.state_node(rob_uop[i]);
        let u_next = n.ite(alloc, di, u);
        n.set_next(rob_uop[i], u_next);
    }
    let one_r = n.c(rbits, 1);
    let head_inc = n.add(rob_headn, one_r);
    let head_next = n.ite(retire_fire, head_inc, rob_headn);
    n.set_next(rob_head, head_next);
    let tail_inc = n.add(rob_tail_n, one_r);
    let tail_next = n.ite(can_dispatch, tail_inc, rob_tail_n);
    n.set_next(rob_tail, tail_next);

    // PC tracks retirement.
    let four = n.c(xlen, 4);
    let pc_inc = n.add(pcn, four);
    let pc_next = n.ite(retire_fire, pc_inc, pcn);
    n.set_next(pc, pc_next);

    // ------------------------------------------------------------------
    // Issue-queue wiring (dispatch payloads shared across queues)
    // ------------------------------------------------------------------
    let int_issue = n.or(alu_issue, mem_issue);
    for (iq, disp_fire, issue_fire) in [
        (&int_iq, disp_int, int_issue),
        (&mul_iq, disp_mul, mul_issue),
        (&jmp_iq, disp_jmp, jmp_issue),
    ] {
        wire_iq(
            &mut n, &iq.q, disp_fire, issue_fire, di, rs1val, rs2val, rob_tail_n,
        );
    }

    // ------------------------------------------------------------------
    // Front latch
    // ------------------------------------------------------------------
    let d_in = decode(&mut n, instr_in, xlen, NREGS);
    let stall = {
        let nc = n.not(can_dispatch);
        n.and(dvn, nc)
    };
    let not_stall = n.not(stall);
    let latch = n.and(not_stall, d_in.known);
    let disp_valid_next = n.or(stall, latch);
    n.set_next(disp_valid, disp_valid_next);
    let disp_instr_next = n.ite(stall, di, instr_in);
    n.set_next(disp_instr, disp_instr_next);

    let rvn = n.state_node(retire_valid);
    n.add_output("retire_valid", rvn);

    n.assert_complete();

    // ------------------------------------------------------------------
    // Masking annotations (§5.2.1/§6.2): valid bits guard entry payloads.
    // ------------------------------------------------------------------
    let mut masking = Vec::new();
    for iq in [&int_iq, &mul_iq, &jmp_iq] {
        for i in 0..iq_n {
            masking.push(MaskRule {
                valid: iq.q.valid[i],
                fields: vec![iq.q.uop[i], iq.q.op1[i], iq.q.op2[i], iq.q.rob[i]],
            });
        }
    }
    for i in 0..rob_n {
        masking.push(MaskRule {
            valid: rob_valid[i],
            fields: vec![rob_uop[i], rob_done[i]],
        });
    }
    masking.push(MaskRule {
        valid: alu_v,
        fields: vec![alu_data, alu_rd, alu_rob, alu_wr],
    });
    for i in 0..3 {
        masking.push(MaskRule {
            valid: mul_v[i],
            fields: vec![mul_data[i], mul_rd[i], mul_rob_s[i]],
        });
    }
    masking.push(MaskRule {
        valid: jmp_v0,
        fields: vec![jmp_data0, jmp_rd0, jmp_rob0, jmp_wr0],
    });
    masking.push(MaskRule {
        valid: jmp_v1,
        fields: vec![jmp_data1, jmp_rd1, jmp_rob1, jmp_wr1],
    });
    masking.push(MaskRule {
        valid: mem_v,
        fields: vec![mem_data, mem_rd, mem_rob_st, mem_wr],
    });

    Design {
        netlist: n,
        instr_input: INSTR_INPUT.to_string(),
        observable: vec![retire_valid],
        secret_regs: rf[1..].to_vec(),
        masking,
        nregs: NREGS,
        xlen,
        max_latency: 16,
        example_depth: rob_n + iq_n + 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_isa::asm;
    use hh_netlist::eval::{step, InputValues, StateValues};

    fn feed(d: &Design, word: u32) -> InputValues {
        let mut iv = InputValues::zeros(&d.netlist);
        iv.set_by_name(&d.netlist, INSTR_INPUT, Bv::new(32, word as u64));
        iv
    }

    /// Runs a program (one word per cycle, NOP-padded afterwards) and
    /// returns the retire pulse waveform over `total` cycles plus the final
    /// state.
    fn run(
        d: &Design,
        regs: &[(usize, u64)],
        prog: &[u32],
        total: usize,
    ) -> (Vec<bool>, StateValues) {
        let n = &d.netlist;
        let mut s = StateValues::initial(n);
        for &(r, v) in regs {
            assert!(r >= 1);
            s.set(d.secret_regs[r - 1], Bv::new(d.xlen, v));
        }
        let nopw = asm::nop().encode();
        let mut wave = Vec::new();
        for c in 0..total {
            let w = prog.get(c).copied().unwrap_or(nopw);
            s = step(n, &s, &feed(d, w));
            wave.push(s.get(d.observable[0]).is_true());
        }
        (wave, s)
    }

    fn rf_value(d: &Design, s: &StateValues, r: usize) -> u64 {
        s.get(d.secret_regs[r - 1]).bits()
    }

    #[test]
    fn alu_instruction_flows_to_retirement() {
        let d = boom_lite(BoomVariant::Small, 16);
        let (wave, s) = run(&d, &[(1, 7), (2, 8)], &[asm::add(3, 1, 2).encode()], 20);
        assert_eq!(rf_value(&d, &s, 3), 15);
        // NOPs retire too; at least one retire pulse must occur.
        assert!(wave.iter().any(|&b| b));
    }

    #[test]
    fn mul_is_fixed_latency() {
        let d = boom_lite(BoomVariant::Small, 16);
        // Time from program start to the *first* retire pulse for a lone mul.
        let first_retire = |a: u64, b: u64| -> usize {
            let (wave, s) = run(&d, &[(1, a), (2, b)], &[asm::mul(3, 1, 2).encode()], 30);
            assert_eq!(rf_value(&d, &s, 3), (a * b) & 0xffff);
            wave.iter().position(|&x| x).expect("mul retired")
        };
        let l1 = first_retire(7, 6);
        let l2 = first_retire(0, 6); // zero operand: same latency (pipelined)
        let l3 = first_retire(0xffff, 0xffff);
        assert_eq!(l1, l2);
        assert_eq!(l1, l3);
    }

    #[test]
    fn auipc_latency_depends_on_probed_register() {
        let d = boom_lite(BoomVariant::Small, 16);
        // auipc imm chosen so the rs1-alias field (imm20 bits [7:3]) selects
        // register 2: imm20 = 2 << 3 = 0x10.
        let auipc = asm::auipc(3, 0x10).encode();
        let probe = |r2: u64| -> usize {
            let (wave, _) = run(&d, &[(2, r2)], &[auipc], 30);
            wave.iter().position(|&x| x).expect("auipc retired")
        };
        let fast = probe(0);
        let slow = probe(5);
        assert!(
            fast < slow,
            "auipc fast path must depend on the speculatively-read register ({fast} vs {slow})"
        );
    }

    #[test]
    fn independent_instructions_overlap() {
        // A mul followed by an independent add: the add (1-cycle ALU) passes
        // the 3-cycle mul in the units even though retirement is in order.
        let d = boom_lite(BoomVariant::Medium, 16);
        let prog = [
            asm::mul(3, 1, 2).encode(),
            asm::add(4, 1, 2).encode(),
            asm::nop().encode(),
        ];
        let (wave, s) = run(&d, &[(1, 3), (2, 5)], &prog, 30);
        assert_eq!(rf_value(&d, &s, 3), 15);
        assert_eq!(rf_value(&d, &s, 4), 8);
        assert!(wave.iter().filter(|&&x| x).count() >= 3);
    }

    #[test]
    fn raw_hazard_respected() {
        let d = boom_lite(BoomVariant::Small, 16);
        // add r3 = r1 + r2; then add r4 = r3 + r3 (depends on first).
        let prog = [asm::add(3, 1, 2).encode(), asm::add(4, 3, 3).encode()];
        let (_, s) = run(&d, &[(1, 1), (2, 2)], &prog, 30);
        assert_eq!(rf_value(&d, &s, 3), 3);
        assert_eq!(rf_value(&d, &s, 4), 6);
    }

    #[test]
    fn waw_hazard_respected() {
        let d = boom_lite(BoomVariant::Small, 16);
        // Two writers of r3: the later one must win.
        let prog = [asm::addi(3, 0, 5).encode(), asm::addi(3, 0, 9).encode()];
        let (_, s) = run(&d, &[], &prog, 30);
        assert_eq!(rf_value(&d, &s, 3), 9);
    }

    #[test]
    fn load_timing_depends_on_cache() {
        // Two loads of the same address: the first misses (cold cache), the
        // second hits. Measure each load's latency by watching its
        // destination register get written.
        let d = boom_lite(BoomVariant::Small, 16);
        let n = &d.netlist;
        let nopw = asm::nop().encode();
        let first_issue = 0usize;
        let second_issue = 12usize;
        let mut s = StateValues::initial(n);
        s.set(d.secret_regs[0], Bv::new(16, 0x40)); // rf1 = base address
        let mut rf3_at = None;
        let mut rf4_at = None;
        for cycle in 0..40 {
            let w = if cycle == first_issue {
                asm::lw(3, 1, 0).encode()
            } else if cycle == second_issue {
                asm::lw(4, 1, 0).encode()
            } else {
                nopw
            };
            s = step(n, &s, &feed(&d, w));
            if rf3_at.is_none() && rf_value(&d, &s, 3) != 0 {
                rf3_at = Some(cycle);
            }
            if rf4_at.is_none() && rf_value(&d, &s, 4) != 0 {
                rf4_at = Some(cycle);
            }
        }
        let miss_latency = rf3_at.expect("first load completed") - first_issue;
        let hit_latency = rf4_at.expect("second load completed") - second_issue;
        assert!(
            hit_latency < miss_latency,
            "hit ({hit_latency}) should beat miss ({miss_latency})"
        );
    }

    #[test]
    fn stale_uops_remain_in_issue_queues() {
        // After an instruction issues, its IQ entry keeps the uop with the
        // valid bit low — the residue that requires example masking.
        let d = boom_lite(BoomVariant::Small, 16);
        let mulw = asm::mul(3, 1, 2).encode();
        let (_, s) = run(&d, &[(1, 2), (2, 3)], &[mulw], 25);
        let uop0 = d.netlist.find_state("muliq$uop0").unwrap();
        let v0 = d.netlist.find_state("muliq$v0").unwrap();
        assert_eq!(s.get(uop0).bits(), mulw as u64, "stale uop expected");
        assert!(!s.get(v0).is_true(), "entry must be invalid after issue");
    }

    #[test]
    fn variants_scale_in_state_bits() {
        let sizes: Vec<u64> = ALL_VARIANTS
            .iter()
            .map(|&v| boom_lite(v, 16).state_bits())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes: {sizes:?}");
        // Mega should be several times Small, echoing Table 1's spread.
        assert!(sizes[3] > 3 * sizes[0], "sizes: {sizes:?}");
    }

    #[test]
    fn masking_annotations_cover_queues() {
        let d = boom_lite(BoomVariant::Small, 16);
        // 3 IQs × entries + ROB entries + unit stages.
        assert!(d.masking.len() >= 3 * 2 + 4 + 6);
        for rule in &d.masking {
            assert_eq!(d.netlist.state_width(rule.valid), 1);
            assert!(!rule.fields.is_empty());
        }
    }

    #[test]
    fn retire_stream_is_secret_independent_for_alu_mul_program() {
        // 2-safety spot check: same program, different secrets, identical
        // retire waveforms (the property VeloCT proves for the safe set).
        let d = boom_lite(BoomVariant::Small, 16);
        let prog = [
            asm::add(3, 1, 2).encode(),
            asm::mul(4, 1, 2).encode(),
            asm::xori(5, 1, 0x55).encode(),
        ];
        let (w1, _) = run(&d, &[(1, 3), (2, 7)], &prog, 40);
        let (w2, _) = run(&d, &[(1, 0xabc), (2, 0x1)], &prog, 40);
        assert_eq!(w1, w2, "ALU/MUL-only programs must be timing-equal");
    }
}
