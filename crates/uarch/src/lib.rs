//! # hh-uarch — synthetic processor models for safe-instruction-set synthesis
//!
//! The paper evaluates VeloCT on Chipyard-generated Rocketchip and BOOM RTL.
//! Those designs cannot be shipped here, so this crate builds *synthetic*
//! cores in the `hh-netlist` builder API that reproduce the specific
//! microarchitectural mechanisms the paper's results rest on:
//!
//! * [`execstage`] — the worked example of Appendix C: an execute stage with
//!   a 1-cycle ADD unit and an iterative multiplier with a zero-skip fast
//!   path.
//! * [`rocketlite`] — an in-order multicycle core with a register file,
//!   barrel-shifter ALU, the zero-skip iterative multiplier (making
//!   `mul`-family instructions operand-timing-variable, as the paper found
//!   on RV64 Rocketchip), a cache-latency memory unit and taken/not-taken
//!   branch timing.
//! * [`boomlite`] — an out-of-order core in four sizes (Small → Mega):
//!   per-class issue FIFOs, a reorder buffer with in-order retire, a
//!   scoreboard, a *pipelined* (fixed-latency, hence safe) multiplier, a
//!   write-back arbiter — and a jump unit whose `auipc` fast path
//!   speculatively reads the register file through the immediate's rs1-field
//!   alias, giving `auipc` genuinely data-dependent timing (the surprise the
//!   paper reports in §6.4). Issue-queue entries retain stale uops after
//!   issue, which is exactly the residue that makes example masking (§5.2.1)
//!   necessary.
//!
//! Every core exposes a uniform [`Design`] descriptor that the VeloCT layer
//! consumes: the instruction input, the attacker-observable states, the
//! secret-holding register file, and the masking annotations.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alu;
pub mod boomlite;
pub mod decode;
pub mod execstage;
pub mod mulunit;
pub mod rocketlite;

use hh_netlist::{Netlist, StateId};

/// A masking annotation (paper §5.2.1/§6.2): when `valid` is 0 in a positive
/// example, the listed `fields` are reset to their initial values before the
/// example is used for mining. This scrubs stale-uop residue out of
/// out-of-order structures.
#[derive(Debug, Clone)]
pub struct MaskRule {
    /// The valid bit guarding an entry.
    pub valid: StateId,
    /// The entry fields that are semantically dead when `valid` is 0.
    pub fields: Vec<StateId>,
}

/// A verification target: a core plus the metadata VeloCT needs.
#[derive(Debug)]
pub struct Design {
    /// The circuit.
    pub netlist: Netlist,
    /// Name of the 32-bit instruction input (the alphabet Σ).
    pub instr_input: String,
    /// Attacker-observable state elements `O` (Def. 4.2) — retire/valid
    /// signals.
    pub observable: Vec<StateId>,
    /// Architectural register file: the state elements that hold (possibly
    /// secret) data. Positive-example pairs differ exactly here.
    pub secret_regs: Vec<StateId>,
    /// Masking annotations (empty for in-order cores, as in the paper).
    pub masking: Vec<MaskRule>,
    /// Number of architectural registers modelled.
    pub nregs: usize,
    /// Datapath width.
    pub xlen: u32,
    /// Worst-case completion latency of any single instruction, in cycles.
    /// Example generation pads with at least this many NOPs.
    pub max_latency: usize,
    /// Minimum number of instruction instances per example program needed to
    /// exercise every slot of the deepest structure (ROB/issue queues).
    /// Positive-example coverage must wrap these structures or spurious
    /// `EqConst` predicates survive mining and cause backtracking.
    pub example_depth: usize,
}

impl Design {
    /// Total state bits (the paper's Table 1 size metric).
    pub fn state_bits(&self) -> u64 {
        self.netlist.state_bits()
    }
}

/// Reconstructs a builtin design from its netlist name (e.g.
/// `rocketlite_x16`, `smallboomlite_x32`).
///
/// Every builtin core names its netlist `<core>_x<xlen>`, so the name alone
/// is a complete, durable design reference — this is what `hh-proof`
/// certificates store, and resolving it re-runs the exact constructor that
/// produced the certified design. Returns `None` for unknown names (e.g.
/// btor2-loaded designs, which have no reconstructible reference).
pub fn builtin_by_netlist_name(name: &str) -> Option<Design> {
    let (core, xlen) = name.rsplit_once("_x")?;
    let xlen: u32 = xlen.parse().ok()?;
    if !(1..=64).contains(&xlen) {
        return None;
    }
    use boomlite::{boom_lite, BoomVariant};
    let design = match core {
        "rocketlite" => rocketlite::rocket_lite(xlen),
        "smallboomlite" => boom_lite(BoomVariant::Small, xlen),
        "mediumboomlite" => boom_lite(BoomVariant::Medium, xlen),
        "largeboomlite" => boom_lite(BoomVariant::Large, xlen),
        "megaboomlite" => boom_lite(BoomVariant::Mega, xlen),
        _ => return None,
    };
    debug_assert_eq!(design.netlist.name(), name);
    Some(design)
}

#[cfg(test)]
mod tests {
    use crate::rocketlite::rocket_lite;

    #[test]
    fn builtin_registry_roundtrips_netlist_names() {
        let d = rocket_lite(16);
        let re = crate::builtin_by_netlist_name(d.netlist.name()).expect("rocketlite resolves");
        assert_eq!(re.netlist.name(), d.netlist.name());
        assert_eq!(re.xlen, d.xlen);
        assert_eq!(re.observable.len(), d.observable.len());
        let b = crate::boomlite::boom_lite(crate::boomlite::BoomVariant::Small, 16);
        let re = crate::builtin_by_netlist_name(b.netlist.name()).expect("boomlite resolves");
        assert_eq!(re.netlist.name(), b.netlist.name());
        assert!(crate::builtin_by_netlist_name("mystery_x16").is_none());
        assert!(crate::builtin_by_netlist_name("rocketlite").is_none());
    }

    #[test]
    fn design_metadata_is_consistent() {
        let d = rocket_lite(16);
        assert!(!d.observable.is_empty());
        // x0 is hardwired to zero, so it is not a secret-bearing register.
        assert_eq!(d.secret_regs.len(), d.nregs - 1);
        assert!(d.netlist.find_input(&d.instr_input).is_some());
        d.netlist.assert_complete();
    }
}
