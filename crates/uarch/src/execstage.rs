//! The worked example of Appendix C: a simplified execute stage with an ADD
//! unit and a zero-skip iterative MUL unit.
//!
//! The stage reads two operands from a tiny register file (where secrets
//! live), dispatches to one of the two functional units by opcode, and
//! raises `Valid` when a result is ready. The 2-safety target is
//! `Eq(Valid)`: the attacker observing result-ready timing must learn
//! nothing about register contents. As in the paper, the invariant for the
//! ADD-only safe set exists, while admitting MUL forces the learner to
//! backtrack into `Eq(Op1)`/`Eq(Op2)` (which positive examples refute) and
//! fail.

use crate::mulunit::{iter_mul, IterMul};
use hh_netlist::{Bv, Netlist, NodeId, StateId};

/// Opcode values of the execute stage's 2-bit "ISA".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// One-cycle addition.
    Add = 1,
    /// Iterative multiplication with zero-skip.
    Mul = 2,
}

/// Handles into the execute-stage design.
#[derive(Debug)]
pub struct ExecStage {
    /// The circuit.
    pub netlist: Netlist,
    /// Register file (4 registers; these hold secrets).
    pub regs: Vec<StateId>,
    /// Latched opcode.
    pub opcode_r: StateId,
    /// Latched operands.
    pub op1: StateId,
    /// Latched operands.
    pub op2: StateId,
    /// ADD unit result-ready flag.
    pub valid_add: StateId,
    /// ADD unit result.
    pub res_add: StateId,
    /// MUL unit states.
    pub mul: IterMul,
    /// Final observable result-ready register (the property target).
    pub valid: StateId,
    /// Final result register.
    pub res: StateId,
}

/// The command input layout: `[1:0]` opcode, `[3:2]` rs1, `[5:4]` rs2.
pub const CMD_INPUT: &str = "cmd";

/// Builds the Appendix-C execute stage with the given operand width.
pub fn exec_stage(xlen: u32) -> ExecStage {
    let mut n = Netlist::new("execstage");

    // Register file: 4 registers holding (possibly secret) data.
    let regs: Vec<StateId> = (0..4)
        .map(|i| n.state(format!("rf{i}"), xlen, Bv::zero(xlen)))
        .collect();
    for &r in &regs {
        n.keep_state(r);
    }
    let reg_nodes: Vec<NodeId> = regs.iter().map(|&r| n.state_node(r)).collect();

    // Command input and operand fetch.
    let cmd = n.input(CMD_INPUT, 6);
    let opc_in = n.slice(cmd, 1, 0);
    let rs1 = n.slice(cmd, 3, 2);
    let rs2 = n.slice(cmd, 5, 4);
    let rs1val = crate::decode::rf_read(&mut n, &reg_nodes, rs1);
    let rs2val = crate::decode::rf_read(&mut n, &reg_nodes, rs2);

    // Operand/opcode latch stage.
    let opcode_r = n.state("opcode_r", 2, Bv::zero(2));
    let op1 = n.state("op1", xlen, Bv::zero(xlen));
    let op2 = n.state("op2", xlen, Bv::zero(xlen));
    n.set_next(opcode_r, opc_in);
    n.set_next(op1, rs1val);
    n.set_next(op2, rs2val);

    let opc = n.state_node(opcode_r);
    let op1n = n.state_node(op1);
    let op2n = n.state_node(op2);
    let is_add = n.eq_const(opc, Opcode::Add as u64);
    let is_mul = n.eq_const(opc, Opcode::Mul as u64);

    // ADD unit: single cycle.
    let valid_add = n.state("valid_add", 1, Bv::bit(false));
    let res_add = n.state("res_add", xlen, Bv::zero(xlen));
    n.set_next(valid_add, is_add);
    let sum = n.add(op1n, op2n);
    let res_add_cur = n.state_node(res_add);
    let res_add_next = n.ite(is_add, sum, res_add_cur);
    n.set_next(res_add, res_add_next);

    // MUL unit: iterative with zero-skip (Figure 7).
    let mul_idle = {
        // start = is_mul & !in_use & !valid — but in_use/valid are created by
        // iter_mul itself, so pre-create a start wire via a two-phase build:
        // iter_mul guards internally on `start` only; we build start from
        // opcode and the *previous* unit instance is impossible. Instead we
        // create the unit with a placeholder start and rely on the latch
        // protocol: opcode_r is only MUL for the issue cycle because the
        // testbench/core feeds NOP afterwards. To stay robust against
        // back-to-back MULs we gate on in_use below by rebuilding start.
        is_mul
    };
    // First build the unit with the raw signal, then strengthen the start
    // guard by post-wiring: iter_mul samples `start` as given, so we guard
    // here using freshly created states. To allow that, we build a guard
    // register `mul_busy_shadow` that mirrors in_use|valid timing.
    // Simpler and fully correct: a dedicated `started` latch that blocks
    // re-issue while the current MUL instruction is outstanding.
    let started = n.state("mul_started", 1, Bv::bit(false));
    let started_n = n.state_node(started);
    let not_started = n.not(started_n);
    let start = n.and(mul_idle, not_started);
    let mul = iter_mul(&mut n, "mul$", start, op1n, op2n, xlen);
    // started' = (started | start) & !valid'  — cleared the cycle after the
    // result pulses. valid' is the unit's next-state function, but we can
    // reconstruct the clear condition from current state: the pulse cycle
    // itself is when valid==1.
    let mul_valid_n = n.state_node(mul.valid);
    let set = n.or(started_n, start);
    let not_valid = n.not(mul_valid_n);
    let started_next = n.and(set, not_valid);
    n.set_next(started, started_next);

    // Output stage: Valid is the OR of the unit pulses (both are one-cycle
    // pulses, and the issue protocol serialises instructions).
    let valid = n.state("valid", 1, Bv::bit(false));
    let res = n.state("res", xlen, Bv::zero(xlen));
    let valid_add_n = n.state_node(valid_add);
    let valid_next = n.or(valid_add_n, mul_valid_n);
    n.set_next(valid, valid_next);
    let mul_res_n = n.state_node(mul.result);
    let res_cur = n.state_node(res);
    let res_from_add = n.ite(valid_add_n, res_add_cur, res_cur);
    let res_next = n.ite(mul_valid_n, mul_res_n, res_from_add);
    n.set_next(res, res_next);

    let valid_node = n.state_node(valid);
    n.add_output("valid", valid_node);
    let res_node = n.state_node(res);
    n.add_output("res", res_node);

    n.assert_complete();
    ExecStage {
        netlist: n,
        regs,
        opcode_r,
        op1,
        op2,
        valid_add,
        res_add,
        mul,
        valid,
        res,
    }
}

/// Encodes a command word for the stage's input.
pub fn cmd(op: Opcode, rs1: u8, rs2: u8) -> u64 {
    (op as u64) | ((rs1 as u64 & 3) << 2) | ((rs2 as u64 & 3) << 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_netlist::eval::{step, InputValues, StateValues};

    fn feed(n: &Netlist, word: u64) -> InputValues {
        let mut iv = InputValues::zeros(n);
        iv.set_by_name(n, CMD_INPUT, Bv::new(6, word));
        iv
    }

    /// Runs a command and returns cycles until `valid` pulses + result.
    fn run(stage: &ExecStage, init_regs: &[u64; 4], command: u64) -> (usize, u64) {
        let n = &stage.netlist;
        let mut s = StateValues::initial(n);
        for (i, &v) in init_regs.iter().enumerate() {
            s.set(stage.regs[i], Bv::new(16, v));
        }
        s = step(n, &s, &feed(n, command)); // latch
        let idle = feed(n, cmd(Opcode::Nop, 0, 0));
        for cycle in 1..=40 {
            s = step(n, &s, &idle);
            if s.get(stage.valid).is_true() {
                return (cycle, s.get(stage.res).bits());
            }
        }
        panic!("no result");
    }

    #[test]
    fn add_is_single_cycle() {
        let stage = exec_stage(16);
        let (lat, res) = run(&stage, &[3, 4, 0, 0], cmd(Opcode::Add, 0, 1));
        assert_eq!(res, 7);
        assert_eq!(lat, 2); // execute + output register
                            // ADD latency never depends on operands.
        let (lat2, res2) = run(&stage, &[0, 9, 0, 0], cmd(Opcode::Add, 0, 1));
        assert_eq!((lat2, res2), (2, 9));
    }

    #[test]
    fn mul_latency_depends_on_operands() {
        let stage = exec_stage(16);
        let (lat_nz, res_nz) = run(&stage, &[3, 5, 0, 0], cmd(Opcode::Mul, 0, 1));
        assert_eq!(res_nz, 15);
        let (lat_z, res_z) = run(&stage, &[0, 5, 0, 0], cmd(Opcode::Mul, 0, 1));
        assert_eq!(res_z, 0);
        assert!(
            lat_z < lat_nz,
            "zero-skip must be observably faster ({lat_z} vs {lat_nz})"
        );
    }

    #[test]
    fn nop_produces_no_valid() {
        let stage = exec_stage(16);
        let n = &stage.netlist;
        let mut s = StateValues::initial(n);
        let idle = feed(n, cmd(Opcode::Nop, 0, 0));
        for _ in 0..10 {
            s = step(n, &s, &idle);
            assert!(!s.get(stage.valid).is_true());
        }
    }

    #[test]
    fn secrets_do_not_affect_add_timing() {
        // The 2-safety property, checked concretely: same commands, different
        // register contents, identical valid waveforms for ADD programs.
        let stage = exec_stage(16);
        let (lat_a, _) = run(&stage, &[1, 2, 3, 4], cmd(Opcode::Add, 2, 3));
        let (lat_b, _) = run(&stage, &[9, 8, 7, 6], cmd(Opcode::Add, 2, 3));
        assert_eq!(lat_a, lat_b);
    }
}
