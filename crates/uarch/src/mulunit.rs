//! The iterative multiplier with a zero-skip fast path — Figure 7 of the
//! paper, generalised to a parameterised width.
//!
//! The unit takes `xlen + 1` cycles for non-zero operands (one cycle per
//! multiplier bit plus the issue cycle) but answers in a single cycle when
//! either operand is zero. That operand-dependent latency is the timing
//! channel that makes `mul`-family instructions *unsafe* on RocketLite, just
//! as the paper found for RV64 Rocketchip (§6.4).

use hh_netlist::{Bv, Netlist, NodeId, StateId};

/// Handles to the state elements of one iterative multiplier instance.
#[derive(Debug, Clone)]
pub struct IterMul {
    /// Busy flag (`in_use` in Figure 7).
    pub in_use: StateId,
    /// Iteration counter.
    pub count: StateId,
    /// Result-ready pulse (`Valid_mul`).
    pub valid: StateId,
    /// Accumulated product (`Res_mul`).
    pub result: StateId,
    /// Shifting multiplicand.
    pub multiplicand: StateId,
    /// Shifting multiplier.
    pub multiplier: StateId,
}

/// Instantiates an iterative zero-skip multiplier inside `n`.
///
/// `start` must be high for exactly the issue cycle (the caller guards it
/// with `!in_use & !valid`); `op1`/`op2` are sampled during that cycle.
/// State names are prefixed with `prefix`.
pub fn iter_mul(
    n: &mut Netlist,
    prefix: &str,
    start: NodeId,
    op1: NodeId,
    op2: NodeId,
    xlen: u32,
) -> IterMul {
    let cbits = 32 - (xlen - 1).leading_zeros(); // log2ceil(xlen)
    let in_use = n.state(format!("{prefix}in_use"), 1, Bv::bit(false));
    let count = n.state(format!("{prefix}count"), cbits, Bv::zero(cbits));
    let valid = n.state(format!("{prefix}valid"), 1, Bv::bit(false));
    let result = n.state(format!("{prefix}res"), xlen, Bv::zero(xlen));
    let mcand = n.state(format!("{prefix}mcand"), xlen, Bv::zero(xlen));
    let mplier = n.state(format!("{prefix}mplier"), xlen, Bv::zero(xlen));

    let in_use_n = n.state_node(in_use);
    let count_n = n.state_node(count);
    let res_n = n.state_node(result);
    let mcand_n = n.state_node(mcand);
    let mplier_n = n.state_node(mplier);

    let zero_x = n.c(xlen, 0);
    let zs1 = n.eq(op1, zero_x);
    let zs2 = n.eq(op2, zero_x);
    let zero_skip = n.or(zs1, zs2);
    let go = start; // caller guarantees !in_use & !valid
    let go_fast = n.and(go, zero_skip);
    let nzs = n.not(zero_skip);
    let go_slow = n.and(go, nzs);

    // Iteration datapath.
    let bit0 = n.bit(mplier_n, 0);
    let acc_plus = n.add(res_n, mcand_n);
    let acc_next = n.ite(bit0, acc_plus, res_n);
    let one = n.c(xlen, 1);
    let mcand_shift = n.shl(mcand_n, one);
    let mplier_shift = n.lshr(mplier_n, one);
    let count_one = n.c(cbits, 1);
    let count_inc = n.add(count_n, count_one);
    let last = n.eq_const(count_n, (xlen - 1) as u64);

    // in_use' = in_use ? !last : go_slow
    let not_last = n.not(last);
    let in_use_busy = n.and(in_use_n, not_last);
    let in_use_next = n.or(in_use_busy, go_slow);
    n.set_next(in_use, in_use_next);

    // count' = in_use ? count + 1 : 0
    let zero_c = n.c(cbits, 0);
    let count_next = n.ite(in_use_n, count_inc, zero_c);
    n.set_next(count, count_next);

    // valid' = (in_use & last) | go_fast    (a one-cycle pulse)
    let done_slow = n.and(in_use_n, last);
    let valid_next = n.or(done_slow, go_fast);
    n.set_next(valid, valid_next);

    // result' = in_use ? acc_next : (go ? 0 : result)
    //   (on go_fast the result is 0 because an operand is 0)
    let res_idle = n.ite(go, zero_x, res_n);
    let res_next = n.ite(in_use_n, acc_next, res_idle);
    n.set_next(result, res_next);

    // multiplicand/multiplier: load on go, shift while busy.
    let mcand_busy = n.ite(in_use_n, mcand_shift, mcand_n);
    let mcand_next = n.ite(go, op1, mcand_busy);
    n.set_next(mcand, mcand_next);
    let mplier_busy = n.ite(in_use_n, mplier_shift, mplier_n);
    let mplier_next = n.ite(go, op2, mplier_busy);
    n.set_next(mplier, mplier_next);

    IterMul {
        in_use,
        count,
        valid,
        result,
        multiplicand: mcand,
        multiplier: mplier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_netlist::eval::{step, InputValues, StateValues};

    /// Standalone harness: ops and start come from inputs.
    fn harness() -> (Netlist, IterMul) {
        let mut n = Netlist::new("mul_test");
        let start_in = n.input("start", 1);
        let op1 = n.input("op1", 16);
        let op2 = n.input("op2", 16);
        // Guard: start only effective when idle, as the cores do.
        let m_states = {
            // Need in_use/valid before building the guard; build the unit
            // with a raw start and rely on the testbench to pulse correctly.
            iter_mul(&mut n, "m$", start_in, op1, op2, 16)
        };
        (n, m_states)
    }

    /// Runs a multiply and returns (latency_cycles, result).
    fn run_mul(a: u64, b: u64) -> (usize, u64) {
        let (n, m) = harness();
        let mut s = StateValues::initial(&n);
        // Cycle 0: pulse start with operands.
        let mut iv = InputValues::zeros(&n);
        iv.set_by_name(&n, "start", Bv::bit(true));
        iv.set_by_name(&n, "op1", Bv::new(16, a));
        iv.set_by_name(&n, "op2", Bv::new(16, b));
        s = step(&n, &s, &iv);
        let idle = InputValues::zeros(&n);
        for cycle in 1..=40 {
            if s.get(m.valid).is_true() {
                return (cycle, s.get(m.result).bits());
            }
            s = step(&n, &s, &idle);
        }
        panic!("multiplier never finished");
    }

    #[test]
    fn computes_products() {
        assert_eq!(run_mul(7, 6).1, 42);
        assert_eq!(run_mul(255, 255).1, (255 * 255) & 0xffff);
        assert_eq!(run_mul(1000, 60).1, 60000);
        assert_eq!(run_mul(0x100, 0x100).1, 0); // wraps at 16 bits
    }

    #[test]
    fn zero_skip_is_fast() {
        let (lat0, res0) = run_mul(0, 1234);
        assert_eq!(res0, 0);
        assert_eq!(lat0, 1, "zero-skip must answer in one cycle");
        let (lat0b, _) = run_mul(1234, 0);
        assert_eq!(lat0b, 1);
    }

    #[test]
    fn nonzero_takes_full_iteration() {
        let (lat, _) = run_mul(3, 5);
        assert_eq!(lat, 17, "16 iterations + issue cycle");
        // Latency is operand-value independent as long as both are nonzero.
        assert_eq!(run_mul(0xffff, 1).0, 17);
    }

    #[test]
    fn timing_leak_exists() {
        // The timing channel the paper exploits: latency differs between a
        // zero and a non-zero operand.
        assert_ne!(run_mul(0, 7).0, run_mul(3, 7).0);
    }
}
