//! # hh-sim — cycle-accurate simulation and paired-trace generation
//!
//! Positive examples in VeloCT (paper §5.2) come from *concrete* executions:
//! a pair of traces that run the same instruction sequence but differ in
//! secret operand values. This crate provides the simulation machinery:
//!
//! * [`simulate`] — run a netlist for N cycles from a given initial state,
//! * [`Trace`] — the resulting state/input history,
//! * [`output_waveform`] — observe a signal over time (the attacker's view),
//! * [`product_states`] — zip a left and right trace into product states of a
//!   miter, which is the raw material for positive examples (Def. 4.8).
//!
//! ```
//! use hh_netlist::{Netlist, Bv};
//! use hh_netlist::eval::{InputValues, StateValues};
//! use hh_sim::simulate;
//!
//! let mut n = Netlist::new("counter");
//! let c = n.state("c", 8, Bv::zero(8));
//! let cur = n.state_node(c);
//! let one = n.c(8, 1);
//! let nxt = n.add(cur, one);
//! n.set_next(c, nxt);
//!
//! let inputs = vec![InputValues::zeros(&n); 5];
//! let trace = hh_sim::simulate(&n, StateValues::initial(&n), &inputs);
//! assert_eq!(trace.states[5].get(c), Bv::new(8, 5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use hh_netlist::eval::{eval_all, step, InputValues, StateValues};
use hh_netlist::miter::Miter;
use hh_netlist::{Bv, Netlist, NodeId};

/// A finite execution: `states[i]` is the state *entering* cycle `i`
/// (`states[0]` is the initial state), `inputs[i]` the inputs applied during
/// cycle `i`. `states.len() == inputs.len() + 1`.
#[derive(Debug, Clone)]
pub struct Trace {
    /// State history (length = cycles + 1).
    pub states: Vec<StateValues>,
    /// Input history (length = cycles).
    pub inputs: Vec<InputValues>,
}

impl Trace {
    /// Number of simulated cycles.
    pub fn cycles(&self) -> usize {
        self.inputs.len()
    }
}

/// Runs `netlist` from `initial` applying `inputs` cycle by cycle.
pub fn simulate(netlist: &Netlist, initial: StateValues, inputs: &[InputValues]) -> Trace {
    let mut states = Vec::with_capacity(inputs.len() + 1);
    states.push(initial);
    for iv in inputs {
        let next = step(netlist, states.last().unwrap(), iv);
        states.push(next);
    }
    Trace {
        states,
        inputs: inputs.to_vec(),
    }
}

/// The value of `node` during each cycle of `trace` (evaluated with that
/// cycle's pre-state and inputs) — the attacker-visible waveform when `node`
/// is an observable output.
pub fn output_waveform(netlist: &Netlist, trace: &Trace, node: NodeId) -> Vec<Bv> {
    trace
        .inputs
        .iter()
        .enumerate()
        .map(|(i, iv)| eval_all(netlist, &trace.states[i], iv)[node.index()])
        .collect()
}

/// The value of a *state element* at every point of the trace (length =
/// cycles + 1).
pub fn state_waveform(trace: &Trace, sid: hh_netlist::StateId) -> Vec<Bv> {
    trace.states.iter().map(|s| s.get(sid)).collect()
}

/// Zips two equal-length traces of the *base* design into product states of
/// the miter: cycle `i`'s product state assigns the left trace's values to
/// the `l$` states and the right trace's to the `r$` states.
///
/// # Panics
///
/// Panics if trace lengths differ (paper Def. 4.5 pads the shorter trace;
/// our generator always produces equal-length pairs by construction).
pub fn product_states(miter: &Miter, left: &Trace, right: &Trace) -> Vec<StateValues> {
    assert_eq!(
        left.states.len(),
        right.states.len(),
        "paired traces must have equal length"
    );
    left.states
        .iter()
        .zip(&right.states)
        .map(|(ls, rs)| {
            let mut pv = StateValues::initial(miter.netlist());
            for base in miter.base_state_ids() {
                pv.set(miter.left(base), ls.get(base));
                pv.set(miter.right(base), rs.get(base));
            }
            pv
        })
        .collect()
}

/// Convenience: simulate the pair `(left_init, right_init)` on the *same*
/// input sequence and return the product states (the raw positive-example
/// stream before masking/filtering).
pub fn simulate_pair(
    netlist: &Netlist,
    miter: &Miter,
    left_init: StateValues,
    right_init: StateValues,
    inputs: &[InputValues],
) -> (Trace, Trace, Vec<StateValues>) {
    let lt = simulate(netlist, left_init, inputs);
    let rt = simulate(netlist, right_init, inputs);
    let ps = product_states(miter, &lt, &rt);
    (lt, rt, ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// acc' = acc + in; out = acc.
    fn accumulator() -> Netlist {
        let mut n = Netlist::new("acc");
        let acc = n.state("acc", 8, Bv::zero(8));
        let i = n.input("i", 8);
        let cur = n.state_node(acc);
        let nxt = n.add(cur, i);
        n.set_next(acc, nxt);
        n.add_output("o", cur);
        n
    }

    fn drive(n: &Netlist, vals: &[u64]) -> Vec<InputValues> {
        vals.iter()
            .map(|&v| {
                let mut iv = InputValues::zeros(n);
                iv.set_by_name(n, "i", Bv::new(8, v));
                iv
            })
            .collect()
    }

    #[test]
    fn simulate_accumulates() {
        let n = accumulator();
        let acc = n.find_state("acc").unwrap();
        let inputs = drive(&n, &[1, 2, 3, 4]);
        let t = simulate(&n, StateValues::initial(&n), &inputs);
        assert_eq!(t.cycles(), 4);
        let wave = state_waveform(&t, acc);
        let got: Vec<u64> = wave.iter().map(|v| v.bits()).collect();
        assert_eq!(got, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn output_waveform_sees_combinational_value() {
        let n = accumulator();
        let out = n.find_output("o").unwrap();
        let inputs = drive(&n, &[5, 5]);
        let t = simulate(&n, StateValues::initial(&n), &inputs);
        let wave = output_waveform(&n, &t, out);
        assert_eq!(
            wave.iter().map(|v| v.bits()).collect::<Vec<_>>(),
            vec![0, 5]
        );
    }

    #[test]
    fn product_states_assemble_both_sides() {
        let n = accumulator();
        let m = Miter::build(&n);
        let acc = n.find_state("acc").unwrap();
        let inputs = drive(&n, &[1, 1]);
        let mut li = StateValues::initial(&n);
        li.set(acc, Bv::new(8, 10));
        let mut ri = StateValues::initial(&n);
        ri.set(acc, Bv::new(8, 20));
        let (_, _, ps) = simulate_pair(&n, &m, li, ri, &inputs);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].get(m.left(acc)).bits(), 10);
        assert_eq!(ps[0].get(m.right(acc)).bits(), 20);
        assert_eq!(ps[2].get(m.left(acc)).bits(), 12);
        assert_eq!(ps[2].get(m.right(acc)).bits(), 22);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_traces_panic() {
        let n = accumulator();
        let m = Miter::build(&n);
        let t1 = simulate(&n, StateValues::initial(&n), &drive(&n, &[1]));
        let t2 = simulate(&n, StateValues::initial(&n), &drive(&n, &[1, 2]));
        product_states(&m, &t1, &t2);
    }
}
