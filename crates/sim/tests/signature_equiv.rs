//! Property test: equal cone signatures imply observational equivalence.
//!
//! `hh-smt`'s cross-target encoding cache replays one target's CNF for any
//! signature-equal target, so the signature must never collide for cones
//! that can behave differently. This test generates netlists full of
//! renamed-copy cones, then checks every pair of states whose 1-step cone
//! signatures collide: under random stimulus where witness-corresponding
//! leaves carry equal values, the two next-state functions must produce
//! identical values on every simulated cycle.

use hh_netlist::eval::{InputValues, StateValues};
use hh_netlist::signature::{ConeSignature, SigBuilder};
use hh_netlist::simp::SimpMap;
use hh_netlist::{Bv, Netlist, NodeId, StateId};
use hh_sim::{output_waveform, simulate};
use std::collections::HashMap;

/// Deterministic xorshift64* PRNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn bv(&mut self, width: u32) -> Bv {
        Bv::new(width, self.next() & (u64::MAX >> (64 - width)))
    }
}

/// Applies one random op recipe step over a leaf/node pool. The same
/// `(op, a, b)` recipe applied to two pools of width-matched nodes builds
/// structurally isomorphic expressions.
fn apply_op(n: &mut Netlist, pool: &mut Vec<NodeId>, op: u64, a: u64, b: u64) {
    let x = pool[(a as usize) % pool.len()];
    let y = pool[(b as usize) % pool.len()];
    let w = n.width(x).max(n.width(y));
    let xe = n.uext(x, w);
    let ye = n.uext(y, w);
    let node = match op % 7 {
        0 => n.and(xe, ye),
        1 => n.or(xe, ye),
        2 => n.xor(xe, ye),
        3 => n.add(xe, ye),
        4 => n.not(xe),
        5 => {
            let c = n.redor(ye);
            n.ite(c, xe, ye)
        }
        _ => n.sub(xe, ye),
    };
    pool.push(node);
}

/// Builds a netlist of `pairs` twin-state groups: each group has two states
/// `p`/`q` of the same width whose next functions apply an identical random
/// recipe over (own state, a shared aux state, a shared input). The twins'
/// cones are renamed copies of each other by construction.
fn build(rng: &mut Rng, pairs: usize) -> (Netlist, Vec<StateId>) {
    let widths = [1u32, 4, 8];
    let mut n = Netlist::new("sigprop");
    let mut all = Vec::new();
    for g in 0..pairs {
        let w = widths[rng.below(3) as usize];
        let p = n.state(format!("p{g}"), w, Bv::zero(w));
        let q = n.state(format!("q{g}"), w, Bv::zero(w));
        let aux = n.state(format!("a{g}"), w, Bv::zero(w));
        let inp = n.input(format!("i{g}"), w);
        n.keep_state(aux);
        let recipe: Vec<(u64, u64, u64)> = (0..1 + rng.below(5))
            .map(|_| (rng.next(), rng.next(), rng.next()))
            .collect();
        let auxn = n.state_node(aux);
        for &s in &[p, q] {
            let own = n.state_node(s);
            let mut pool = vec![own, auxn, inp];
            for &(op, a, b) in &recipe {
                apply_op(&mut n, &mut pool, op, a, b);
            }
            let last = *pool.last().unwrap();
            let nxt = if n.width(last) >= w {
                n.slice(last, w - 1, 0)
            } else {
                n.uext(last, w)
            };
            n.set_next(s, nxt);
        }
        all.extend([p, q, aux]);
    }
    (n, all)
}

/// The signature a session-style caller would build: current-state fetch of
/// the target, then the root of its next function.
fn sig_of(n: &Netlist, simp: &SimpMap, s: StateId) -> ConeSignature {
    let mut b = SigBuilder::new(n, simp);
    b.state(s);
    b.root(n.next_of(s));
    b.finish()
}

#[test]
fn equal_signatures_imply_observational_equivalence() {
    let mut rng = Rng::new(0x9e37_79b9_7f4a_7c15);
    for _trial in 0..12 {
        let pairs = 1 + rng.below(4) as usize;
        let (n, states) = build(&mut rng, pairs);
        let simp = SimpMap::build(&n);
        let sigs: Vec<ConeSignature> = states.iter().map(|&s| sig_of(&n, &simp, s)).collect();

        // Twins are adjacent (p, q, aux triples): each group's p/q must
        // collide — the generator's guarantee that collisions exist at all.
        for chunk in states.chunks(3) {
            let (p, q) = (chunk[0], chunk[1]);
            let ip = states.iter().position(|&s| s == p).unwrap();
            let iq = states.iter().position(|&s| s == q).unwrap();
            assert_eq!(sigs[ip].key, sigs[iq].key, "twin cones must collide");
        }

        // The property: EVERY colliding pair (twins or accidental) must be
        // observationally equivalent under witness-corresponding stimulus.
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                if sigs[i].key != sigs[j].key {
                    continue;
                }
                check_equiv(&mut rng, &n, states[i], states[j], &sigs[i], &sigs[j]);
            }
        }
    }
}

fn check_equiv(
    rng: &mut Rng,
    n: &Netlist,
    s: StateId,
    t: StateId,
    sig_s: &ConeSignature,
    sig_t: &ConeSignature,
) {
    assert_eq!(sig_s.witness.states.len(), sig_t.witness.states.len());
    assert_eq!(sig_s.witness.inputs.len(), sig_t.witness.inputs.len());
    'stimulus: for _ in 0..8 {
        // Random full assignment, then constrain witness-corresponding
        // leaves to equal values. A leaf shared between the witnesses at
        // different canonical positions can make the constraints
        // unsatisfiable; such stimuli are skipped.
        let mut sv = StateValues::initial(n);
        for sid in n.state_ids() {
            sv.set(sid, rng.bv(n.state_width(sid)));
        }
        let mut iv = InputValues::zeros(n);
        for iid in n.input_ids() {
            let name = n.input_name(iid).to_string();
            iv.set_by_name(n, &name, rng.bv(n.input_width(iid)));
        }
        let mut sfix: HashMap<StateId, Bv> = HashMap::new();
        for (k, &a) in sig_s.witness.states.iter().enumerate() {
            let b = sig_t.witness.states[k];
            let v = *sfix.entry(a).or_insert_with(|| sv.get(a));
            match sfix.get(&b) {
                Some(&existing) if existing != v => continue 'stimulus,
                _ => {
                    sfix.insert(b, v);
                }
            }
        }
        for (&sid, &v) in &sfix {
            sv.set(sid, v);
        }
        let mut ifix: HashMap<hh_netlist::InputId, Bv> = HashMap::new();
        for (k, &a) in sig_s.witness.inputs.iter().enumerate() {
            let b = sig_t.witness.inputs[k];
            let v = *ifix.entry(a).or_insert_with(|| iv.get(a.index()));
            match ifix.get(&b) {
                Some(&existing) if existing != v => continue 'stimulus,
                _ => {
                    ifix.insert(b, v);
                }
            }
        }
        for (&iid, &v) in &ifix {
            let name = n.input_name(iid).to_string();
            iv.set_by_name(n, &name, v);
        }

        let trace = simulate(n, sv, std::slice::from_ref(&iv));
        let ws = output_waveform(n, &trace, n.next_of(s));
        let wt = output_waveform(n, &trace, n.next_of(t));
        assert_eq!(
            ws, wt,
            "signature-equal cones diverged under corresponding stimulus \
             (states {s:?} vs {t:?})"
        );
    }
}
