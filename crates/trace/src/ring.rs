//! Fixed-capacity event ring that keeps the **newest** entries.
//!
//! A thread's ring is written only by that thread (no synchronisation on the
//! push path) and handed over wholesale at harvest time, so the structure is
//! a plain vector with a wrap cursor rather than an MPSC queue.

use crate::Event;

/// A bounded event buffer. When full, pushing overwrites the oldest entry
/// and counts it as dropped — a long run degrades into "the most recent
/// window", never an unbounded allocation.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    /// Creates a ring holding at most `capacity` events (0 drops everything).
    pub fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning events oldest-surviving-first.
    pub fn into_events(mut self) -> Vec<Event> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

/// Bounded verification harness: for *any* capacity and push count within
/// the bound, the ring holds exactly the newest `min(n, capacity)` events
/// in push order and accounts every overwritten one as dropped. Proved by
/// Kani under `cargo kani`; compiled (and concretely executed as a test)
/// under the `kani-harness` feature so CI checks it without the toolchain.
#[cfg(any(kani, feature = "kani-harness"))]
#[allow(dead_code)]
mod verification {
    use super::Ring;
    use crate::{Event, EventKind};

    fn ev(ts: u64) -> Event {
        Event {
            name: "k",
            cat: "k",
            ts_us: ts,
            tid: 0,
            kind: EventKind::Instant,
        }
    }

    #[cfg(kani)]
    fn arb_below(bound: usize) -> usize {
        let x: usize = kani::any();
        kani::assume(x < bound);
        x
    }

    #[cfg(not(kani))]
    fn arb_below(bound: usize) -> usize {
        use std::cell::Cell;
        thread_local! {
            static STATE: Cell<u64> = const { Cell::new(0x853c_49e6_748f_ea9b) };
        }
        STATE.with(|s| {
            let next = s
                .get()
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.set(next);
            (next >> 33) as usize % bound.max(1)
        })
    }

    #[cfg_attr(kani, kani::proof, kani::unwind(10))]
    pub fn ring_wraparound_keeps_newest_in_order() {
        const MAX: usize = 8;
        let capacity = arb_below(MAX);
        let pushes = arb_below(MAX);
        let mut r = Ring::new(capacity);
        for i in 0..pushes {
            r.push(ev(i as u64));
        }
        let kept = pushes.min(capacity);
        assert_eq!(r.dropped(), (pushes - kept) as u64);
        let ts: Vec<u64> = r.into_events().iter().map(|e| e.ts_us).collect();
        let want: Vec<u64> = ((pushes - kept)..pushes).map(|i| i as u64).collect();
        assert_eq!(ts, want, "the newest events survive, in push order");
    }

    #[cfg(all(test, not(kani)))]
    mod exec {
        #[test]
        fn harness_runs_concretely() {
            for _ in 0..64 {
                super::ring_wraparound_keeps_newest_in_order();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            name: "t",
            cat: "t",
            ts_us: ts,
            tid: 0,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Ring::new(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.into_events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<u64> = r.into_events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "newest events survive, in order");
    }

    #[test]
    fn zero_capacity_drops_all() {
        let mut r = Ring::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }
}
