//! The deterministic plain-text run report.
//!
//! Aggregates the trace into per-name tables sorted by name, so two runs of
//! the same workload produce reports that differ only in measured durations
//! — diffable, greppable, and safe to snapshot in docs.

use crate::{EventKind, Trace};
use std::collections::BTreeMap;

pub(crate) fn text_report(trace: &Trace) -> String {
    let mut spans: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new(); // count, total, max
    let mut instants: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::Span { dur_us } => {
                let s = spans.entry(e.name).or_insert((0, 0, 0));
                s.0 += 1;
                s.1 += dur_us;
                s.2 = s.2.max(dur_us);
            }
            EventKind::Instant => *instants.entry(e.name).or_insert(0) += 1,
            EventKind::Counter { .. } => {}
        }
    }
    let counters = trace.counter_totals();

    let mut out = String::new();
    out.push_str("hh-trace run report\n");
    out.push_str(&format!(
        "  events {}  threads {}  dropped {}\n",
        trace.events.len(),
        trace.thread_ids().len(),
        trace.dropped
    ));
    if !spans.is_empty() {
        out.push_str("\nspans (name, count, total, max):\n");
        for (name, (count, total, max)) in &spans {
            out.push_str(&format!(
                "  {name:<28} {count:>8}  {:>12}  {:>10}\n",
                fmt_us(*total),
                fmt_us(*max)
            ));
        }
    }
    if !counters.is_empty() {
        out.push_str("\ncounters (name, sum):\n");
        for (name, total) in &counters {
            out.push_str(&format!("  {name:<28} {total:>8}\n"));
        }
    }
    if !instants.is_empty() {
        out.push_str("\nevents (name, count):\n");
        for (name, count) in &instants {
            out.push_str(&format!("  {name:<28} {count:>8}\n"));
        }
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    #[test]
    fn report_is_sorted_and_complete() {
        let mk = |name, kind| Event {
            name,
            cat: "t",
            ts_us: 0,
            tid: 1,
            kind,
        };
        let trace = Trace {
            events: vec![
                mk("z.span", EventKind::Span { dur_us: 1_500 }),
                mk("a.span", EventKind::Span { dur_us: 2_000_000 }),
                mk("m.count", EventKind::Counter { value: 4 }),
                mk("m.mark", EventKind::Instant),
            ],
            dropped: 0,
        };
        let r = trace.text_report();
        let a = r.find("a.span").unwrap();
        let z = r.find("z.span").unwrap();
        assert!(a < z, "span table sorted by name");
        assert!(r.contains("2.000s"));
        assert!(r.contains("1.500ms"));
        assert!(r.contains("m.count"));
        assert!(r.contains("m.mark"));
    }

    #[test]
    fn identical_traces_produce_identical_reports() {
        let trace = Trace {
            events: vec![Event {
                name: "x",
                cat: "t",
                ts_us: 9,
                tid: 3,
                kind: EventKind::Counter { value: 1 },
            }],
            dropped: 1,
        };
        assert_eq!(trace.text_report(), trace.clone().text_report());
    }
}
