//! Chrome `trace_event` JSON output and a minimal JSON validity checker.
//!
//! The writer emits the *object* form (`{"traceEvents": [...]}`), which both
//! `chrome://tracing` and Perfetto accept. Span records use the complete
//! (`ph:"X"`) phase so begin/end can never be orphaned by ring wraparound;
//! counters use `ph:"C"` with a `value` arg; instants use `ph:"i"` with
//! thread scope. Every thread gets a `thread_name` metadata record so the
//! viewer labels rows deterministically.

use crate::{Event, EventKind, Trace};
use std::io::{self, Write};

/// All events share one synthetic process.
const PID: u64 = 1;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_event(e: &Event, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape(e.name, out);
    out.push_str("\",\"cat\":\"");
    escape(e.cat, out);
    out.push_str("\",");
    match e.kind {
        EventKind::Span { dur_us } => {
            out.push_str(&format!("\"ph\":\"X\",\"dur\":{dur_us},"));
        }
        EventKind::Instant => out.push_str("\"ph\":\"i\",\"s\":\"t\","),
        EventKind::Counter { value } => {
            out.push_str(&format!("\"ph\":\"C\",\"args\":{{\"value\":{value}}},"));
        }
    }
    out.push_str(&format!(
        "\"ts\":{},\"pid\":{PID},\"tid\":{}}}",
        e.ts_us, e.tid
    ));
}

pub(crate) fn write_chrome_json<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    let events = trace.sorted_events();
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Thread-name metadata first, one per recording thread.
    for tid in trace.thread_ids() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"hh-thread-{tid}\"}}}}"
        ));
    }
    for e in &events {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(e, &mut out);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    if trace.dropped > 0 {
        out.push_str(&format!(
            ",\"otherData\":{{\"droppedEvents\":\"{}\"}}",
            trace.dropped
        ));
    }
    out.push('}');
    w.write_all(out.as_bytes())
}

// ---------------------------------------------------------------------------
// Minimal JSON validator
// ---------------------------------------------------------------------------

/// Checks that `s` is one syntactically valid JSON value (RFC 8259 grammar,
/// no extensions). Used by the trace tests and the `perf_smoke` gate to
/// assert the emitted trace is parseable without pulling in a JSON
/// dependency.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, what: &str) -> String {
    format!("invalid JSON at byte {pos}: {what}")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(err(*pos, "expected a value")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "bad literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(err(*pos, "bad \\u escape"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
            }
            c if c < 0x20 => return Err(err(*pos, "raw control character")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(err(start, "expected digits"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(err(*pos, "expected fraction digits"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(err(*pos, "expected exponent digits"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e+10",
            r#"{"a":[1,2,{"b":"c\nA"}],"d":true}"#,
            r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#,
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01x",
            "\"unterminated",
            "{} trailing",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn writer_output_is_valid_json() {
        let trace = Trace {
            events: vec![
                Event {
                    name: "a.span \"quoted\"",
                    cat: "t",
                    ts_us: 5,
                    tid: 1,
                    kind: EventKind::Span { dur_us: 10 },
                },
                Event {
                    name: "a.count",
                    cat: "t",
                    ts_us: 7,
                    tid: 2,
                    kind: EventKind::Counter { value: -3 },
                },
                Event {
                    name: "a.mark",
                    cat: "t",
                    ts_us: 8,
                    tid: 1,
                    kind: EventKind::Instant,
                },
            ],
            dropped: 2,
        };
        let json = trace.chrome_json();
        validate_json(&json).expect("writer must emit valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("droppedEvents"));
    }
}
