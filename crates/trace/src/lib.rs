//! # hh-trace — run-level observability for the H-Houdini stack
//!
//! A std-only structured-tracing layer: spans (guard-based timing), instant
//! events and counters, recorded into **per-thread ring buffers** and
//! flushed into Chrome `trace_event` JSON (loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)) plus a deterministic plain-text run
//! report.
//!
//! The flat `Stats` counters of `hhoudini` say *how much* work a run did;
//! the trace says *where the wall-clock went* — per-target SMT time,
//! scheduler occupancy, cache hits, inprocessing passes — which is what the
//! paper's scalability story (§6, Fig. 2–5) actually rests on. Every
//! span/event/counter name is documented in `docs/TRACE_SCHEMA.md`.
//!
//! ## Design
//!
//! * **Recording is wait-free on the hot path.** Each thread owns a private
//!   ring buffer behind a `thread_local`; pushing an event is a bounds check
//!   and a write, with no shared-state synchronisation. The only global
//!   accesses are one relaxed atomic load (the enabled check) and the
//!   monotonic clock.
//! * **Rings keep the newest events.** A full ring overwrites its oldest
//!   entry and counts the drop, so a trace of a long run degrades into "the
//!   most recent window" instead of an allocation storm.
//! * **Spans are complete events.** A [`SpanGuard`] records its start time
//!   and pushes a single `ph:"X"` (begin + duration) record when dropped, so
//!   ring wraparound can never orphan a begin/end pair and nesting is
//!   balanced by construction.
//! * **`TraceConfig::Off` is a near-no-op.** Every recording call starts
//!   with an inlined relaxed load of one `AtomicBool`; the `perf_smoke` gate
//!   asserts the measured tracing-off overhead stays under 2%.
//!
//! ## Harvesting
//!
//! Worker threads harvest their rings into a global registry when they exit
//! (the engines' scoped worker pools exit before `learn` returns).
//! [`drain`] collects the registry plus the calling thread's ring, so the
//! natural pattern — trace on the main thread, solve on scoped workers,
//! drain after — loses nothing. Threads that are still alive (and are not
//! the caller) keep their rings and deliver them at the next drain after
//! they exit.
//!
//! ## Example
//!
//! ```
//! hh_trace::init(hh_trace::TraceConfig::on());
//! {
//!     let _g = hh_trace::span!("demo", "demo.outer");
//!     hh_trace::counter!("demo", "demo.items", 3);
//! }
//! let trace = hh_trace::drain();
//! assert_eq!(trace.events.len(), 2);
//! let json = trace.chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! hh_trace::init(hh_trace::TraceConfig::Off);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod json;
mod report;
mod ring;

pub use json::validate_json;
pub use ring::Ring;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events). At ~40 bytes per event this
/// bounds a thread's trace memory to a few megabytes.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Tracing mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceConfig {
    /// Recording disabled: every `span!`/`event!`/`counter!` call reduces to
    /// one relaxed atomic load.
    Off,
    /// Recording enabled with the given per-thread ring capacity.
    On {
        /// Maximum events buffered per thread before the oldest are
        /// overwritten (newest events always win).
        capacity: usize,
    },
}

impl TraceConfig {
    /// `On` with [`DEFAULT_CAPACITY`].
    pub fn on() -> TraceConfig {
        TraceConfig::On {
            capacity: DEFAULT_CAPACITY,
        }
    }
}

/// What one trace record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: started at `ts_us`, ran for `dur_us`.
    Span {
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A named quantity delta (summed by [`Trace::counter_totals`]).
    Counter {
        /// The recorded value (a delta, not an absolute level).
        value: i64,
    },
}

/// One trace record. `name` and `cat` are `&'static str` so recording never
/// allocates; `cat` is the producing layer (`sat`, `smt`, `engine`, `sched`,
/// `veloct`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Event name, e.g. `"sat.solve"`. Namespaced by layer; see
    /// `docs/TRACE_SCHEMA.md`.
    pub name: &'static str,
    /// Producing layer (Chrome `cat` field).
    pub cat: &'static str,
    /// Microseconds since the trace epoch (first event of the process).
    pub ts_us: u64,
    /// Recording thread, numbered in registration order from 1.
    pub tid: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// End timestamp: `ts_us + dur` for spans, `ts_us` otherwise.
    pub fn end_us(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur_us } => self.ts_us + dur_us,
            _ => self.ts_us,
        }
    }
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Bumped by [`init`]; thread-locals from an older generation reset their
/// ring before recording, so re-initialising mid-process starts clean.
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Rings harvested from exited threads, waiting for the next [`drain`].
fn registry() -> &'static Mutex<Vec<(u64, Ring)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(u64, Ring)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct Local {
    tid: u64,
    generation: u64,
    ring: Ring,
}

impl Drop for Local {
    fn drop(&mut self) {
        if !self.ring.is_empty() && self.generation == GENERATION.load(Ordering::Relaxed) {
            let ring = std::mem::replace(&mut self.ring, Ring::new(0));
            if let Ok(mut reg) = registry().lock() {
                reg.push((self.tid, ring));
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

/// Switches tracing on or off for the whole process. Turning tracing on
/// resets the clock epoch lazily (first event of the process) and starts a
/// new generation: rings still holding events from before the call are
/// discarded rather than mixed into the new run.
pub fn init(config: TraceConfig) {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    registry().lock().map(|mut r| r.clear()).ok();
    match config {
        TraceConfig::Off => ENABLED.store(false, Ordering::Relaxed),
        TraceConfig::On { capacity } => {
            CAPACITY.store(capacity.max(1), Ordering::Relaxed);
            epoch(); // fix the epoch before the first recorded event
            ENABLED.store(true, Ordering::Relaxed);
        }
    }
}

/// Whether recording is currently enabled. This is the entire hot-path cost
/// of a disabled `span!`/`event!`/`counter!` call site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn push(event: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        let local = slot.get_or_insert_with(|| Local {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            generation,
            ring: Ring::new(CAPACITY.load(Ordering::Relaxed)),
        });
        if local.generation != generation {
            local.generation = generation;
            local.ring = Ring::new(CAPACITY.load(Ordering::Relaxed));
        }
        let mut event = event;
        event.tid = local.tid;
        local.ring.push(event);
    });
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// A live span. Records one complete (`ph:"X"`) event covering its lifetime
/// when dropped. Created by [`span()`] / [`span!`].
#[derive(Debug)]
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    cat: &'static str,
    name: &'static str,
    start_us: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active && enabled() {
            let end = now_us();
            push(Event {
                name: self.name,
                cat: self.cat,
                ts_us: self.start_us,
                tid: 0,
                kind: EventKind::Span {
                    dur_us: end.saturating_sub(self.start_us),
                },
            });
        }
    }
}

/// Opens a span; prefer the [`span!`] macro. Returns an inert guard when
/// tracing is off.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            cat,
            name,
            start_us: 0,
            active: false,
        };
    }
    SpanGuard {
        cat,
        name,
        start_us: now_us(),
        active: true,
    }
}

/// Records an instant event; prefer the [`event!`] macro.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    push(Event {
        name,
        cat,
        ts_us: now_us(),
        tid: 0,
        kind: EventKind::Instant,
    });
}

/// Records a counter delta; prefer the [`counter!`] macro. Zero deltas are
/// skipped (they carry no information and would bloat the ring).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: i64) {
    if !enabled() || value == 0 {
        return;
    }
    push(Event {
        name,
        cat,
        ts_us: now_us(),
        tid: 0,
        kind: EventKind::Counter { value },
    });
}

/// Opens a guard-timed span: `let _g = span!("sat", "sat.solve");`.
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {
        $crate::span($cat, $name)
    };
}

/// Records an instant event: `event!("engine", "engine.backtrack");`.
#[macro_export]
macro_rules! event {
    ($cat:expr, $name:expr) => {
        $crate::instant($cat, $name)
    };
}

/// Records a counter delta: `counter!("smt", "smt.cache.hit", 1);`.
#[macro_export]
macro_rules! counter {
    ($cat:expr, $name:expr, $value:expr) => {
        $crate::counter($cat, $name, $value as i64)
    };
}

// ---------------------------------------------------------------------------
// Draining and output
// ---------------------------------------------------------------------------

/// A drained trace: every harvested event plus the number of events lost to
/// ring wraparound.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, in per-thread ring order (oldest surviving first).
    pub events: Vec<Event>,
    /// Events overwritten by ring wraparound before they could be drained.
    pub dropped: u64,
}

/// Moves the calling thread's ring into the harvest registry immediately.
///
/// Worker threads should call this as the last thing they do: `join` (and
/// [`std::thread::scope`]) unblock when the thread's *closure* returns, but
/// thread-local destructors only run later during OS-level thread teardown,
/// so a [`drain`] racing with teardown could otherwise miss the thread's
/// events. The destructor harvest still exists as a best-effort backstop
/// for threads that never call `flush`.
pub fn flush() {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(local) = slot.as_mut() {
            if !local.ring.is_empty() && local.generation == GENERATION.load(Ordering::Relaxed) {
                let ring =
                    std::mem::replace(&mut local.ring, Ring::new(CAPACITY.load(Ordering::Relaxed)));
                if let Ok(mut reg) = registry().lock() {
                    reg.push((local.tid, ring));
                }
            }
        }
    });
}

/// Collects everything recorded so far: rings harvested from exited threads
/// plus the calling thread's ring. Recording may continue afterwards; a
/// later drain returns only events recorded since.
pub fn drain() -> Trace {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let generation = GENERATION.load(Ordering::Relaxed);
    if let Ok(mut reg) = registry().lock() {
        for (tid, ring) in reg.drain(..) {
            dropped += ring.dropped();
            for mut e in ring.into_events() {
                e.tid = tid;
                events.push(e);
            }
        }
    }
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(local) = slot.as_mut() {
            if local.generation == generation {
                let ring =
                    std::mem::replace(&mut local.ring, Ring::new(CAPACITY.load(Ordering::Relaxed)));
                dropped += ring.dropped();
                for mut e in ring.into_events() {
                    e.tid = local.tid;
                    events.push(e);
                }
            }
        }
    });
    Trace { events, dropped }
}

impl Trace {
    /// Events sorted deterministically: by thread, then start time, then
    /// longest-span-first (so a parent precedes the children it encloses),
    /// then name.
    pub fn sorted_events(&self) -> Vec<Event> {
        let mut v = self.events.clone();
        v.sort_by(|a, b| {
            (a.tid, a.ts_us)
                .cmp(&(b.tid, b.ts_us))
                .then(b.end_us().cmp(&a.end_us()))
                .then(a.name.cmp(b.name))
        });
        v
    }

    /// A replay-equality digest of the event log: FNV-1a over each
    /// thread's event *sequence* — name, category, payload kind, and
    /// counter value, in ring order — with the per-thread digests then
    /// combined order-insensitively. Timestamps, durations and thread ids
    /// are excluded: they vary run to run even when the schedule is
    /// bit-identical, while thread *numbering* depends only on registration
    /// order, which a deterministic schedule need not fix. Two runs that
    /// make the same decisions in the same per-thread order therefore hash
    /// equal, and any divergence in what was done (or in events lost to
    /// ring wraparound) changes the digest. This is the seam hh-vopr's
    /// replay-determinism checker asserts on.
    pub fn event_log_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        // Per-thread digests over the per-thread subsequences of `events`
        // (drain order preserves each ring's internal order).
        let mut digests: Vec<u64> = Vec::new();
        let mut tids: Vec<u64> = Vec::new();
        for e in &self.events {
            let slot = match tids.iter().position(|&t| t == e.tid) {
                Some(i) => i,
                None => {
                    tids.push(e.tid);
                    digests.push(OFFSET);
                    digests.len() - 1
                }
            };
            let h = &mut digests[slot];
            mix(h, e.name.as_bytes());
            mix(h, &[0xff]);
            mix(h, e.cat.as_bytes());
            match e.kind {
                EventKind::Span { .. } => mix(h, &[1]),
                EventKind::Instant => mix(h, &[2]),
                EventKind::Counter { value } => {
                    mix(h, &[3]);
                    mix(h, &value.to_le_bytes());
                }
            }
        }
        // Order-insensitive combine: sort the digests, then chain-hash so
        // the multiset (not just the XOR) is pinned down.
        digests.sort_unstable();
        let mut out = OFFSET;
        for d in digests {
            mix(&mut out, &d.to_le_bytes());
        }
        mix(&mut out, &self.dropped.to_le_bytes());
        out
    }

    /// Writes the trace as Chrome `trace_event` JSON (the object form with a
    /// `traceEvents` array, as accepted by `chrome://tracing` and Perfetto).
    pub fn write_chrome_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        json::write_chrome_json(self, w)
    }

    /// [`Trace::write_chrome_json`] into a `String`.
    pub fn chrome_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_json(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("writer emits ASCII")
    }

    /// The deterministic plain-text run report: per-name span counts and
    /// total durations, counter sums and instant counts, sorted by name.
    pub fn text_report(&self) -> String {
        report::text_report(self)
    }

    /// Sum of every counter delta, keyed by counter name (sorted).
    pub fn counter_totals(&self) -> BTreeMap<&'static str, i64> {
        let mut totals = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Counter { value } = e.kind {
                *totals.entry(e.name).or_insert(0) += value;
            }
        }
        totals
    }

    /// Per-name span statistics `(count, total_us)`, sorted by name.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Span { dur_us } = e.kind {
                let t = totals.entry(e.name).or_insert((0, 0));
                t.0 += 1;
                t.1 += dur_us;
            }
        }
        totals
    }

    /// Thread ids that recorded at least one event, sorted.
    pub fn thread_ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

// ---------------------------------------------------------------------------
// HH_TRACE environment plumbing
// ---------------------------------------------------------------------------

/// The environment variable naming the Chrome-JSON output path.
pub const ENV_VAR: &str = "HH_TRACE";
/// Optional override of the per-thread ring capacity.
pub const ENV_CAPACITY: &str = "HH_TRACE_CAPACITY";

/// Enables tracing when `HH_TRACE` is set (to the output path), honouring
/// `HH_TRACE_CAPACITY`. Returns whether tracing was enabled. Binaries and
/// examples call this at startup and [`finish_to_env`] at exit.
pub fn init_from_env() -> bool {
    let Ok(path) = std::env::var(ENV_VAR) else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    let capacity = std::env::var(ENV_CAPACITY)
        .ok()
        .and_then(|c| c.parse().ok())
        .unwrap_or(DEFAULT_CAPACITY);
    init(TraceConfig::On { capacity });
    true
}

/// Drains the trace and writes it to the `HH_TRACE` path as Chrome JSON,
/// returning the path written (None when tracing ran without `HH_TRACE`).
/// The deterministic text report goes to the same path with `.txt` appended.
pub fn finish_to_env() -> io::Result<Option<String>> {
    let Ok(path) = std::env::var(ENV_VAR) else {
        return Ok(None);
    };
    if path.is_empty() || !enabled() {
        return Ok(None);
    }
    let trace = drain();
    let mut f = std::fs::File::create(&path)?;
    trace.write_chrome_json(&mut f)?;
    std::fs::write(format!("{path}.txt"), trace.text_report())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole test module shares process-global trace state, so unit
    /// tests here run under one lock (integration tests spawn their own
    /// processes).
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_records_nothing() {
        let _l = lock();
        init(TraceConfig::Off);
        let _g = span!("t", "t.span");
        event!("t", "t.event");
        counter!("t", "t.counter", 7);
        drop(_g);
        let trace = drain();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
        assert!(!enabled());
    }

    #[test]
    fn spans_counters_and_instants_record() {
        let _l = lock();
        init(TraceConfig::on());
        {
            let _g = span!("t", "t.outer");
            let _h = span!("t", "t.inner");
            event!("t", "t.mark");
            counter!("t", "t.count", 2);
            counter!("t", "t.count", 3);
        }
        let trace = drain();
        init(TraceConfig::Off);
        assert_eq!(trace.counter_totals().get("t.count"), Some(&5));
        let spans = trace.span_totals();
        assert_eq!(spans.get("t.outer").map(|t| t.0), Some(1));
        assert_eq!(spans.get("t.inner").map(|t| t.0), Some(1));
        assert_eq!(
            trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Instant))
                .count(),
            1
        );
    }

    #[test]
    fn zero_counter_deltas_are_skipped() {
        let _l = lock();
        init(TraceConfig::on());
        counter!("t", "t.zero", 0);
        let trace = drain();
        init(TraceConfig::Off);
        assert!(trace.events.is_empty());
    }

    #[test]
    fn flushed_worker_threads_are_drained_immediately() {
        let _l = lock();
        init(TraceConfig::on());
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    {
                        let _g = span!("t", "t.worker");
                        counter!("t", "t.jobs", 1);
                    }
                    flush();
                });
            }
        });
        counter!("t", "t.main", 1);
        // flush() ran inside each closure, so the scope join guarantees the
        // rings are registered: one drain must see everything.
        let trace = drain();
        init(TraceConfig::Off);
        assert_eq!(trace.counter_totals().get("t.jobs"), Some(&3));
        assert_eq!(trace.counter_totals().get("t.main"), Some(&1));
        assert!(trace.thread_ids().len() >= 4, "3 workers + main");
    }

    #[test]
    fn unflushed_worker_threads_harvest_on_exit() {
        let _l = lock();
        init(TraceConfig::on());
        let handle = std::thread::spawn(|| {
            counter!("t", "t.lazy", 1);
        });
        handle.join().unwrap();
        // join() does not wait for TLS destructors, so the destructor
        // harvest may land shortly after; poll rather than race it.
        let mut total = 0i64;
        for _ in 0..200 {
            total += drain().counter_totals().get("t.lazy").copied().unwrap_or(0);
            if total == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        init(TraceConfig::Off);
        assert_eq!(total, 1, "destructor harvest never landed");
    }

    #[test]
    fn drain_is_incremental() {
        let _l = lock();
        init(TraceConfig::on());
        counter!("t", "t.a", 1);
        let first = drain();
        counter!("t", "t.b", 1);
        let second = drain();
        init(TraceConfig::Off);
        assert_eq!(first.counter_totals().get("t.a"), Some(&1));
        assert!(!first.counter_totals().contains_key("t.b"));
        assert_eq!(second.counter_totals().get("t.b"), Some(&1));
        assert!(!second.counter_totals().contains_key("t.a"));
    }

    #[test]
    fn reinit_discards_stale_events() {
        let _l = lock();
        init(TraceConfig::on());
        counter!("t", "t.stale", 1);
        init(TraceConfig::on()); // new generation, no drain
        counter!("t", "t.fresh", 1);
        let trace = drain();
        init(TraceConfig::Off);
        assert!(!trace.counter_totals().contains_key("t.stale"));
        assert_eq!(trace.counter_totals().get("t.fresh"), Some(&1));
    }
}
