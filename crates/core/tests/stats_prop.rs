//! Property tests for [`Stats`] aggregation: `merge` must be associative
//! (so partitioned runs can be folded in any grouping), identity-preserving
//! on `Stats::default()`, and must keep the occupancy accounting invariant
//! (worker busy time = sum of committed task durations, each exactly once).

use hhoudini::{Stats, TaskRecord};
use proptest::prelude::*;
use std::time::Duration;

/// A random Stats value. Task parents point strictly backwards (or nowhere),
/// matching the discovery-order invariant of real runs.
fn arb_stats() -> impl Strategy<Value = Stats> {
    (
        proptest::collection::vec((0u64..5000, 0usize..3, any::<bool>()), 0..6),
        (0u64..100, 0u64..100, 0u64..100, 0u64..100),
        (0u64..5000, 0u64..5000, 0usize..9),
    )
        .prop_map(
            |(tasks, (memo, back, hits, misses), (wall, busy, workers))| {
                let mut s = Stats::default();
                for (i, &(us, back_off, has_parent)) in tasks.iter().enumerate() {
                    let parent = if has_parent && i > 0 {
                        Some(i - 1 - back_off.min(i - 1))
                    } else {
                        None
                    };
                    let d = Duration::from_micros(us);
                    s.tasks.push(TaskRecord {
                        pred: hhoudini::PredId::from_index(i),
                        parent,
                        duration: d,
                        smt_time: d / 2,
                        queries: 1,
                    });
                    s.task_time += d;
                }
                s.smt_queries = s.tasks.len();
                s.memo_hits = memo as usize;
                s.backtracks = back as usize;
                s.session_hits = hits as usize;
                s.session_misses = misses as usize;
                s.encode_cache_hits = hits;
                s.encode_cache_misses = misses;
                s.wall_time = Duration::from_micros(wall);
                s.worker_busy_time = Duration::from_micros(busy);
                s.workers = workers;
                s
            },
        )
}

fn merged(a: &Stats, b: &Stats) -> Stats {
    let mut out = a.clone();
    out.merge(b);
    out
}

type TaskKey = (usize, Option<usize>, Duration);

/// Everything `merge` folds, in a directly comparable form. Tasks compare by
/// (pred, parent, duration) so re-based parent indices are included.
fn fingerprint(s: &Stats) -> (Vec<TaskKey>, Vec<u64>, Duration) {
    let tasks = s
        .tasks
        .iter()
        .map(|t| (t.pred.index(), t.parent, t.duration))
        .collect();
    let scalars = vec![
        s.memo_hits as u64,
        s.backtracks as u64,
        s.smt_queries as u64,
        s.session_hits as u64,
        s.session_misses as u64,
        s.encode_cache_hits,
        s.encode_cache_misses,
        s.workers as u64,
        s.wall_time.as_micros() as u64,
        s.task_time.as_micros() as u64,
    ];
    (tasks, scalars, s.worker_busy_time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): partitioned runs can be folded in any
    /// grouping. This is what makes per-shard Stats safe to combine.
    #[test]
    fn merge_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    /// The empty Stats is a two-sided identity for merge.
    #[test]
    fn default_is_identity(a in arb_stats()) {
        let left = merged(&Stats::default(), &a);
        let right = merged(&a, &Stats::default());
        prop_assert_eq!(fingerprint(&left), fingerprint(&a));
        prop_assert_eq!(fingerprint(&right), fingerprint(&a));
    }

    /// Merging never invents or loses busy time: the merged busy time is
    /// exactly the sum of the parts. A reorder-buffer double count in either
    /// part would surface here as busy time exceeding its own task-duration
    /// sum (checked by `occupancy_accounting_matches_task_durations` on real
    /// runs in `tests/trace.rs`).
    #[test]
    fn busy_time_is_additive(a in arb_stats(), b in arb_stats()) {
        let m = merged(&a, &b);
        prop_assert_eq!(m.worker_busy_time, a.worker_busy_time + b.worker_busy_time);
    }

    /// Re-based parent indices still point at the same tasks: every parent
    /// of a merged-in task resolves inside the merged vector and precedes
    /// its child (discovery order is preserved).
    #[test]
    fn merge_rebases_parents(a in arb_stats(), b in arb_stats()) {
        let m = merged(&a, &b);
        prop_assert_eq!(m.tasks.len(), a.tasks.len() + b.tasks.len());
        for (i, t) in m.tasks.iter().enumerate() {
            if let Some(p) = t.parent {
                prop_assert!(p < i, "parent {} not before task {}", p, i);
                // Tasks from `b` must have parents inside b's region.
                if i >= a.tasks.len() {
                    prop_assert!(p >= a.tasks.len(), "cross-run parent after merge");
                }
            }
        }
    }
}
